//! Differential property tests for the stream timing model and threaded
//! cluster dispatch.
//!
//! **Streams affect timing only**: a program with arbitrary stream tags
//! and sync steps must be *bit-identical in outputs* to its serial
//! de-streamed form ([`atgpu_ir::Program::destreamed`]) for every
//! `ExecMode` and engine, its per-component times must match exactly,
//! and its stream-aware total can never exceed the serial total.  The
//! generator takes a chunked multi-round vecadd program (the
//! double-buffering shape) and mutates it with random stream
//! assignments and randomly placed `SyncStream`/`SyncDevice` steps.
//!
//! **Threaded dispatch is invisible**: `run_cluster_program` with
//! per-device OS threads must produce the same outputs, statistics and
//! round observations as sequential dispatch, bit for bit.

use atgpu_ir::{AddrExpr, AluOp, HostStep, KernelBuilder, Program, ProgramBuilder};
use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec};
use atgpu_sim::{run_cluster_program, run_program, ExecMode, SimConfig};
use proptest::prelude::*;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn machine() -> AtgpuMachine {
    AtgpuMachine::new(1 << 12, 4, 64, 1 << 16).unwrap()
}

fn spec() -> GpuSpec {
    GpuSpec {
        k_prime: 2,
        h_limit: 4,
        clock_cycles_per_ms: 1000.0,
        xfer_alpha_ms: 0.1,
        xfer_beta_ms_per_word: 0.001,
        sync_ms: 0.05,
        ..GpuSpec::gtx650_like()
    }
}

/// A multi-round chunked `C = A + B` over ping-pong buffers — the
/// double-buffered shape, all on stream 0 (the mutation assigns streams).
fn chunked_vecadd(n: u64, chunk: u64) -> (Program, atgpu_ir::HBuf) {
    let b = 4i64;
    let rounds = n / chunk;
    let mut pb = ProgramBuilder::new("chunked");
    let ha = pb.host_input("A", n);
    let hb = pb.host_input("B", n);
    let hc = pb.host_output("C", n);
    let bufs = [
        (pb.device_alloc("a0", chunk), pb.device_alloc("b0", chunk), pb.device_alloc("c0", chunk)),
        (pb.device_alloc("a1", chunk), pb.device_alloc("b1", chunk), pb.device_alloc("c1", chunk)),
    ];
    for r in 0..=rounds {
        pb.begin_round();
        if r < rounds {
            let (da, db, _) = bufs[(r % 2) as usize];
            pb.transfer_in_at(ha, r * chunk, da, 0, chunk);
            pb.transfer_in_at(hb, r * chunk, db, 0, chunk);
        }
        if r > 0 {
            let (da, db, dc) = bufs[((r - 1) % 2) as usize];
            let k = chunk / b as u64;
            let mut kb = KernelBuilder::new(format!("add_r{r}"), k, 3 * b as u64);
            let g = AddrExpr::block() * b + AddrExpr::lane();
            kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
            kb.glb_to_shr(AddrExpr::lane() + b, db, g.clone());
            kb.ld_shr(0, AddrExpr::lane());
            kb.ld_shr(1, AddrExpr::lane() + b);
            kb.alu(AluOp::Add, 2, atgpu_ir::Operand::Reg(0), atgpu_ir::Operand::Reg(1));
            kb.st_shr(AddrExpr::lane() + 2 * b, atgpu_ir::Operand::Reg(2));
            kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * b);
            pb.launch(kb.build());
            pb.transfer_out_at(dc, 0, hc, (r - 1) * chunk, chunk);
        }
    }
    (pb.build().unwrap(), hc)
}

/// Randomly re-streams a serial program: every transfer gets a random
/// stream in `0..4` and random `SyncStream`/`SyncDevice` steps are
/// sprinkled between steps.  Structural validity is preserved (syncs may
/// appear anywhere; stream tags never affect the round phases).
fn restream(p: &Program, seed: u64) -> Program {
    let mut rng = Rng(seed | 1);
    let mut out = p.clone();
    for round in &mut out.rounds {
        let mut steps = Vec::with_capacity(round.steps.len() * 2);
        for mut step in round.steps.drain(..) {
            if rng.below(4) == 0 {
                steps.push(match rng.below(3) {
                    0 => HostStep::SyncDevice { device: 0 },
                    s => HostStep::SyncStream { device: 0, stream: (s * rng.below(4)) as u32 },
                });
            }
            match &mut step {
                HostStep::TransferIn { stream, .. } | HostStep::TransferOut { stream, .. } => {
                    *stream = rng.below(4) as u32;
                }
                _ => {}
            }
            steps.push(step);
        }
        if rng.below(3) == 0 {
            steps.push(HostStep::SyncDevice { device: 0 });
        }
        round.steps = steps;
    }
    atgpu_ir::validate::validate_program(&out).expect("restreamed program stays valid");
    out
}

fn inputs(n: u64, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = Rng(seed | 1);
    (0..2).map(|_| (0..n).map(|_| rng.below(201) as i64 - 100).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streamed programs are bit-identical to their serial de-streamed
    /// form across execution modes and engines; their component times
    /// match exactly and their stream-aware total never exceeds serial.
    #[test]
    fn streamed_equals_destreamed(seed in 0u64..1_000_000_000) {
        let mut rng = Rng(seed | 1);
        let chunk = [16u64, 32, 64][rng.below(3) as usize];
        let n = chunk * (1 + rng.below(5));
        let (serial, hc) = chunked_vecadd(n, chunk);
        let streamed = restream(&serial, seed ^ 0xABCD);
        prop_assert_eq!(&streamed.destreamed(), &serial);
        let data = inputs(n, seed);

        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
            for use_reference in [false, true] {
                let cfg = SimConfig { mode, use_reference, ..SimConfig::default() };
                let r_serial =
                    run_program(&serial, data.clone(), &machine(), &spec(), &cfg).unwrap();
                let r_streamed =
                    run_program(&streamed, data.clone(), &machine(), &spec(), &cfg).unwrap();

                // Functional: outputs bit-identical.
                prop_assert_eq!(
                    r_serial.output(hc),
                    r_streamed.output(hc),
                    "outputs diverged: mode={:?} reference={}",
                    mode,
                    use_reference
                );
                // Components identical (streams re-schedule, never re-price).
                prop_assert_eq!(r_serial.transfer_ms(), r_streamed.transfer_ms());
                prop_assert_eq!(r_serial.kernel_ms(), r_streamed.kernel_ms());
                prop_assert_eq!(r_serial.serial_ms(), r_streamed.serial_ms());
                // Overlap can only help.
                prop_assert!(
                    r_streamed.total_ms() <= r_serial.total_ms() + 1e-12,
                    "streamed {} > serial {}",
                    r_streamed.total_ms(),
                    r_serial.total_ms()
                );
                // Per-round: the serial program's stream time IS its serial sum.
                for round in &r_serial.rounds {
                    prop_assert!((round.total_ms() - round.serial_ms()).abs() < 1e-12);
                }
            }
        }
    }

    /// A program whose transfers all sit on stream 0 has no overlap, even
    /// with sync steps sprinkled in: its total equals the serial total
    /// exactly (sync on serial chains is a no-op).
    #[test]
    fn single_stream_total_is_serial(seed in 0u64..1_000_000_000) {
        let (serial, _) = chunked_vecadd(64, 32);
        let mut synced = restream(&serial, seed);
        // Force everything back onto stream 0 but keep the syncs.
        for round in &mut synced.rounds {
            for step in &mut round.steps {
                if let HostStep::TransferIn { stream, .. } | HostStep::TransferOut { stream, .. } =
                    step
                {
                    *stream = 0;
                }
            }
        }
        let data = inputs(64, seed);
        let cfg = SimConfig::default();
        let a = run_program(&serial, data.clone(), &machine(), &spec(), &cfg).unwrap();
        let b = run_program(&synced, data, &machine(), &spec(), &cfg).unwrap();
        prop_assert_eq!(a.total_ms(), b.total_ms());
        prop_assert_eq!(b.total_ms(), b.serial_ms());
    }

    /// Threaded per-device dispatch produces the same report as
    /// sequential dispatch, bit for bit: outputs, statistics and every
    /// observed time.
    #[test]
    fn threaded_cluster_dispatch_is_invisible(seed in 0u64..1_000_000_000) {
        let mut rng = Rng(seed | 1);
        let devices = 2 + rng.below(3) as u32; // 2..=4
        let b = 4u64;
        let n = b * (u64::from(devices) * (2 + rng.below(6)));
        let blocks = n / b;

        // A sharded vecadd: every device gets its slice, runs its shard.
        let mut pb = ProgramBuilder::new("sharded");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let db = pb.device_alloc("b", n);
        let dc = pb.device_alloc("c", n);
        let mut kb = KernelBuilder::new("vecadd", blocks, 3 * b);
        let g = AddrExpr::block() * b as i64 + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
        kb.glb_to_shr(AddrExpr::lane() + b as i64, db, g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + b as i64);
        kb.alu(AluOp::Add, 2, atgpu_ir::Operand::Reg(0), atgpu_ir::Operand::Reg(1));
        kb.st_shr(AddrExpr::lane() + 2 * b as i64, atgpu_ir::Operand::Reg(2));
        kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * b as i64);
        let shards = atgpu_sim::even_shards(blocks, devices);
        pb.begin_round();
        for s in &shards {
            let (off, words) = (s.start * b, s.blocks() * b);
            pb.transfer_in_to(s.device, ha, off, da, off, words);
            pb.transfer_in_streamed(s.device, 1, hb, off, db, off, words);
        }
        pb.launch_sharded(kb.build(), shards.clone());
        for s in &shards {
            let (off, words) = (s.start * b, s.blocks() * b);
            pb.transfer_out_from(s.device, dc, off, hc, off, words);
        }
        let p = pb.build().unwrap();

        let cluster = ClusterSpec::homogeneous(devices as usize, spec());
        let data = inputs(n, seed);
        let mut reports = Vec::new();
        for device_threads in [false, true] {
            for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
                let cfg = SimConfig { device_threads, mode, ..SimConfig::default() };
                let r =
                    run_cluster_program(&p, data.clone(), &machine(), &cluster, &cfg).unwrap();
                reports.push((device_threads, mode, r));
            }
        }
        // Same mode, threads on/off: the full report is bit-identical.
        let m = reports.len() / 2;
        for i in 0..m {
            let (_, mode, seq) = &reports[i];
            let (_, _, thr) = &reports[i + m];
            prop_assert_eq!(seq.output(hc), thr.output(hc), "outputs: mode={:?}", mode);
            prop_assert_eq!(
                &seq.rounds,
                &thr.rounds,
                "round observations diverged: mode={:?}",
                mode
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every **planned** streamed program — the auto-chunked ooc-vecadd
    /// and the auto-chunked pipelined sharded matmul — is bit-identical
    /// to its `destreamed()` serial form across ExecModes × engines,
    /// with identical component times and a stream total ≤ serial.
    #[test]
    fn planned_programs_equal_destreamed(seed in 0u64..1_000_000_000) {
        let mut rng = Rng(seed | 1);
        let m = machine(); // b = 4
        // A transfer-heavy device so the chunk solver genuinely picks a
        // multi-round ping-pong schedule (cheap α/σ, expensive β).
        let spec = GpuSpec {
            xfer_alpha_ms: 0.01,
            xfer_beta_ms_per_word: 0.01,
            sync_ms: 0.005,
            ..spec()
        };

        // Auto-chunked out-of-core vecadd (partial last chunk allowed).
        let n = 1024 + rng.below(4) * 512 + rng.below(16);
        let w = atgpu_algos::ooc::OocVecAdd::new(n, m.b, seed);
        let planned = w.build_planned(&m, &spec).unwrap();
        let serial = planned.program.destreamed();
        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
            for use_reference in [false, true] {
                let cfg = SimConfig { mode, use_reference, ..SimConfig::default() };
                let a = run_program(&planned.program, planned.inputs.clone(), &m, &spec, &cfg)
                    .unwrap();
                let b = run_program(&serial, planned.inputs.clone(), &m, &spec, &cfg).unwrap();
                prop_assert_eq!(
                    a.output(planned.outputs[0]),
                    b.output(planned.outputs[0]),
                    "ooc outputs diverged: mode={:?} reference={}",
                    mode,
                    use_reference
                );
                let expect = w.host_reference();
                prop_assert_eq!(a.output(planned.outputs[0]), expect.as_slice());
                prop_assert_eq!(a.transfer_ms(), b.transfer_ms());
                prop_assert_eq!(a.kernel_ms(), b.kernel_ms());
                prop_assert!(a.total_ms() <= b.total_ms() + 1e-12);
            }
        }

        // Auto-chunked pipelined sharded matmul on a slow-link pair.
        let mm = atgpu_algos::matmul::MatMul::new(8 * m.b, seed ^ 0x77);
        let mut cluster = ClusterSpec::homogeneous(2, spec);
        for l in &mut cluster.host_links {
            l.alpha_ms *= 4.0;
            l.beta_ms_per_word *= 4.0;
        }
        let built = mm.build_sharded_pipelined(&m, &cluster).unwrap();
        let serial = built.program.destreamed();
        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
            for use_reference in [false, true] {
                let cfg = SimConfig { mode, use_reference, ..SimConfig::default() };
                let a =
                    run_cluster_program(&built.program, built.inputs.clone(), &m, &cluster, &cfg)
                        .unwrap();
                let b = run_cluster_program(&serial, built.inputs.clone(), &m, &cluster, &cfg)
                    .unwrap();
                prop_assert_eq!(
                    a.output(built.outputs[0]),
                    b.output(built.outputs[0]),
                    "matmul outputs diverged: mode={:?} reference={}",
                    mode,
                    use_reference
                );
                let expect = mm.host_reference();
                prop_assert_eq!(a.output(built.outputs[0]), expect.as_slice());
                prop_assert!(a.total_ms() <= b.total_ms() + 1e-12);
            }
        }
    }

}
