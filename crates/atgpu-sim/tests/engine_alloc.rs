//! Proves the acceptance criterion that steady-state block execution in
//! the micro-op engine performs **zero heap allocations per
//! instruction**: after warm-up (executor construction, residency-slot
//! pool, replay-trace recording), running further blocks through a
//! multiprocessor must not touch the allocator at all — including the
//! dynamic conflict-degree and coalescing fallback paths, which use
//! fixed scratch instead of the reference interpreter's
//! `Vec`+sort+dedup.
//!
//! This file contains a single test so no concurrent test can perturb
//! the global allocation counter.

use atgpu_ir::{AddrExpr, AluOp, DBuf, KernelBuilder, Operand, PredExpr};
use atgpu_sim::dram::DramController;
use atgpu_sim::engine::BlockExec;
use atgpu_sim::gmem::GlobalMemory;
use atgpu_sim::mp::Mp;
use atgpu_sim::uop::CompiledKernel;
use atgpu_sim::warp::GmemAccess;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_block_execution_is_allocation_free() {
    let b = 16u32;
    let blocks = 64u64;
    let shared = 8 * u64::from(b);
    let gwords = blocks * u64::from(b) + 4 * u64::from(b) + 64;

    // A kernel exercising every analysis path: unit-stride and strided
    // global copies, broadcast and conflicted shared accesses, a
    // register-addressed gather (dynamic conflict/coalesce fallbacks),
    // divergence (partial masks) and a loop.
    let mut kb = KernelBuilder::new("alloc_probe", blocks, shared);
    let bi = i64::from(b);
    kb.glb_to_shr(AddrExpr::lane(), DBuf(0), AddrExpr::block() * bi + AddrExpr::lane());
    kb.ld_shr(0, AddrExpr::lane());
    kb.alu(AluOp::Mul, 1, Operand::Lane, Operand::Imm(2));
    // Register-addressed shared store: dynamic bank-conflict path.
    kb.st_shr(AddrExpr::reg(1), Operand::Reg(0));
    // Register-addressed global gather: dynamic coalescing path.
    kb.glb_to_shr(AddrExpr::lane() + bi, DBuf(0), AddrExpr::reg(1));
    kb.repeat(3, |kb| {
        kb.alu(AluOp::Add, 2, Operand::Reg(2), Operand::LoopVar(0));
        // Strided shared access under a partial mask.
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(i64::from(b) / 2)), |kb| {
            kb.st_shr(AddrExpr::lane() * 2 + 2 * bi, Operand::Reg(2));
        });
    });
    kb.st_shr(AddrExpr::lane() + 4 * bi, Operand::Reg(2));
    kb.shr_to_glb(DBuf(1), AddrExpr::block() * bi + AddrExpr::lane(), AddrExpr::lane() + 4 * bi);
    let kernel = kb.build();

    let nregs = kernel.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
    let bases = vec![0u64, gwords];
    let mut gmem = GlobalMemory::new(bases.clone(), 2 * gwords, u64::from(b), 1 << 22).unwrap();
    for i in 0..gwords {
        gmem.write(i as i64, (i % 13) as i64);
    }

    let compiled = CompiledKernel::compile(&kernel, &bases, b, nregs);
    let mut dram = DramController::new(4, 60);
    let mut mp: Mp<BlockExec<'_>> = Mp::with_replay(4, compiled.replayable);

    // Warm-up: fill the residency pool and run a few blocks, letting the
    // replay trace (if any) be recorded and every scratch buffer reach
    // steady state.
    let mut next_block = 0u64;
    let warm_blocks = 8u64;
    while mp.free_slots() > 0 && next_block < warm_blocks {
        mp.admit(next_block, || BlockExec::new(&compiled));
        next_block += 1;
    }
    while !mp.idle() {
        let mut acc = GmemAccess::Direct(&mut gmem);
        if mp.step(&mut acc, &mut dram).unwrap() && next_block < warm_blocks {
            mp.admit(next_block, || BlockExec::new(&compiled));
            next_block += 1;
        }
    }

    // Steady state: every further block must execute without a single
    // allocator call.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut instructions = 0u64;
    while next_block < blocks || !mp.idle() {
        while mp.free_slots() > 0 && next_block < blocks {
            mp.admit(next_block, || panic!("steady state must reuse pooled executors"));
            next_block += 1;
        }
        let mut acc = GmemAccess::Direct(&mut gmem);
        mp.step(&mut acc, &mut dram).unwrap();
        instructions += 1;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(instructions > 500, "probe should issue plenty of instructions");
    assert_eq!(
        after - before,
        0,
        "steady-state execution of {} instructions allocated {} times",
        instructions,
        after - before
    );

    // Sanity: the kernel really ran (outputs landed in buffer 1).
    assert_ne!(gmem.read(gwords as i64), None);

    // ── Sharded cluster launch ────────────────────────────────────────
    //
    // The multi-device layer executes every shard against a per-device
    // memory replica with writes deferred to a log (`GmemAccess::Logged`)
    // and merges afterwards.  Steady-state instructions on that path must
    // stay zero-allocation per device thread too: the only allocating
    // element is the log vector itself, whose growth is amortised — so a
    // correctly pre-reserved log (as a fixed-size arena would be in a
    // production runtime) must make the instruction stream allocation-free.
    struct DeviceLane<'k> {
        mp: Mp<BlockExec<'k>>,
        dram: DramController,
        gmem: GlobalMemory,
        log: Vec<atgpu_sim::warp::WriteRec>,
        next_block: u64,
        end_block: u64,
    }
    let shard_ranges = [(0u64, blocks / 2), (blocks / 2, blocks)];
    let mut lanes: Vec<DeviceLane<'_>> = shard_ranges
        .iter()
        .map(|&(start, end)| {
            let mut gmem =
                GlobalMemory::new(bases.clone(), 2 * gwords, u64::from(b), 1 << 22).unwrap();
            for i in 0..gwords {
                gmem.write(i as i64, (i % 13) as i64);
            }
            DeviceLane {
                mp: Mp::with_replay(4, compiled.replayable),
                dram: DramController::new(4, 60),
                gmem,
                log: Vec::new(),
                next_block: start,
                end_block: end,
            }
        })
        .collect();

    // Warm-up: a few blocks per device measure the executor pool, replay
    // trace and per-block write volume.
    for lane in &mut lanes {
        let warm_end = lane.next_block + 4;
        while lane.mp.free_slots() > 0 && lane.next_block < warm_end {
            lane.mp.admit(lane.next_block, || BlockExec::new(&compiled));
            lane.next_block += 1;
        }
        while !lane.mp.idle() {
            let mut acc = GmemAccess::Logged { base: &lane.gmem, log: &mut lane.log };
            if lane.mp.step(&mut acc, &mut lane.dram).unwrap() && lane.next_block < warm_end {
                lane.mp.admit(lane.next_block, || BlockExec::new(&compiled));
                lane.next_block += 1;
            }
        }
        let writes_per_block = lane.log.len() as u64 / 4;
        lane.log.reserve(((lane.end_block - lane.next_block + 1) * writes_per_block) as usize);
    }

    // Steady state across both device lanes.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut instructions = 0u64;
    loop {
        let mut progressed = false;
        for lane in &mut lanes {
            while lane.mp.free_slots() > 0 && lane.next_block < lane.end_block {
                lane.mp
                    .admit(lane.next_block, || panic!("steady state must reuse pooled executors"));
                lane.next_block += 1;
            }
            if !lane.mp.idle() {
                let mut acc = GmemAccess::Logged { base: &lane.gmem, log: &mut lane.log };
                lane.mp.step(&mut acc, &mut lane.dram).unwrap();
                instructions += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(instructions > 500, "sharded probe should issue plenty of instructions");
    assert_eq!(
        after - before,
        0,
        "sharded steady-state execution of {} instructions allocated {} times",
        instructions,
        after - before
    );
    // Both shards really executed and logged writes.
    for (lane, &(start, end)) in lanes.iter().zip(&shard_ranges) {
        assert_eq!(lane.mp.stats.blocks_done, end - start);
        assert!(!lane.log.is_empty());
    }

    // ── Timeline tracing ──────────────────────────────────────────────
    //
    // Everything above ran with tracing off — that *is* the tracing-off
    // allocation contract.  With tracing on, span recording must be
    // allocation-free in steady state too: the span ring is fully
    // pre-allocated at construction and recycles its oldest entries
    // once full, and fault retry/backoff segments use a fixed inline
    // buffer.
    use atgpu_model::StreamResource;
    use atgpu_sim::trace::{SpanKind, Tracer};
    let cap = 1024usize;
    let mut tracer = Tracer::new(cap);
    // Warm-up: one plain and one segmented record.
    tracer.record(0, 0, StreamResource::HostToDevice, 0, SpanKind::TransferIn, 8, 0.1, 0.0, 0.1);
    tracer.segs.push(0.0, 0.4, false);
    tracer.record(0, 0, StreamResource::HostToDevice, 0, SpanKind::TransferIn, 8, 0.4, 0.1, 0.5);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..4096usize {
        let t = i as f64;
        // A faulted transfer: attempt + backoff segments, then the
        // fused record expands them into per-segment spans.
        tracer.segs.push(0.0, 0.4, false);
        tracer.segs.push(0.4, 0.5, true);
        tracer.record(
            i,
            0,
            StreamResource::HostToDevice,
            0,
            SpanKind::TransferIn,
            8,
            0.5,
            t,
            t + 0.5,
        );
        tracer.record(i, 0, StreamResource::Compute, 0, SpanKind::Kernel, 64, -1.0, t, t + 1.0);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state span recording must not allocate ({} calls)",
        after - before
    );

    // The ring wrapped: it kept the newest `cap` spans and counted the
    // evictions instead of growing.
    let trace = tracer.finish();
    assert_eq!(trace.spans.len(), cap);
    assert!(trace.dropped > 0, "the probe recorded far more spans than the ring holds");
}
