//! Simulator-level property and scenario tests: timing invariants,
//! functional determinism, failure injection.

use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, PredExpr, ProgramBuilder};
use atgpu_model::{AtgpuMachine, GpuSpec};
use atgpu_sim::{run_program, ExecMode, SimConfig, SimError};
use proptest::prelude::*;

fn machine() -> AtgpuMachine {
    AtgpuMachine::new(1 << 14, 32, 12_288, 1 << 20).unwrap()
}

fn spec() -> GpuSpec {
    GpuSpec { k_prime: 2, h_limit: 8, ..GpuSpec::gtx650_like() }
}

/// A copy program: out[i] = in[i] staged through shared memory.
fn copy_program(n: u64) -> (atgpu_ir::Program, atgpu_ir::HBuf) {
    let mut pb = ProgramBuilder::new("copy");
    let h = pb.host_input("A", n);
    let o = pb.host_output("B", n);
    let da = pb.device_alloc("a", n);
    let db = pb.device_alloc("b", n);
    let k = n.div_ceil(32);
    let mut kb = KernelBuilder::new("copy", k, 32);
    let g = AddrExpr::block() * 32 + AddrExpr::lane();
    kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
    kb.shr_to_glb(db, g, AddrExpr::lane());
    pb.begin_round();
    pb.transfer_in(h, da, n);
    pb.launch(kb.build());
    pb.transfer_out(db, o, n);
    (pb.build().unwrap(), o)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Copying through the device is the identity on arbitrary data.
    #[test]
    fn device_copy_is_identity(data in prop::collection::vec(any::<i64>(), 1..400)) {
        let n = data.len() as u64;
        let (p, o) = copy_program(n);
        let r = run_program(&p, vec![data.clone()], &machine(), &spec(),
            &SimConfig::default()).unwrap();
        prop_assert_eq!(r.output(o), &data[..]);
    }

    /// Simulated time is deterministic: two identical runs agree to the
    /// bit, in both execution modes.
    #[test]
    fn timing_is_deterministic(seed in any::<u64>(), n in 32u64..512) {
        let data: Vec<i64> = (0..n as i64).map(|i| i.wrapping_mul(seed as i64)).collect();
        let (p, _) = copy_program(n);
        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
            let cfg = SimConfig { mode, ..SimConfig::default() };
            let r1 = run_program(&p, vec![data.clone()], &machine(), &spec(), &cfg).unwrap();
            let r2 = run_program(&p, vec![data.clone()], &machine(), &spec(), &cfg).unwrap();
            prop_assert_eq!(r1.total_ms(), r2.total_ms());
            prop_assert_eq!(
                r1.rounds[0].kernel_stats.cycles,
                r2.rounds[0].kernel_stats.cycles
            );
        }
    }

    /// More blocks never make the kernel faster (work monotonicity).
    #[test]
    fn kernel_time_monotone_in_blocks(k1 in 1u64..40, extra in 1u64..40) {
        let build = |k: u64| {
            let mut pb = ProgramBuilder::new("m");
            let d = pb.device_alloc("a", k * 32);
            let mut kb = KernelBuilder::new("k", k, 32);
            kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
            pb.begin_round();
            pb.launch(kb.build());
            pb.build().unwrap()
        };
        let r1 = run_program(&build(k1), vec![], &machine(), &spec(),
            &SimConfig::default()).unwrap();
        let r2 = run_program(&build(k1 + extra), vec![], &machine(), &spec(),
            &SimConfig::default()).unwrap();
        prop_assert!(
            r2.rounds[0].kernel_stats.cycles >= r1.rounds[0].kernel_stats.cycles
        );
    }
}

#[test]
fn divergent_branches_cost_sum_of_arms() {
    // A kernel where every lane diverges: lanes < 16 run arm A (8 movs),
    // the rest run arm B (8 movs).  Total issue = pred + 16 movs.
    let mut pb = ProgramBuilder::new("d");
    pb.begin_round();
    let mut kb = KernelBuilder::new("k", 1, 0);
    kb.pred(
        PredExpr::Lt(Operand::Lane, Operand::Imm(16)),
        |kb| {
            for _ in 0..8 {
                kb.mov(0, Operand::Imm(1));
            }
        },
        |kb| {
            for _ in 0..8 {
                kb.mov(1, Operand::Imm(2));
            }
        },
    );
    pb.launch(kb.build());
    let p = pb.build().unwrap();
    let r = run_program(&p, vec![], &machine(), &spec(), &SimConfig::default()).unwrap();
    assert_eq!(r.rounds[0].kernel_stats.cycles, 17);
}

#[test]
fn expensive_alu_ops_cost_more() {
    let build = |op: AluOp| {
        let mut pb = ProgramBuilder::new("a");
        pb.begin_round();
        let mut kb = KernelBuilder::new("k", 1, 0);
        for _ in 0..10 {
            kb.alu(op, 0, Operand::Lane, Operand::Imm(7));
        }
        pb.launch(kb.build());
        pb.build().unwrap()
    };
    let cheap = run_program(&build(AluOp::Add), vec![], &machine(), &spec(), &SimConfig::default())
        .unwrap();
    let pricey =
        run_program(&build(AluOp::Rem), vec![], &machine(), &spec(), &SimConfig::default())
            .unwrap();
    assert_eq!(cheap.rounds[0].kernel_stats.cycles, 10);
    assert_eq!(pricey.rounds[0].kernel_stats.cycles, 160); // 16 cycles each
}

#[test]
fn global_oob_fails_with_kernel_name() {
    let mut pb = ProgramBuilder::new("oob");
    let d = pb.device_alloc("a", 32);
    pb.begin_round();
    let mut kb = KernelBuilder::new("bad_kernel", 2, 32);
    kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
    pb.launch(kb.build()); // block 1 reads words 32..64 of a 32-word buffer
    let p = pb.build().unwrap();
    // Padding rounds the 32-word buffer to 32 — block 1 is out of bounds.
    let err = run_program(&p, vec![], &machine(), &spec(), &SimConfig::default()).unwrap_err();
    match err {
        SimError::GlobalOutOfBounds { kernel, .. } => assert_eq!(kernel, "bad_kernel"),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn zero_block_launch_rejected_by_validation() {
    let mut pb = ProgramBuilder::new("z");
    pb.begin_round();
    pb.launch(KernelBuilder::new("k", 0, 0).build());
    assert!(pb.build().is_err());
}

#[test]
fn faster_clock_means_less_wall_time() {
    let (p, _) = copy_program(4096);
    let data: Vec<i64> = (0..4096).collect();
    let slow =
        run_program(&p, vec![data.clone()], &machine(), &spec(), &SimConfig::default()).unwrap();
    let fast_spec = GpuSpec { clock_cycles_per_ms: 4.0 * spec().clock_cycles_per_ms, ..spec() };
    let fast = run_program(&p, vec![data], &machine(), &fast_spec, &SimConfig::default()).unwrap();
    assert!(fast.kernel_ms() < slow.kernel_ms());
    // Same cycles, different wall time.
    assert_eq!(fast.rounds[0].kernel_stats.cycles, slow.rounds[0].kernel_stats.cycles);
}
