//! Chaos differential tests for deterministic fault injection: under any
//! [`FaultPlan`] that leaves at least one device alive, a cluster program
//! must finish with **bit-identical** outputs to the fault-free run —
//! faults cost time, never answers.  Deterministic plans additionally pin
//! retry, backoff and recovery counters exactly; random plans
//! ([`FaultPlan::random`]) check the identity property at scale and that
//! replaying the same plan reproduces the same report to the bit.
//!
//! Unrecoverable situations (every device dead, a watchdog overrun) must
//! surface as structured [`SimError`]s — never as panics.

use atgpu_ir::{AddrExpr, AluOp, HBuf, KernelBuilder, Operand, Program, ProgramBuilder};
use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec};
use atgpu_sim::{
    even_shards, run_cluster_program, run_program, FaultEvent, FaultPlan, LinkEdge, SimConfig,
    SimError,
};

fn machine() -> AtgpuMachine {
    AtgpuMachine::new(1 << 12, 4, 64, 1 << 16).unwrap()
}

fn gspec() -> GpuSpec {
    GpuSpec {
        k_prime: 2,
        h_limit: 4,
        clock_cycles_per_ms: 1000.0,
        xfer_alpha_ms: 0.1,
        xfer_beta_ms_per_word: 0.001,
        sync_ms: 0.05,
        ..GpuSpec::gtx650_like()
    }
}

fn cspec(n: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(n, gspec())
}

fn vecadd_kernel(
    blocks: u64,
    b: u64,
    da: atgpu_ir::DBuf,
    db: atgpu_ir::DBuf,
    dc: atgpu_ir::DBuf,
) -> atgpu_ir::Kernel {
    let mut kb = KernelBuilder::new("vecadd_kernel", blocks, 3 * b);
    let bi = b as i64;
    let g = AddrExpr::block() * bi + AddrExpr::lane();
    kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
    kb.glb_to_shr(AddrExpr::lane() + bi, db, g.clone());
    kb.ld_shr(0, AddrExpr::lane());
    kb.ld_shr(1, AddrExpr::lane() + bi);
    kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1));
    kb.st_shr(AddrExpr::lane() + 2 * bi, Operand::Reg(2));
    kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * bi);
    kb.build()
}

/// A one-round sharded vecadd: each device gets its slices of A and B,
/// runs its shard, returns its slice of C.
fn sharded_vecadd_program(n: u64, devices: u32) -> (Program, HBuf) {
    let b = 4u64;
    let blocks = n / b;
    let mut pb = ProgramBuilder::new("vecadd_sharded");
    let ha = pb.host_input("A", n);
    let hb = pb.host_input("B", n);
    let hc = pb.host_output("C", n);
    let da = pb.device_alloc("a", n);
    let db = pb.device_alloc("b", n);
    let dc = pb.device_alloc("c", n);
    let shards = even_shards(blocks, devices);
    pb.begin_round();
    for s in &shards {
        let (off, words) = (s.start * b, s.blocks() * b);
        pb.transfer_in_to(s.device, ha, off, da, off, words);
        pb.transfer_in_to(s.device, hb, off, db, off, words);
    }
    pb.launch_sharded(vecadd_kernel(blocks, b, da, db, dc), shards.clone());
    for s in &shards {
        let (off, words) = (s.start * b, s.blocks() * b);
        pb.transfer_out_from(s.device, dc, off, hc, off, words);
    }
    (pb.build().unwrap(), hc)
}

/// A two-round program whose round 1 depends on **device-resident** state
/// from round 0: round 0 computes C = A + B (never downloaded), round 1
/// computes E = C + C and downloads E.  A device that dies between the
/// rounds takes its half of C with it — the only way a survivor can run
/// the dead device's round-1 shard correctly is the checkpoint journal.
fn two_round_program(n: u64, devices: u32) -> (Program, HBuf) {
    let b = 4u64;
    let blocks = n / b;
    let bi = b as i64;
    let mut pb = ProgramBuilder::new("vecadd_chain");
    let ha = pb.host_input("A", n);
    let hb = pb.host_input("B", n);
    let he = pb.host_output("E", n);
    let da = pb.device_alloc("a", n);
    let db = pb.device_alloc("b", n);
    let dc = pb.device_alloc("c", n);
    let de = pb.device_alloc("e", n);
    let shards = even_shards(blocks, devices);

    pb.begin_round();
    for s in &shards {
        let (off, words) = (s.start * b, s.blocks() * b);
        pb.transfer_in_to(s.device, ha, off, da, off, words);
        pb.transfer_in_to(s.device, hb, off, db, off, words);
    }
    pb.launch_sharded(vecadd_kernel(blocks, b, da, db, dc), shards.clone());

    pb.begin_round();
    let mut kb = KernelBuilder::new("double_kernel", blocks, 2 * b);
    let g = AddrExpr::block() * bi + AddrExpr::lane();
    kb.glb_to_shr(AddrExpr::lane(), dc, g.clone());
    kb.ld_shr(0, AddrExpr::lane());
    kb.alu(AluOp::Add, 1, Operand::Reg(0), Operand::Reg(0));
    kb.st_shr(AddrExpr::lane() + bi, Operand::Reg(1));
    kb.shr_to_glb(de, g, AddrExpr::lane() + bi);
    pb.launch_sharded(kb.build(), shards.clone());
    for s in &shards {
        let (off, words) = (s.start * b, s.blocks() * b);
        pb.transfer_out_from(s.device, de, off, he, off, words);
    }
    (pb.build().unwrap(), he)
}

/// A plain single-device vecadd for the driver-level chaos tests.
fn plain_vecadd_program(n: u64) -> (Program, HBuf) {
    let b = 4u64;
    let blocks = n / b;
    let mut pb = ProgramBuilder::new("vecadd_plain");
    let ha = pb.host_input("A", n);
    let hb = pb.host_input("B", n);
    let hc = pb.host_output("C", n);
    let da = pb.device_alloc("a", n);
    let db = pb.device_alloc("b", n);
    let dc = pb.device_alloc("c", n);
    pb.begin_round();
    pb.transfer_in(ha, da, n);
    pb.transfer_in(hb, db, n);
    pb.launch(vecadd_kernel(blocks, b, da, db, dc));
    pb.transfer_out(dc, hc, n);
    (pb.build().unwrap(), hc)
}

fn inputs(n: u64, seed: u64) -> Vec<Vec<i64>> {
    let mut x = seed | 1;
    let mut gen = |salt: u64| -> Vec<i64> {
        (0..n)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                ((x ^ salt) % 101) as i64 - 50
            })
            .collect()
    };
    vec![gen(0), gen(0xABCD)]
}

fn faulted(plan: FaultPlan) -> SimConfig {
    SimConfig { fault: plan, ..SimConfig::default() }
}

#[test]
fn empty_fault_plan_is_bit_identical_and_free() {
    let n = 64u64;
    let data = inputs(n, 3);

    // Cluster: an empty plan (even with a nonzero seed) must not change
    // outputs, timing, or counters relative to the default config.
    let (p, hc) = sharded_vecadd_program(n, 2);
    let base = run_cluster_program(&p, data.clone(), &machine(), &cspec(2), &SimConfig::default())
        .unwrap();
    let empty =
        run_cluster_program(&p, data.clone(), &machine(), &cspec(2), &faulted(FaultPlan::new(7)))
            .unwrap();
    assert_eq!(base.output(hc), empty.output(hc));
    assert_eq!(base.total_ms(), empty.total_ms(), "empty plan must not perturb timing at all");
    assert_eq!(base.device_stats, empty.device_stats);
    assert!(empty.device_stats.iter().all(|s| s.retries == 0 && s.recoveries == 0));

    // Single-device driver: same contract.
    let (p1, hc1) = plain_vecadd_program(n);
    let base1 =
        run_program(&p1, data.clone(), &machine(), &gspec(), &SimConfig::default()).unwrap();
    let empty1 = run_program(&p1, data, &machine(), &gspec(), &faulted(FaultPlan::new(9))).unwrap();
    assert_eq!(base1.output(hc1), empty1.output(hc1));
    assert_eq!(base1.total_ms(), empty1.total_ms());
    assert_eq!(base1.device_stats.retries, 0);
}

#[test]
fn dropped_transfers_retry_with_exact_counters() {
    let n = 64u64;
    let data = inputs(n, 5);
    let (p, hc) = sharded_vecadd_program(n, 2);
    let base = run_cluster_program(&p, data.clone(), &machine(), &cspec(2), &SimConfig::default())
        .unwrap();

    // Device 0's first two attempts drop (its first transfer retries
    // twice); device 1 loses exactly one attempt.
    let mut plan = FaultPlan::new(0);
    plan.push(FaultEvent::TransferDrop { edge: LinkEdge::Host(0), nth: 0 });
    plan.push(FaultEvent::TransferDrop { edge: LinkEdge::Host(0), nth: 1 });
    plan.push(FaultEvent::TransferDrop { edge: LinkEdge::Host(1), nth: 0 });
    let r = run_cluster_program(&p, data, &machine(), &cspec(2), &faulted(plan)).unwrap();

    assert_eq!(base.output(hc), r.output(hc), "drops must not change answers");
    assert_eq!(r.device_stats[0].retries, 2);
    assert_eq!(r.device_stats[1].retries, 1);
    assert!(r.device_stats.iter().all(|s| s.recoveries == 0));
    // Exponential backoff in units of σ = 0.05: device 0 waits σ + 2σ,
    // device 1 waits σ.
    assert!((r.device_stats[0].backoff_ms - 0.15).abs() < 1e-12);
    assert!((r.device_stats[1].backoff_ms - 0.05).abs() < 1e-12);
    // Per-round observations carry the same counters.
    let round0: u64 = r.rounds[0].devices.iter().map(|d| d.retries).sum();
    assert_eq!(round0, 3);
    assert!(r.total_ms() > base.total_ms(), "retries and waits must cost time");
}

#[test]
fn straggler_and_degraded_link_change_time_not_results() {
    let n = 64u64;
    let data = inputs(n, 11);
    let (p, hc) = sharded_vecadd_program(n, 2);
    let base = run_cluster_program(&p, data.clone(), &machine(), &cspec(2), &SimConfig::default())
        .unwrap();

    let mut plan = FaultPlan::new(0);
    plan.push(FaultEvent::Straggler { device: 0, clock_factor: 2.0 });
    plan.push(FaultEvent::LinkDegraded {
        edge: LinkEdge::Host(1),
        factor: 3.0,
        from_round: 0,
        to_round: 1,
    });
    let r = run_cluster_program(&p, data, &machine(), &cspec(2), &faulted(plan)).unwrap();

    assert_eq!(base.output(hc), r.output(hc));
    let (b0, f0) = (&base.rounds[0].devices[0], &r.rounds[0].devices[0]);
    let (b1, f1) = (&base.rounds[0].devices[1], &r.rounds[0].devices[1]);
    assert!((f0.kernel_ms - 2.0 * b0.kernel_ms).abs() < 1e-9, "straggler doubles kernel time");
    assert!((f1.xfer_in_ms - 3.0 * b1.xfer_in_ms).abs() < 1e-9, "degraded window triples T_I");
    assert!((f1.kernel_ms - b1.kernel_ms).abs() < 1e-12, "device 1's clock is untouched");
    assert_eq!(r.device_stats[0].retries + r.device_stats[1].retries, 0);
}

#[test]
fn device_loss_recovers_bit_identically_from_the_journal() {
    let n = 64u64;
    let data = inputs(n, 13);
    let (p, he) = two_round_program(n, 2);
    let base = run_cluster_program(&p, data.clone(), &machine(), &cspec(2), &SimConfig::default())
        .unwrap();

    // Device 1 dies between the rounds: its half of C exists only in its
    // replica and the journal.  The survivor must reproduce E exactly.
    let mut plan = FaultPlan::new(0);
    plan.push(FaultEvent::DeviceDown { device: 1, at_round: 1 });
    let r = run_cluster_program(&p, data, &machine(), &cspec(2), &faulted(plan)).unwrap();

    assert_eq!(base.output(he), r.output(he), "recovery must be bit-identical");
    assert_eq!(r.device_stats[0].recoveries, 1, "the survivor absorbed one checkpoint");
    // The dead device does nothing in round 1.
    assert_eq!(r.rounds[1].devices[1].kernel_ms, 0.0);
    assert_eq!(r.rounds[1].devices[1].xfer_out_ms, 0.0);
    assert!(r.rounds[1].devices[0].kernel_ms > base.rounds[1].devices[0].kernel_ms);
}

#[test]
fn mid_program_loss_on_four_devices_stays_under_2x() {
    let n = 128u64;
    let data = inputs(n, 17);
    let (p, he) = two_round_program(n, 4);
    let base = run_cluster_program(&p, data.clone(), &machine(), &cspec(4), &SimConfig::default())
        .unwrap();

    let mut plan = FaultPlan::new(0);
    plan.push(FaultEvent::DeviceDown { device: 2, at_round: 1 });
    let r = run_cluster_program(&p, data, &machine(), &cspec(4), &faulted(plan)).unwrap();

    assert_eq!(base.output(he), r.output(he));
    assert_eq!(r.device_stats.iter().map(|s| s.recoveries).sum::<u64>(), 3);
    assert!(
        r.total_ms() < 2.0 * base.total_ms(),
        "one loss among four devices must not double the run: {} vs {}",
        r.total_ms(),
        base.total_ms()
    );
}

#[test]
fn journal_replay_is_billed_once_on_the_heir() {
    let n = 128u64;
    let data = inputs(n, 29);
    let (p, he) = two_round_program(n, 4);
    let base = run_cluster_program(&p, data.clone(), &machine(), &cspec(4), &SimConfig::default())
        .unwrap();

    let mut plan = FaultPlan::new(0);
    plan.push(FaultEvent::DeviceDown { device: 2, at_round: 1 });
    let r = run_cluster_program(&p, data, &machine(), &cspec(4), &faulted(plan)).unwrap();
    assert_eq!(base.output(he), r.output(he));

    // Every survivor restores its memory from the journal (three
    // recoveries), but the replay *transfer* is one host-link
    // transaction and must be billed exactly once — on the heir, the
    // lowest-index survivor.  Device 2's round-0 journal covers its A
    // and B slices (32 words each) plus its 32 words of C: 96 words,
    // priced at α + β·96 = 0.1 + 0.001·96 on the heir's link.
    assert_eq!(r.device_stats.iter().map(|s| s.recoveries).sum::<u64>(), 3);
    let round1 = &r.rounds[1];
    assert!(
        (round1.devices[0].xfer_in_ms - 0.196).abs() < 1e-12,
        "heir billed α + β·96 = 0.196, got {}",
        round1.devices[0].xfer_in_ms
    );
    assert_eq!(round1.devices[1].xfer_in_ms, 0.0, "non-heir survivors pay no replay transfer");
    assert_eq!(round1.devices[3].xfer_in_ms, 0.0, "non-heir survivors pay no replay transfer");
    assert_eq!(round1.devices[2].xfer_in_ms, 0.0, "the dead device transfers nothing");
    // The cluster-wide transfer roll-up therefore grows by exactly one
    // replay transaction relative to the fault-free run.
    let billed: f64 = r.transfer_ms_per_device().iter().sum();
    let fault_free: f64 = base.transfer_ms_per_device().iter().sum();
    assert!(
        (billed - fault_free - 0.196).abs() < 1e-9,
        "replay must be charged once, not per survivor: {billed} vs {fault_free}"
    );
}

#[test]
fn per_device_rollups_survive_ragged_rounds_and_device_loss() {
    let n = 128u64;
    let data = inputs(n, 31);
    let (p, _) = two_round_program(n, 4);
    let mut plan = FaultPlan::new(0);
    plan.push(FaultEvent::DeviceDown { device: 2, at_round: 1 });
    let mut r = run_cluster_program(&p, data, &machine(), &cspec(4), &faulted(plan)).unwrap();

    // Device identity is positional and stable across the loss
    // boundary: the dead device keeps its column (its round-0 work),
    // and every column equals the manual per-round roll-up.
    let kern = r.kernel_ms_per_device();
    let xfer = r.transfer_ms_per_device();
    assert_eq!(kern.len(), 4);
    assert_eq!(xfer.len(), 4);
    assert_eq!(kern[2], r.rounds[0].devices[2].kernel_ms);
    assert!(kern[2] > 0.0, "the dead device's pre-loss work must not vanish");
    for (d, &col) in kern.iter().enumerate() {
        let manual: f64 = r.rounds.iter().map(|rr| rr.devices[d].kernel_ms).sum();
        assert_eq!(col, manual);
    }

    // Regression: the rollups used to size their output from
    // `rounds.first()`.  A report whose first round is narrower than a
    // later one (device columns appearing after round 0) must size
    // from the widest round — the old code panicked indexing past the
    // first round's width.
    r.rounds[0].devices.truncate(1);
    let kern = r.kernel_ms_per_device();
    let xfer = r.transfer_ms_per_device();
    assert_eq!(kern.len(), 4, "output must be sized by the widest round, not the first");
    assert_eq!(xfer.len(), 4);
    assert_eq!(kern[3], r.rounds[1].devices[3].kernel_ms);
}

#[test]
fn losing_every_device_is_a_structured_error() {
    let n = 64u64;
    let data = inputs(n, 19);
    let (p, _) = sharded_vecadd_program(n, 2);
    let mut plan = FaultPlan::new(0);
    plan.push(FaultEvent::DeviceDown { device: 0, at_round: 0 });
    plan.push(FaultEvent::DeviceDown { device: 1, at_round: 0 });
    let err = run_cluster_program(&p, data.clone(), &machine(), &cspec(2), &faulted(plan))
        .expect_err("no survivors");
    assert!(matches!(err, SimError::DeviceLost { .. }), "{err}");

    // A single-device program's only device dying is also unrecoverable.
    let (p1, _) = plain_vecadd_program(n);
    let mut plan = FaultPlan::new(0);
    plan.push(FaultEvent::DeviceDown { device: 0, at_round: 0 });
    let err = run_program(&p1, data, &machine(), &gspec(), &faulted(plan)).expect_err("dead");
    assert_eq!(err, SimError::DeviceLost { device: 0, round: 0 });
}

#[test]
fn watchdog_trips_as_structured_error() {
    let n = 64u64;
    let data = inputs(n, 23);

    let (p1, _) = plain_vecadd_program(n);
    let tight = SimConfig { watchdog_cycles: 1, ..SimConfig::default() };
    let err = run_program(&p1, data.clone(), &machine(), &gspec(), &tight).expect_err("overrun");
    match err {
        SimError::Watchdog { kernel, budget } => {
            assert_eq!(kernel, "vecadd_kernel");
            assert_eq!(budget, 1);
        }
        other => panic!("expected Watchdog, got {other}"),
    }
    let roomy = SimConfig { watchdog_cycles: 1 << 40, ..SimConfig::default() };
    assert!(run_program(&p1, data.clone(), &machine(), &gspec(), &roomy).is_ok());

    // The cluster driver arms the same watchdog on every device.
    let (p, _) = sharded_vecadd_program(n, 2);
    let tight = SimConfig { watchdog_cycles: 1, ..SimConfig::default() };
    let err = run_cluster_program(&p, data, &machine(), &cspec(2), &tight).expect_err("overrun");
    assert!(matches!(err, SimError::Watchdog { .. }), "{err}");
}

mod random_chaos {
    use super::*;
    use proptest::prelude::*;

    /// CI seed matrix: `ATGPU_CHAOS_SEED` (default 0) is folded into
    /// every generated plan seed, so each matrix entry explores a
    /// different — but fully reproducible — slice of the plan space.  A
    /// flake report is replayed by re-running with the same value.
    fn matrix_seed() -> u64 {
        std::env::var("ATGPU_CHAOS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any random fault plan (drops, degradations, stragglers and
        /// deaths that spare at least one device — [`FaultPlan::random`]
        /// guarantees a survivor) leaves a multi-round cluster program's
        /// outputs bit-identical, and replaying the identical plan
        /// reproduces the identical report: same output bits, same wall
        /// clock, same retry/backoff/recovery counters.
        #[test]
        fn cluster_chaos_never_changes_answers(seed in 0u64..1_000_000_000) {
            let devices = 2 + (seed % 3) as u32; // 2..=4
            let n = 96u64;
            let data = inputs(n, seed);
            let (p, he) = two_round_program(n, devices);
            let cl = cspec(devices as usize);
            let base = run_cluster_program(&p, data.clone(), &machine(), &cl, &SimConfig::default())
                .unwrap();

            let plan = FaultPlan::random(seed ^ matrix_seed(), devices, 2, 0.2);
            let cfg = faulted(plan);
            let r1 = run_cluster_program(&p, data.clone(), &machine(), &cl, &cfg).unwrap();
            let r2 = run_cluster_program(&p, data, &machine(), &cl, &cfg).unwrap();

            prop_assert_eq!(base.output(he), r1.output(he), "chaos changed answers (seed {})", seed);
            // Exact replay: the plan is a schedule, so every observable
            // is a pure function of (program, inputs, plan).
            prop_assert_eq!(r1.output(he), r2.output(he));
            prop_assert_eq!(r1.total_ms().to_bits(), r2.total_ms().to_bits());
            prop_assert_eq!(&r1.device_stats, &r2.device_stats);
        }

        /// Single-device runs under random drop/degradation/straggler
        /// plans (no deaths are generated for one device): answers and
        /// replays are bit-stable, and retries appear iff drops were
        /// scheduled early enough to be consumed.
        #[test]
        fn single_device_chaos_is_deterministic(seed in 0u64..1_000_000_000) {
            let n = 64u64;
            let data = inputs(n, seed);
            let (p, hc) = plain_vecadd_program(n);
            let base =
                run_program(&p, data.clone(), &machine(), &gspec(), &SimConfig::default()).unwrap();

            let plan = FaultPlan::random(seed ^ matrix_seed(), 1, 1, 0.35);
            prop_assert!(
                !plan.events.iter().any(|e| matches!(e, FaultEvent::DeviceDown { .. })),
                "random plans never kill the only device"
            );
            let cfg = faulted(plan);
            let r1 = run_program(&p, data.clone(), &machine(), &gspec(), &cfg).unwrap();
            let r2 = run_program(&p, data, &machine(), &gspec(), &cfg).unwrap();
            prop_assert_eq!(base.output(hc), r1.output(hc));
            prop_assert_eq!(r1.output(hc), r2.output(hc));
            prop_assert_eq!(r1.total_ms().to_bits(), r2.total_ms().to_bits());
            prop_assert_eq!(r1.device_stats.retries, r2.device_stats.retries);
            prop_assert_eq!(r1.device_stats.backoff_ms.to_bits(), r2.device_stats.backoff_ms.to_bits());
        }
    }
}
