//! Differential property tests for the multi-device cluster layer: a
//! sharded launch must be **bit-identical** to the single-device launch
//! of the same kernel — same final global memory and, per shard, the
//! same statistics from the micro-op engine and the tree-walking
//! reference — for randomized kernels, randomized shard plans (including
//! uneven cuts and several shards on one device), device counts 1–4,
//! both `ExecMode`s and both engine selections.
//!
//! Kernel generation mirrors `engine_differential.rs` with one extra
//! constraint that makes *all* execution semantics coincide: global
//! reads come only from buffer 0 (never written) and global writes go to
//! block-disjoint addresses of buffer 1 (`i·b + j`).  Cross-block
//! visibility and write ordering — undefined in the model — therefore
//! cannot distinguish direct, deferred-log or cross-device execution,
//! so the comparison pins down real divergence only.

use atgpu_ir::{AddrExpr, AluOp, DBuf, Kernel, KernelBuilder, Operand, PredExpr, Shard};
use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec};
use atgpu_sim::cluster::{even_shards, Cluster, ShardStats};
use atgpu_sim::gmem::GlobalMemory;
use atgpu_sim::{Device, EngineSel, ExecMode};
use proptest::prelude::*;
use std::cell::RefCell;

/// Number of data registers the generator plays with (plus one reserved
/// gather register).
const NDATA: u8 = 6;
/// The reserved register for bounded data-dependent addressing.
const RG: u8 = 7;

struct Gen {
    state: u64,
    b: i64,
    shared: i64,
    loop_depth: u8,
    budget: u32,
}

impl Gen {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn operand(&mut self) -> Operand {
        match self.below(6) {
            0 => Operand::Imm(self.below(9) as i64 - 4),
            1 => Operand::Lane,
            2 => Operand::Block,
            3 => Operand::Reg(self.below(u64::from(NDATA)) as u8),
            4 if self.loop_depth > 0 => {
                Operand::LoopVar(self.below(u64::from(self.loop_depth)) as u8)
            }
            _ => Operand::Imm(self.below(17) as i64),
        }
    }

    fn alu_op(&mut self) -> AluOp {
        const OPS: [AluOp; 12] = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::Min,
            AluOp::Max,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::SetLt,
            AluOp::SetEq,
        ];
        OPS[self.below(OPS.len() as u64) as usize]
    }

    /// A shared-memory address guaranteed in `[0, shared)` for every lane,
    /// block and loop iteration.
    fn sh_addr(&mut self) -> AddrExpr {
        let b = self.b;
        let base_room = self.shared - 8 * b;
        let k = self.below(base_room.max(1) as u64) as i64;
        let loop_term = |g: &mut Self| -> AddrExpr {
            if g.loop_depth > 0 && g.below(2) == 0 {
                let d = g.below(u64::from(g.loop_depth)) as u8;
                AddrExpr::loop_var(d) * g.b
            } else {
                AddrExpr::c(0)
            }
        };
        match self.below(5) {
            0 => AddrExpr::lane() + loop_term(self) + k,
            1 => loop_term(self) + k,
            2 => AddrExpr::lane() * 2 + loop_term(self) + k.min(base_room.max(2) - 1),
            3 => AddrExpr::reg(RG) + k,
            _ => AddrExpr::c(b - 1) - AddrExpr::lane() + loop_term(self) + k,
        }
    }

    /// A global **read** address within buffer 0's word count (the
    /// read-only buffer, so any shape is fair game).
    fn g_read_addr(&mut self) -> AddrExpr {
        let b = self.b;
        let k = self.below(32) as i64;
        match self.below(4) {
            0 => AddrExpr::block() * b + AddrExpr::lane(),
            1 => AddrExpr::lane() + k,
            2 => AddrExpr::reg(RG) + k,
            _ => AddrExpr::block() * b + AddrExpr::lane() * 2,
        }
    }

    /// A global **write** address into buffer 1, block-disjoint: block
    /// `i` owns exactly `[i·b, (i+1)·b)`, so no write order — across
    /// MPs, threads or devices — can change the final memory.
    fn g_write_addr(&mut self) -> AddrExpr {
        AddrExpr::block() * self.b + AddrExpr::lane()
    }
}

/// Seeds the bounded gather register: `RG ← lane·s`.
fn seed_rg(g: &RefCell<Gen>, kb: &mut KernelBuilder) {
    let s = g.borrow_mut().below(3) as i64;
    kb.alu(AluOp::Mul, RG, Operand::Lane, Operand::Imm(s));
}

fn gen_body(g: &RefCell<Gen>, kb: &mut KernelBuilder, depth: u32) {
    let items = 2 + g.borrow_mut().below(4) as u32;
    for _ in 0..items {
        let choice = {
            let mut gg = g.borrow_mut();
            if gg.budget == 0 {
                return;
            }
            gg.budget -= 1;
            gg.below(10)
        };
        match choice {
            0 => {
                let mut gg = g.borrow_mut();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let src = gg.operand();
                drop(gg);
                kb.mov(dst, src);
            }
            1 | 2 => {
                let mut gg = g.borrow_mut();
                let op = gg.alu_op();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let (a, b) = (gg.operand(), gg.operand());
                drop(gg);
                kb.alu(op, dst, a, b);
            }
            3 => {
                let mut gg = g.borrow_mut();
                let addr = gg.sh_addr();
                let src = gg.operand();
                drop(gg);
                kb.st_shr(addr, src);
            }
            4 => {
                let mut gg = g.borrow_mut();
                let dst = gg.below(u64::from(NDATA)) as u8;
                let addr = gg.sh_addr();
                drop(gg);
                kb.ld_shr(dst, addr);
            }
            5 => {
                seed_rg(g, kb);
                let (sh, ga) = {
                    let mut gg = g.borrow_mut();
                    (gg.sh_addr(), gg.g_read_addr())
                };
                kb.glb_to_shr(sh, DBuf(0), ga);
            }
            6 => {
                let (sh, ga) = {
                    let mut gg = g.borrow_mut();
                    (gg.sh_addr(), gg.g_write_addr())
                };
                kb.shr_to_glb(DBuf(1), ga, sh);
            }
            7 if depth < 2 => {
                let (pred, with_else) = {
                    let mut gg = g.borrow_mut();
                    let b = gg.b as u64;
                    let pred = match gg.below(4) {
                        0 => PredExpr::Lt(Operand::Lane, Operand::Imm(gg.below(b + 1) as i64)),
                        1 => PredExpr::Lt(Operand::Block, Operand::Imm(gg.below(4) as i64)),
                        2 => PredExpr::Eq(
                            Operand::Reg(gg.below(u64::from(NDATA)) as u8),
                            Operand::Imm(gg.below(3) as i64),
                        ),
                        _ => PredExpr::Ne(Operand::Lane, Operand::Imm(gg.below(b) as i64)),
                    };
                    (pred, gg.below(2) == 0)
                };
                kb.pred(
                    pred,
                    |kb| gen_body(g, kb, depth + 1),
                    |kb| {
                        if with_else {
                            gen_body(g, kb, depth + 1)
                        }
                    },
                );
            }
            8 if depth < 2 => {
                let count = {
                    let mut gg = g.borrow_mut();
                    if gg.loop_depth >= 2 {
                        None
                    } else {
                        gg.loop_depth += 1;
                        Some(1 + gg.below(3) as u32)
                    }
                };
                if let Some(count) = count {
                    kb.repeat(count, |kb| gen_body(g, kb, depth + 1));
                    g.borrow_mut().loop_depth -= 1;
                } else {
                    kb.sync();
                }
            }
            _ => {
                kb.sync();
            }
        }
    }
}

/// Builds a random kernel plus a compatible machine/global memory layout.
/// Grids are larger than `engine_differential`'s (4–15 blocks) so shard
/// plans over up to 4 devices stay interesting.
fn gen_kernel(seed: u64) -> (Kernel, AtgpuMachine, Vec<u64>, u64) {
    let mut g0 = Gen { state: seed | 1, b: 0, shared: 0, loop_depth: 0, budget: 0 };
    let b: i64 = [4, 8, 16, 32][g0.below(4) as usize];
    let blocks = 4 + g0.below(12);
    let shared = (10 * b + 64) as u64;
    // Buffer 0 (read-only) must admit every read shape; buffer 1 holds
    // one block-owned row per block.
    let gwords = (blocks as i64 * b + 4 * b + 64) as u64;
    let gen =
        RefCell::new(Gen { state: g0.state, b, shared: shared as i64, loop_depth: 0, budget: 28 });
    let mut kb = KernelBuilder::new(format!("cdiff_{seed:x}"), blocks, shared);
    seed_rg(&gen, &mut kb);
    gen_body(&gen, &mut kb, 0);
    let kernel = kb.build();
    let machine =
        AtgpuMachine::new(4 * b as u64, b as u64, shared.max(2 * gwords), 1 << 22).unwrap();
    (kernel, machine, vec![0, gwords], 2 * gwords)
}

fn fill_gmem(g: &mut GlobalMemory, total: u64, seed: u64) {
    let mut x = seed | 1;
    for i in 0..total {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        g.write(i as i64, (x % 17) as i64 - 8);
    }
}

/// A randomized shard plan: partitions `0..blocks` at random cut points
/// and assigns each range to a random device in `0..devices` — uneven
/// cuts, idle devices and several shards per device all occur.
fn random_shards(seed: u64, blocks: u64, devices: u32) -> Vec<Shard> {
    let mut g = Gen { state: seed | 1, b: 0, shared: 0, loop_depth: 0, budget: 0 };
    if g.below(3) == 0 {
        // One case in three uses the planner's even split.
        return even_shards(blocks, devices);
    }
    let mut cuts: Vec<u64> = (0..u64::from(devices) - 1).map(|_| g.below(blocks + 1)).collect();
    cuts.push(0);
    cuts.push(blocks);
    cuts.sort_unstable();
    let mut out = Vec::new();
    for w in cuts.windows(2) {
        if w[1] > w[0] {
            out.push(Shard { device: g.below(u64::from(devices)) as u32, start: w[0], end: w[1] });
        }
    }
    out
}

fn cluster_spec(n: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(n, GpuSpec { k_prime: 2, h_limit: 4, ..GpuSpec::gtx650_like() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every device count, shard plan, execution mode and engine, the
    /// cluster's final global memory is bit-identical to the
    /// single-device launch, shard statistics are bit-identical between
    /// the micro-op engine and the reference interpreter, and the shards
    /// together execute exactly the grid.
    #[test]
    fn cluster_is_bit_identical_to_single_device(seed in 0u64..1_000_000_000) {
        let (kernel, machine, bases, total) = gen_kernel(seed);
        let spec = GpuSpec { k_prime: 2, h_limit: 4, ..GpuSpec::gtx650_like() };
        let device = Device::new(machine, spec).unwrap();

        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 2 }] {
            // Single-device baseline (per mode; timing differs between
            // modes but memory may not).
            let mut g_base = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
            fill_gmem(&mut g_base, total, seed);
            let base = device.run_kernel_with(&kernel, &mut g_base, mode, false, EngineSel::MicroOp);
            let base = match base {
                Ok(s) => s,
                // Error parity has its own tests; the generator keeps the
                // success path, but bail symmetrically if a case errors.
                Err(_) => return Ok(()),
            };

            for devices in [1u32, 2, 3, 4] {
                let cluster = Cluster::new(machine, cluster_spec(devices as usize)).unwrap();
                let shards = random_shards(seed ^ u64::from(devices), kernel.blocks(), devices);
                prop_assert_eq!(shards.iter().map(Shard::blocks).sum::<u64>(), kernel.blocks());

                let mut runs: Vec<Vec<ShardStats>> = Vec::new();
                for engine in [EngineSel::MicroOp, EngineSel::Reference] {
                    let mut g = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
                    fill_gmem(&mut g, total, seed);
                    let stats = cluster
                        .run_sharded_kernel(&kernel, &mut g, &shards, mode, false, engine)
                        .unwrap();
                    prop_assert_eq!(
                        g.words(),
                        g_base.words(),
                        "memory mismatch: devices={} mode={:?} engine={:?}",
                        devices, mode, engine
                    );
                    prop_assert_eq!(
                        stats.iter().map(|s| s.stats.blocks).sum::<u64>(),
                        kernel.blocks()
                    );
                    runs.push(stats);
                }
                // Per-shard stats bit-identical across engines.
                prop_assert_eq!(&runs[0], &runs[1], "engine stats mismatch: devices={devices} mode={mode:?}");

                // A one-shard plan on device 0 reproduces the baseline
                // stats exactly (same mode, same engine).
                if devices == 1 && shards.len() == 1 {
                    prop_assert_eq!(runs[0][0].stats, base, "one-shard stats differ from device run");
                }
            }
        }
    }

    /// Sequential and parallel cluster runs agree functionally with each
    /// other and with the even-shard plan: shard boundaries and MP-thread
    /// interleaving must never leak into results.
    #[test]
    fn shard_plan_and_mode_never_change_memory(seed in 0u64..1_000_000_000) {
        let (kernel, machine, bases, total) = gen_kernel(seed);
        let cluster = Cluster::new(machine, cluster_spec(3)).unwrap();

        let mut reference: Option<Vec<i64>> = None;
        for (salt, mode) in
            [(1u64, ExecMode::Sequential), (2, ExecMode::Parallel { threads: 3 })]
        {
            for plan_seed in [3u64, 4] {
                let shards = random_shards(seed ^ salt ^ (plan_seed << 32), kernel.blocks(), 3);
                let mut g = GlobalMemory::new(bases.clone(), total, machine.b, machine.g).unwrap();
                fill_gmem(&mut g, total, seed);
                cluster
                    .run_sharded_kernel(&kernel, &mut g, &shards, mode, false, EngineSel::MicroOp)
                    .unwrap();
                match &reference {
                    None => reference = Some(g.words().to_vec()),
                    Some(r) => prop_assert_eq!(
                        r.as_slice(),
                        g.words(),
                        "plan/mode changed results: mode={:?} plan={:?}",
                        mode,
                        shards
                    ),
                }
            }
        }
    }
}
