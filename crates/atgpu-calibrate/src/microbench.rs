//! Microbenchmark programs targeting one cost constant each.

use atgpu_algos::AlgosError;
use atgpu_ir::{AddrExpr, KernelBuilder, Operand, ProgramBuilder};
use atgpu_model::{AtgpuMachine, GpuSpec};
use atgpu_sim::{run_program, SimConfig};

/// Measures one host→device transfer of `words` words; returns elapsed
/// milliseconds.
pub fn measure_transfer_in(
    words: u64,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    config: &SimConfig,
) -> Result<f64, AlgosError> {
    let mut pb = ProgramBuilder::new("xfer-bench");
    let h = pb.host_input("X", words);
    let d = pb.device_alloc("x", words);
    pb.begin_round();
    pb.transfer_in(h, d, words);
    let p = pb.build()?;
    let report = run_program(&p, vec![vec![0; words as usize]], machine, spec, config)?;
    Ok(report.rounds[0].xfer_in_ms)
}

/// Measures an empty round; returns elapsed milliseconds (the
/// synchronisation overhead `σ`).
pub fn measure_sync(
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    config: &SimConfig,
) -> Result<f64, AlgosError> {
    let mut pb = ProgramBuilder::new("sync-bench");
    pb.begin_round();
    pb.end_round();
    let p = pb.build()?;
    let report = run_program(&p, vec![], machine, spec, config)?;
    Ok(report.rounds[0].total_ms())
}

/// Measures a compute-only kernel (one block, `ops` lockstep moves);
/// returns elapsed milliseconds.  With a single warp the MP issues one
/// operation per cycle, so the slope of `time(ops)` is `1/γ`.
pub fn measure_compute(
    ops: u32,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    config: &SimConfig,
) -> Result<f64, AlgosError> {
    let mut pb = ProgramBuilder::new("gamma-bench");
    let mut kb = KernelBuilder::new("spin", 1, 0);
    kb.repeat(ops, |kb| {
        kb.mov(0, Operand::Imm(1));
    });
    pb.begin_round();
    pb.launch(kb.build());
    let p = pb.build()?;
    let report = run_program(&p, vec![], machine, spec, config)?;
    Ok(report.rounds[0].kernel_ms)
}

/// Measures a dependent-access kernel: one block performing `accesses`
/// coalesced global reads back to back, with no other warp to hide the
/// latency.  The slope of `time(accesses)` is the exposed per-block
/// access cost — the model's `λ` (in time units; multiply by `γ` for
/// cycles).
pub fn measure_global_access(
    accesses: u32,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    config: &SimConfig,
) -> Result<f64, AlgosError> {
    let b = machine.b;
    let words = u64::from(accesses) * b;
    let mut pb = ProgramBuilder::new("lambda-bench");
    let d = pb.device_alloc("x", words.max(b));
    let mut kb = KernelBuilder::new("chase", 1, b);
    kb.repeat(accesses, |kb| {
        // _s[j] ⇐ x[t0·b + j]: one coalesced transaction per iteration.
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::loop_var(0) * (b as i64) + AddrExpr::lane());
    });
    pb.begin_round();
    pb.launch(kb.build());
    let p = pb.build()?;
    let report = run_program(&p, vec![], machine, spec, config)?;
    Ok(report.rounds[0].kernel_ms)
}

/// Measures a streaming kernel: `blocks` thread blocks each performing
/// one coalesced global read, saturating the memory pipe.  The slope of
/// `time(blocks)` is the **effective** per-transaction cost under full
/// latency hiding — the `λ` that makes the cost function predictive for
/// bandwidth-bound kernels.
pub fn measure_streaming_access(
    blocks: u64,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    config: &SimConfig,
) -> Result<f64, AlgosError> {
    let b = machine.b;
    let words = blocks * b;
    let mut pb = ProgramBuilder::new("lambda-stream-bench");
    let d = pb.device_alloc("x", words);
    let mut kb = KernelBuilder::new("stream", blocks, b);
    kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * (b as i64) + AddrExpr::lane());
    pb.begin_round();
    pb.launch(kb.build());
    let p = pb.build()?;
    let report = run_program(&p, vec![], machine, spec, config)?;
    Ok(report.rounds[0].kernel_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 16, 32, 12_288, 1 << 24).unwrap()
    }

    fn spec() -> GpuSpec {
        GpuSpec::gtx650_like()
    }

    #[test]
    fn transfer_time_is_affine_in_words() {
        let cfg = SimConfig::default();
        let t1 = measure_transfer_in(1000, &machine(), &spec(), &cfg).unwrap();
        let t2 = measure_transfer_in(2000, &machine(), &spec(), &cfg).unwrap();
        let t3 = measure_transfer_in(3000, &machine(), &spec(), &cfg).unwrap();
        // Equal spacing in words -> equal spacing in time.
        assert!(((t2 - t1) - (t3 - t2)).abs() < 1e-9);
        assert!(t2 > t1);
    }

    #[test]
    fn sync_measures_sigma_exactly() {
        let cfg = SimConfig::default();
        let s = measure_sync(&machine(), &spec(), &cfg).unwrap();
        assert!((s - spec().sync_ms).abs() < 1e-12);
    }

    #[test]
    fn compute_scales_linearly() {
        let cfg = SimConfig::default();
        let t1 = measure_compute(1000, &machine(), &spec(), &cfg).unwrap();
        let t2 = measure_compute(2000, &machine(), &spec(), &cfg).unwrap();
        assert!(t2 > 1.9 * t1 && t2 < 2.1 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn global_access_slope_reflects_latency() {
        let cfg = SimConfig::default();
        let t1 = measure_global_access(64, &machine(), &spec(), &cfg).unwrap();
        let t2 = measure_global_access(128, &machine(), &spec(), &cfg).unwrap();
        let slope_ms = (t2 - t1) / 64.0;
        let cycles = slope_ms * spec().clock_cycles_per_ms;
        let lat = spec().dram_latency_cycles as f64;
        assert!(
            cycles > lat * 0.9 && cycles < lat * 1.3,
            "measured {cycles} cycles/access vs latency {lat}"
        );
    }

    #[test]
    fn streaming_slope_reflects_issue_interval() {
        let cfg = SimConfig::default();
        let t1 = measure_streaming_access(1024, &machine(), &spec(), &cfg).unwrap();
        let t2 = measure_streaming_access(2048, &machine(), &spec(), &cfg).unwrap();
        let slope_ms = (t2 - t1) / 1024.0;
        let cycles = slope_ms * spec().clock_cycles_per_ms;
        let issue = spec().dram_issue_cycles as f64;
        assert!(
            cycles > issue * 0.8 && cycles < issue * 1.3,
            "measured {cycles} cycles/txn vs issue interval {issue}"
        );
    }
}
