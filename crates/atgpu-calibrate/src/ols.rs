//! Ordinary least squares, built from scratch: simple lines and small
//! multi-feature fits via normal equations with Gaussian elimination.

/// A fitted line `y = intercept + slope·x` with its coefficient of
/// determination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept.
    pub intercept: f64,
    /// Slope.
    pub slope: f64,
    /// R² on the fitting data.
    pub r2: f64,
}

/// Fits `y = a + b·x` by least squares.  Needs at least two distinct `x`
/// values; returns `None` otherwise.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Some(LinearFit { intercept, slope, r2 })
}

/// Solves the least-squares problem `X·β ≈ y` for a small feature count
/// via the normal equations `XᵀX·β = Xᵀy`.  Each row of `rows` is one
/// observation's feature vector (include a constant-1 column for an
/// intercept).  Returns `None` for inconsistent shapes or a singular
/// system.
pub fn fit_multilinear(rows: &[Vec<f64>], ys: &[f64]) -> Option<Vec<f64>> {
    let m = rows.first()?.len();
    if rows.len() != ys.len() || rows.len() < m || rows.iter().any(|r| r.len() != m) {
        return None;
    }
    // Normal equations.
    let mut a = vec![vec![0.0f64; m + 1]; m]; // augmented [XtX | Xty]
    for (row, &y) in rows.iter().zip(ys) {
        for i in 0..m {
            for j in 0..m {
                a[i][j] += row[i] * row[j];
            }
            a[i][m] += row[i] * y;
        }
    }
    gauss_solve(&mut a, m)
}

/// Gaussian elimination with partial pivoting on an `m×(m+1)` augmented
/// matrix.
fn gauss_solve(a: &mut [Vec<f64>], m: usize) -> Option<Vec<f64>> {
    for col in 0..m {
        // Pivot.
        let piv = (col..m)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite"))?;
        if a[piv][col].abs() < 1e-12 {
            return None; // singular
        }
        a.swap(col, piv);
        // Eliminate below.
        for row in col + 1..m {
            let f = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (x, &p) in rest[0].iter_mut().zip(pivot).skip(col) {
                *x -= f * p;
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; m];
    for col in (0..m).rev() {
        let mut v = a[col][m];
        for k in col + 1..m {
            v -= a[col][k] * x[k];
        }
        x[col] = v / a[col][col];
    }
    Some(x)
}

/// Mean absolute percentage error between predictions and observations
/// (observations of zero are skipped).
pub fn mape(predicted: &[f64], observed: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (&p, &o) in predicted.iter().zip(observed) {
        if o != 0.0 {
            total += ((p - o) / o).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let f = fit_line(&xs, &ys).unwrap();
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fits_reasonably() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let f = fit_line(&xs, &ys).unwrap();
        assert!((f.slope - 0.5).abs() < 0.01);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_line(&[1.0], &[2.0]).is_none());
        assert!(fit_line(&[2.0, 2.0], &[1.0, 3.0]).is_none()); // no x variance
        assert!(fit_line(&[1.0, 2.0], &[1.0]).is_none()); // length mismatch
    }

    #[test]
    fn constant_y_has_r2_one() {
        let f = fit_line(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn multilinear_recovers_two_coefficients() {
        // y = 4·u + 0.25·v over a small grid.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for u in 1..5 {
            for v in [10.0, 100.0, 1000.0] {
                rows.push(vec![u as f64, v]);
                ys.push(4.0 * u as f64 + 0.25 * v);
            }
        }
        let beta = fit_multilinear(&rows, &ys).unwrap();
        assert!((beta[0] - 4.0).abs() < 1e-9);
        assert!((beta[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn multilinear_with_intercept_column() {
        // y = 7 + 2·x.
        let rows: Vec<Vec<f64>> = (0..10).map(|x| vec![1.0, x as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|x| 7.0 + 2.0 * x as f64).collect();
        let beta = fit_multilinear(&rows, &ys).unwrap();
        assert!((beta[0] - 7.0).abs() < 1e-9);
        assert!((beta[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn singular_system_rejected() {
        // Two identical columns.
        let rows: Vec<Vec<f64>> = (0..5).map(|x| vec![x as f64, x as f64]).collect();
        let ys: Vec<f64> = (0..5).map(|x| 3.0 * x as f64).collect();
        assert!(fit_multilinear(&rows, &ys).is_none());
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(fit_multilinear(&[vec![1.0, 2.0]], &[1.0]).is_none());
    }

    #[test]
    fn mape_basics() {
        assert!((mape(&[110.0], &[100.0]) - 0.1).abs() < 1e-12);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
    }
}
