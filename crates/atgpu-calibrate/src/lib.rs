//! # atgpu-calibrate — recovering cost parameters from measurements
//!
//! Boyer et al. fitted their transfer function `T = Î·α + I·β` by
//! regression over measured copies on real hardware; the paper adopts
//! that function for ATGPU's transfer cost.  This crate does the same
//! against the simulated device: it runs targeted microbenchmark
//! programs, measures them with `atgpu-sim`, and recovers
//!
//! * `α`, `β` — from a transfer-size sweep (ordinary least squares);
//! * `σ` — from kernel-less rounds;
//! * `γ` — from a compute-only kernel sweep (single warp, no memory);
//! * `λ` — from a dependent-access kernel sweep (single warp, no latency
//!   hiding — each access's full latency is exposed).
//!
//! The result is a [`atgpu_model::CostParams`] an analyst would plug into
//! the ATGPU cost function for this device — closing the loop between
//! the abstract model and the measured machine.  The [`ols`] module
//! provides the regression machinery (simple lines and small
//! multi-feature systems via normal equations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fit;
pub mod microbench;
pub mod ols;

pub use fit::{calibrate, Calibration};
