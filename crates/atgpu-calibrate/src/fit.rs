//! The calibration driver: run microbenchmarks, fit every cost constant.

use crate::microbench;
use crate::ols::{fit_line, LinearFit};
use atgpu_algos::AlgosError;
use atgpu_model::{AtgpuMachine, CostParams, GpuSpec};
use atgpu_sim::SimConfig;

/// Fitted cost parameters with fit diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Per-transaction transfer overhead `α` (ms).
    pub alpha_ms: f64,
    /// Per-word transfer cost `β` (ms/word).
    pub beta_ms_per_word: f64,
    /// Per-round synchronisation `σ` (ms).
    pub sigma_ms: f64,
    /// Operation rate `γ` (cycles/ms).
    pub gamma_cycles_per_ms: f64,
    /// Effective global-access cost `λ` (cycles per transaction under
    /// latency hiding) — the prediction-grade value, from the streaming
    /// sweep.
    pub lambda_cycles: f64,
    /// Raw exposed access latency (cycles), from the single-warp
    /// dependent-access sweep — the "400–800 cycles" quantity the paper
    /// quotes, which only applies to un-hidden accesses.
    pub lambda_exposed_cycles: f64,
    /// R² of the transfer fit.
    pub transfer_r2: f64,
    /// R² of the compute fit.
    pub gamma_r2: f64,
    /// R² of the access fit.
    pub lambda_r2: f64,
}

impl Calibration {
    /// The fitted parameters as model [`CostParams`].
    pub fn to_cost_params(&self) -> CostParams {
        CostParams {
            gamma: self.gamma_cycles_per_ms,
            lambda: self.lambda_cycles,
            sigma: self.sigma_ms,
            alpha: self.alpha_ms,
            beta: self.beta_ms_per_word,
        }
    }
}

/// Sweep sizes used by [`calibrate`].
const TRANSFER_WORDS: [u64; 6] = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20];
const COMPUTE_OPS: [u32; 5] = [1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16];
const ACCESS_COUNTS: [u32; 5] = [32, 64, 128, 256, 512];
const STREAM_BLOCKS: [u64; 4] = [256, 512, 1024, 2048];

/// Runs the full microbenchmark suite against the simulated device and
/// fits `α, β, σ, γ, λ` by least squares.
pub fn calibrate(
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    config: &SimConfig,
) -> Result<Calibration, AlgosError> {
    // α, β from the transfer sweep.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &w in &TRANSFER_WORDS {
        xs.push(w as f64);
        ys.push(microbench::measure_transfer_in(w, machine, spec, config)?);
    }
    let xfer: LinearFit = fit_line(&xs, &ys).expect("transfer sweep is well-conditioned");

    // σ from empty rounds (averaged; it is deterministic in the simulator
    // but averaging is the honest procedure).
    let mut sigma = 0.0;
    const SYNC_REPS: usize = 5;
    for _ in 0..SYNC_REPS {
        sigma += microbench::measure_sync(machine, spec, config)?;
    }
    sigma /= SYNC_REPS as f64;

    // γ from the compute sweep: slope = 1/γ.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &ops in &COMPUTE_OPS {
        xs.push(f64::from(ops));
        ys.push(microbench::measure_compute(ops, machine, spec, config)?);
    }
    let comp: LinearFit = fit_line(&xs, &ys).expect("compute sweep is well-conditioned");
    let gamma = 1.0 / comp.slope;

    // Exposed λ from the dependent-access sweep: slope·γ cycles/access.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &a in &ACCESS_COUNTS {
        xs.push(f64::from(a));
        ys.push(microbench::measure_global_access(a, machine, spec, config)?);
    }
    let acc: LinearFit = fit_line(&xs, &ys).expect("access sweep is well-conditioned");
    let lambda_exposed = acc.slope * gamma;

    // Effective λ from the streaming sweep (bandwidth-bound): slope·γ
    // cycles per transaction under full latency hiding.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &blocks in &STREAM_BLOCKS {
        xs.push(blocks as f64);
        ys.push(microbench::measure_streaming_access(blocks, machine, spec, config)?);
    }
    let stream: LinearFit = fit_line(&xs, &ys).expect("stream sweep is well-conditioned");
    let lambda = stream.slope * gamma;

    Ok(Calibration {
        alpha_ms: xfer.intercept.max(0.0),
        beta_ms_per_word: xfer.slope.max(0.0),
        sigma_ms: sigma,
        gamma_cycles_per_ms: gamma,
        lambda_cycles: lambda,
        lambda_exposed_cycles: lambda_exposed,
        transfer_r2: xfer.r2,
        gamma_r2: comp.r2,
        lambda_r2: stream.r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_sim::xfer::XferNoise;

    fn machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 16, 32, 12_288, 1 << 24).unwrap()
    }

    #[test]
    fn noiseless_calibration_recovers_ground_truth() {
        let spec = GpuSpec::gtx650_like();
        let c = calibrate(&machine(), &spec, &SimConfig::default()).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(rel(c.alpha_ms, spec.xfer_alpha_ms) < 1e-6, "alpha {c:?}");
        assert!(rel(c.beta_ms_per_word, spec.xfer_beta_ms_per_word) < 1e-6, "beta {c:?}");
        assert!(rel(c.sigma_ms, spec.sync_ms) < 1e-9, "sigma {c:?}");
        assert!(rel(c.gamma_cycles_per_ms, spec.clock_cycles_per_ms) < 0.05, "gamma {c:?}");
        // Effective λ tracks the issue interval; exposed λ tracks latency.
        assert!(
            c.lambda_cycles > spec.dram_issue_cycles as f64 * 0.8
                && c.lambda_cycles < spec.dram_issue_cycles as f64 * 1.3,
            "effective lambda {c:?}"
        );
        assert!(
            c.lambda_exposed_cycles > spec.dram_latency_cycles as f64 * 0.9
                && c.lambda_exposed_cycles < spec.dram_latency_cycles as f64 * 1.3,
            "exposed lambda {c:?}"
        );
        assert!(c.transfer_r2 > 0.999999);
        assert!(c.gamma_r2 > 0.999);
        assert!(c.lambda_r2 > 0.999);
    }

    #[test]
    fn noisy_calibration_stays_close() {
        let spec = GpuSpec::gtx650_like();
        let cfg =
            SimConfig { noise: Some(XferNoise { rel: 0.05 }), seed: 11, ..Default::default() };
        let c = calibrate(&machine(), &spec, &cfg).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(rel(c.beta_ms_per_word, spec.xfer_beta_ms_per_word) < 0.1, "beta {c:?}");
        assert!(c.transfer_r2 > 0.99);
    }

    #[test]
    fn calibration_transfers_to_other_specs() {
        // Calibrating a different device yields different parameters.
        let c1 = calibrate(&machine(), &GpuSpec::gtx650_like(), &SimConfig::default()).unwrap();
        let c2 = calibrate(&machine(), &GpuSpec::highend_like(), &SimConfig::default()).unwrap();
        assert!(c2.beta_ms_per_word < c1.beta_ms_per_word);
        assert!(c2.lambda_cycles < c1.lambda_cycles);
    }

    #[test]
    fn to_cost_params_validates() {
        let spec = GpuSpec::gtx650_like();
        let c = calibrate(&machine(), &spec, &SimConfig::default()).unwrap();
        c.to_cost_params().validate().unwrap();
    }
}
