//! Integration tests for the experiment harness: figures are internally
//! consistent and file output round-trips.

use atgpu_exp::figures::{fig3, fig6, summary, table1};
use atgpu_exp::report::{figure_csv, figure_dat, figure_json, write_figure};
use atgpu_exp::{chart, ExpConfig, Scale};

#[test]
fn fig3_pipeline_to_files_and_charts() {
    let cfg = ExpConfig::standard(Scale::Quick);
    let rows = fig3::rows(&cfg).unwrap();
    let figs = fig3::figures(&rows);
    assert_eq!(figs.len(), 3);

    let dir = std::env::temp_dir().join("atgpu_harness_it");
    let _ = std::fs::remove_dir_all(&dir);
    for f in &figs {
        // Every series covers the full sweep.
        for s in &f.series {
            assert_eq!(s.points.len(), rows.len(), "{}/{}", f.id, s.label);
        }
        // All three render paths work and agree on content presence.
        let csv = figure_csv(f);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        let dat = figure_dat(f);
        assert_eq!(dat.lines().count(), rows.len() + 2);
        let json = figure_json(f);
        assert!(json.contains(&f.id));
        let ascii = chart::render(f, 50, 12);
        assert!(ascii.contains(&f.id));
        write_figure(f, &dir).unwrap();
        assert!(dir.join(format!("{}.csv", f.id)).exists());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig6_deltas_consistent_with_rows() {
    let cfg = ExpConfig::standard(Scale::Quick);
    let rows = fig3::rows(&cfg).unwrap();
    let f = fig6::figure(&rows, "fig6a", "vector addition");
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(f.series[0].points[i], (r.n as f64, r.delta_e));
        assert_eq!(f.series[1].points[i], (r.n as f64, r.delta_t));
    }
}

#[test]
fn summary_uses_all_three_sweeps() {
    let cfg = ExpConfig::standard(Scale::Quick);
    let rows = fig3::rows(&cfg).unwrap();
    let s = summary::summarize(&rows);
    // Transfer shares and capture fractions are complementary views.
    assert!(s.mean_delta_e > 0.0 && s.mean_delta_e < 1.0);
    assert!(s.swgpu_capture > 0.0 && s.swgpu_capture < 1.0);
    assert!(s.mean_delta_e + s.swgpu_capture < 1.1, "{s:?}");
}

#[test]
fn table1_is_stable() {
    // The table is pure data: two renders agree, and the markdown has a
    // column per model plus the item column.
    assert_eq!(table1::markdown(), table1::markdown());
    let header = table1::markdown().lines().next().unwrap().to_string();
    assert_eq!(header.matches('|').count(), 5); // | Item | AGPU | SWGPU | ATGPU |
}

#[test]
fn paper_scale_sizes_cover_the_paper_ranges() {
    use atgpu_exp::figures::{matmul_sizes, reduce_sizes, vecadd_sizes};
    let v = vecadd_sizes(Scale::Paper);
    assert_eq!((v[0], *v.last().unwrap()), (1_000_000, 10_000_000));
    let r = reduce_sizes(Scale::Full);
    assert_eq!((r[0], *r.last().unwrap()), (1 << 16, 1 << 26));
    let m = matmul_sizes(Scale::Full);
    assert!(m.contains(&1024));
}
