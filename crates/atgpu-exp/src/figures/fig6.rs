//! Figure 6 — proportions (Δ) of time/cost spent on data transfer:
//! observed ΔE vs predicted ΔT for each workload.

use crate::runner::SweepRow;
use crate::series::{Figure, Series};

/// Builds one Δ panel from a workload's sweep rows.
pub fn figure(rows: &[SweepRow], id: &str, workload: &str) -> Figure {
    Figure::new(
        id,
        format!("{workload}: transfer proportions"),
        "n",
        "Δ",
        vec![
            Series::new("ΔE (Observed)", rows.iter().map(|r| (r.n as f64, r.delta_e)).collect()),
            Series::new("ΔT (Predicted)", rows.iter().map(|r| (r.n as f64, r.delta_t)).collect()),
        ],
    )
}

/// All three panels (6a vecadd, 6b reduction, 6c matmul).
pub fn figures(vecadd: &[SweepRow], reduce: &[SweepRow], matmul: &[SweepRow]) -> Vec<Figure> {
    vec![
        figure(vecadd, "fig6a", "vector addition"),
        figure(reduce, "fig6b", "reduction"),
        figure(matmul, "fig6c", "matrix multiplication"),
    ]
}

/// Mean absolute gap `|ΔT − ΔE|` over a sweep — the accuracy number the
/// paper quotes (1.5 % vecadd, 5.49 % reduction, 0.76 % matmul).
pub fn mean_delta_gap(rows: &[SweepRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| (r.delta_t - r.delta_e).abs()).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig3;
    use crate::runner::{ExpConfig, Scale};

    #[test]
    fn delta_panels_track_each_other() {
        let cfg = ExpConfig::standard(Scale::Quick);
        let rows = fig3::rows(&cfg).unwrap();
        let gap = mean_delta_gap(&rows);
        // The paper reports ~1.5% for vecadd; allow a loose budget.
        assert!(gap < 0.15, "mean |ΔT−ΔE| = {gap}");
        let f = figure(&rows, "fig6a", "vector addition");
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].points.len(), rows.len());
    }

    #[test]
    fn empty_rows_gap_is_zero() {
        assert_eq!(mean_delta_gap(&[]), 0.0);
    }
}
