//! Figure 3 — vector addition: predicted, observed and normalised.

use crate::figures::{standard_panels, vecadd_sizes};
use crate::runner::{run_row, ExpConfig, SweepRow};
use crate::series::Figure;
use atgpu_algos::vecadd::VecAdd;
use atgpu_algos::AlgosError;

/// Runs the vector-addition sweep (paper: `n = 10⁶ … 10⁷`).
pub fn rows(cfg: &ExpConfig) -> Result<Vec<SweepRow>, AlgosError> {
    vecadd_sizes(cfg.scale).into_iter().map(|n| run_row(&VecAdd::new(n, n), cfg)).collect()
}

/// Figures 3a, 3b, 3c from the sweep rows.
pub fn figures(rows: &[SweepRow]) -> Vec<Figure> {
    standard_panels(rows, 3, "vector addition", true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;

    #[test]
    fn quick_sweep_reproduces_paper_shape() {
        let cfg = ExpConfig::standard(Scale::Quick);
        let rows = rows(&cfg).unwrap();
        assert_eq!(rows.len(), 5);
        // Total grows much faster than kernel (transfer dominance).
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(last.total_ms > last.kernel_ms * 2.0, "{last:?}");
        // Monotone growth in n.
        assert!(last.total_ms > first.total_ms);
        assert!(last.atgpu_cost > first.atgpu_cost);
        // ATGPU grows faster than SWGPU (it sees the transfer).
        let atgpu_growth = last.atgpu_cost / first.atgpu_cost;
        let swgpu_growth = last.swgpu_cost / first.swgpu_cost;
        assert!(atgpu_growth > 0.0 && swgpu_growth > 0.0);
        let figs = figures(&rows);
        assert_eq!(figs.len(), 3);
    }
}
