//! Extension experiments E1–E6 (paper §V future work and stated scope).

use crate::report::markdown_table;
use crate::runner::{run_row, ExpConfig, SweepRow};
use crate::series::{Figure, Series};
use atgpu_algos::histogram::Histogram;
use atgpu_algos::matmul::MatMul;
use atgpu_algos::ooc::{OocReduce, OocScheme, OocVecAdd};
use atgpu_algos::transpose::{Transpose, TransposeVariant};
use atgpu_algos::vecadd::VecAdd;
use atgpu_algos::{AlgosError, Workload};
use atgpu_analyze::analyze_program;
use atgpu_calibrate::calibrate;
use atgpu_model::cost::{evaluate, CostModel};
use atgpu_model::{occupancy, AtgpuMachine, GpuSpec};
use atgpu_sim::run_program;
use std::fmt::Write as _;

/// E1 — out-of-core partitioning: chunk-size sweep on a machine whose
/// global memory cannot hold the problem, plus the two reduction
/// communication schemes.
pub fn e1_out_of_core(cfg: &ExpConfig) -> Result<String, AlgosError> {
    // A machine with deliberately tiny global memory.
    let machine = AtgpuMachine::new(cfg.machine.p, cfg.machine.b, cfg.machine.m, 1 << 14)
        .map_err(|e| AlgosError::InvalidMachine { reason: e.to_string() })?;
    let n = 100_000u64; // 3n ≈ 300k words ≫ G = 16k
    let mut rows = Vec::new();
    let mut fig_points_cost = Vec::new();
    let mut fig_points_time = Vec::new();
    for chunk in [512u64, 1024, 2048, 4096] {
        let w = OocVecAdd::new(n, chunk, 1);
        let built = w.build(&machine)?;
        let analysis = analyze_program(&built.program, &machine)
            .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
        let metrics = analysis.metrics();
        let cost = evaluate(CostModel::GpuCost, &cfg.params, &machine, &cfg.spec, &metrics)
            .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
        let report = run_program(&built.program, built.inputs, &machine, &cfg.spec, &cfg.sim)?;
        rows.push(vec![
            chunk.to_string(),
            w.rounds().to_string(),
            format!("{}", metrics.total_transfer_txns()),
            format!("{:.3}", cost.total()),
            format!("{:.3}", report.total_ms()),
        ]);
        fig_points_cost.push((chunk as f64, cost.total()));
        fig_points_time.push((chunk as f64, report.total_ms()));
    }
    let mut out = String::from("### E1 — out-of-core vector addition (3n ≫ G)\n\n");
    out.push_str(&markdown_table(
        &["chunk (words)", "rounds R", "transfer txns", "predicted cost (ms)", "observed (ms)"],
        &rows,
    ));

    // The two reduction communication schemes.
    let n = 65_536u64;
    let mut rows = Vec::new();
    for (scheme, label) in
        [(OocScheme::HostFinish, "host-finish"), (OocScheme::DeviceFinish, "device-finish")]
    {
        let w = OocReduce::new(n, 4096, scheme, 2);
        let built = w.build(&machine)?;
        let analysis = analyze_program(&built.program, &machine)
            .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
        let metrics = analysis.metrics();
        let outward: u64 = metrics.rounds.iter().map(|r| r.outward_words).sum();
        let report = run_program(&built.program, built.inputs, &machine, &cfg.spec, &cfg.sim)?;
        rows.push(vec![
            label.to_string(),
            metrics.num_rounds().to_string(),
            outward.to_string(),
            format!("{:.3}", report.total_ms()),
        ]);
    }
    out.push_str("\n### E1 — reduction communication schemes (n = 65536, chunk = 4096)\n\n");
    out.push_str(&markdown_table(
        &["scheme", "rounds R", "outward words", "observed total (ms)"],
        &rows,
    ));
    let _ = (fig_points_cost, fig_points_time);
    Ok(out)
}

/// E2 — verify the model on other GPUs: one medium instance of each
/// paper workload on three device specifications.
pub fn e2_other_gpus(cfg: &ExpConfig) -> Result<String, AlgosError> {
    let specs: [(&str, GpuSpec); 3] = [
        ("gtx650-like", GpuSpec::gtx650_like()),
        ("midrange-like", GpuSpec::midrange_like()),
        ("highend-like", GpuSpec::highend_like()),
    ];
    let mut rows = Vec::new();
    for (name, spec) in specs {
        let sub = ExpConfig { spec, params: spec.derived_cost_params(), ..cfg.clone() };
        let workloads: [(&str, Box<dyn Workload>); 3] = [
            ("vecadd", Box::new(VecAdd::new(400_000, 1))),
            ("reduce", Box::new(atgpu_algos::reduce::Reduce::new(1 << 18, 1))),
            ("matmul", Box::new(atgpu_algos::matmul::MatMul::new(128, 1))),
        ];
        for (wname, w) in workloads {
            let r = run_row(w.as_ref(), &sub)?;
            rows.push(vec![
                name.to_string(),
                wname.to_string(),
                format!("{:.3}", r.total_ms),
                format!("{:.1}%", 100.0 * r.delta_e),
                format!("{:.1}%", 100.0 * r.delta_t),
                format!("{:.1}%", 100.0 * (r.delta_t - r.delta_e).abs()),
            ]);
        }
    }
    let mut out = String::from("### E2 — model accuracy across device specifications\n\n");
    out.push_str(&markdown_table(
        &["device", "workload", "observed (ms)", "ΔE", "ΔT", "|ΔT−ΔE|"],
        &rows,
    ));
    Ok(out)
}

/// E3 — the conflict-free assumption: transpose variants and the
/// data-dependent histogram, model I/O vs measured transactions and
/// conflict serialisation.
pub fn e3_bank_conflicts(cfg: &ExpConfig) -> Result<String, AlgosError> {
    let mut rows = Vec::new();
    for v in [TransposeVariant::Naive, TransposeVariant::Tiled, TransposeVariant::TiledPadded] {
        let w = Transpose::new(256, 1, v);
        let built = w.build(&cfg.machine)?;
        let analysis = analyze_program(&built.program, &cfg.machine)
            .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
        let q_model = analysis.metrics().total_io_blocks();
        let report = run_program(&built.program, built.inputs, &cfg.machine, &cfg.spec, &cfg.sim)?;
        let stats = report.rounds[0].kernel_stats;
        rows.push(vec![
            format!("transpose/{}", v.label()),
            q_model.to_string(),
            stats.global_txns.to_string(),
            stats.bank_conflict_cycles.to_string(),
            format!("{:.3}", report.kernel_ms()),
            if analysis.conflict_free { "yes" } else { "no" }.to_string(),
        ]);
    }
    {
        let w = Histogram::new(1 << 16, cfg.machine.b, 3);
        let built = w.build(&cfg.machine)?;
        let analysis = analyze_program(&built.program, &cfg.machine)
            .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
        let q_model = analysis.metrics().total_io_blocks();
        let report = run_program(&built.program, built.inputs, &cfg.machine, &cfg.spec, &cfg.sim)?;
        let stats = report.rounds[0].kernel_stats;
        rows.push(vec![
            "histogram".to_string(),
            q_model.to_string(),
            stats.global_txns.to_string(),
            stats.bank_conflict_cycles.to_string(),
            format!("{:.3}", report.kernel_ms()),
            if analysis.conflict_free { "yes" } else { "no" }.to_string(),
        ]);
    }
    let mut out = String::from("### E3 — coalescing and the bank-conflict-free assumption\n\n");
    out.push_str(&markdown_table(
        &[
            "kernel",
            "q (model)",
            "txns (sim)",
            "conflict cycles (sim)",
            "kernel ms (sim)",
            "statically conflict-free",
        ],
        &rows,
    ));
    Ok(out)
}

/// E4 — occupancy: inflate a kernel's shared footprint so
/// `ℓ = min(⌊M/m⌋, H)` shrinks, and compare the Expression-(2) wave
/// factor against the simulated slowdown.
pub fn e4_occupancy(cfg: &ExpConfig) -> Result<(String, Figure), AlgosError> {
    let n = 400_000u64;
    let mut rows = Vec::new();
    let mut pred_points = Vec::new();
    let mut obs_points = Vec::new();
    let m = cfg.machine.m;
    for divisor in [16u64, 8, 4, 2, 1] {
        let m_used = m / divisor; // shared words per block
        let w = VecAdd::new(n, 1);
        let mut built = w.build(&cfg.machine)?;
        // Inflate the declared shared footprint (the data layout is
        // untouched; the extra words are simply reserved).
        for round in &mut built.program.rounds {
            for step in &mut round.steps {
                if let atgpu_ir::HostStep::Launch(k) = step {
                    k.shared_words = k.shared_words.max(m_used);
                }
            }
        }
        let analysis = analyze_program(&built.program, &cfg.machine)
            .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
        let metrics = analysis.metrics();
        let kernel_cost =
            evaluate(CostModel::KernelOnly, &cfg.params, &cfg.machine, &cfg.spec, &metrics)
                .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
        let report = run_program(&built.program, built.inputs, &cfg.machine, &cfg.spec, &cfg.sim)?;
        let ell = occupancy(&cfg.machine, m_used, cfg.spec.h_limit);
        rows.push(vec![
            m_used.to_string(),
            ell.to_string(),
            format!("{:.3}", kernel_cost.total()),
            format!("{:.3}", report.kernel_ms()),
        ]);
        pred_points.push((m_used as f64, kernel_cost.total()));
        obs_points.push((m_used as f64, report.kernel_ms()));
    }
    let mut out = String::from("### E4 — occupancy sweep (vecadd, inflated shared footprint)\n\n");
    out.push_str(&markdown_table(
        &[
            "shared words m",
            "ℓ = min(⌊M/m⌋,H)",
            "predicted kernel cost (ms)",
            "observed kernel (ms)",
        ],
        &rows,
    ));
    let fig = Figure::new(
        "ext_e4",
        "occupancy: predicted kernel cost vs observed kernel time",
        "shared words per block",
        "ms",
        vec![Series::new("predicted", pred_points), Series::new("observed", obs_points)],
    );
    Ok((out, fig))
}

/// E5 — further computational problems: scan, stencil, dot, saxpy, and a
/// (smaller) bitonic sort whose Θ(log² n) rounds stress the σ·R term.
pub fn e5_other_problems(cfg: &ExpConfig) -> Result<(String, Vec<SweepRow>), AlgosError> {
    let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
        ("saxpy", Box::new(atgpu_algos::saxpy::Saxpy::new(400_000, 3, 1))),
        ("dot", Box::new(atgpu_algos::dot::Dot::new(400_000, 1))),
        ("scan", Box::new(atgpu_algos::scan::Scan::new(400_000, 1))),
        ("stencil", Box::new(atgpu_algos::stencil::Stencil::new(400_000, 1))),
        ("gemv (n=512)", Box::new(atgpu_algos::gemv::Gemv::new(512, 1))),
        ("bitonic (n=16384)", Box::new(atgpu_algos::bitonic::BitonicSort::new(16_384, 1))),
    ];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (name, w) in workloads {
        let r = run_row(w.as_ref(), cfg)?;
        table.push(vec![
            name.to_string(),
            format!("{:.3}", r.total_ms),
            format!("{:.3}", r.kernel_ms),
            format!("{:.1}%", 100.0 * r.delta_e),
            format!("{:.1}%", 100.0 * r.delta_t),
            format!("{:.1}%", 100.0 * (r.delta_t - r.delta_e).abs()),
        ]);
        rows.push(r);
    }
    let mut out = String::from("### E5 — further computational problems (n = 400000)\n\n");
    out.push_str(&markdown_table(
        &["workload", "total (ms)", "kernel (ms)", "ΔE", "ΔT", "|ΔT−ΔE|"],
        &table,
    ));
    Ok((out, rows))
}

/// E6 — calibration: fit `α, β, γ, λ, σ` from simulated microbenchmarks
/// and compare against the device's ground truth.
pub fn e6_calibration(cfg: &ExpConfig) -> Result<String, AlgosError> {
    let cal = calibrate(&cfg.machine, &cfg.spec, &cfg.sim)?;
    let truth = cfg.spec;
    let mut out = String::from("### E6 — cost-parameter calibration (fit vs ground truth)\n\n");
    let fmt = |v: f64| format!("{v:.6}");
    out.push_str(&markdown_table(
        &["parameter", "fitted", "ground truth", "fit R²"],
        &[
            vec![
                "α (ms)".into(),
                fmt(cal.alpha_ms),
                fmt(truth.xfer_alpha_ms),
                fmt(cal.transfer_r2),
            ],
            vec![
                "β (ms/word)".into(),
                format!("{:.3e}", cal.beta_ms_per_word),
                format!("{:.3e}", truth.xfer_beta_ms_per_word),
                fmt(cal.transfer_r2),
            ],
            vec!["σ (ms)".into(), fmt(cal.sigma_ms), fmt(truth.sync_ms), "-".into()],
            vec![
                "γ (cycles/ms)".into(),
                format!("{:.3e}", cal.gamma_cycles_per_ms),
                format!("{:.3e}", truth.clock_cycles_per_ms),
                fmt(cal.gamma_r2),
            ],
            vec![
                "λ effective (cycles/txn)".into(),
                format!("{:.1}", cal.lambda_cycles),
                format!("{} (issue interval)", truth.dram_issue_cycles),
                fmt(cal.lambda_r2),
            ],
            vec![
                "λ exposed (cycles)".into(),
                format!("{:.1}", cal.lambda_exposed_cycles),
                format!("{} (raw latency)", truth.dram_latency_cycles),
                "-".into(),
            ],
        ],
    ));

    // Re-predict a small vecadd sweep with the fitted parameters.
    let fitted_cfg = ExpConfig { params: cal.to_cost_params(), ..cfg.clone() };
    let mut gaps = Vec::new();
    for n in [100_000u64, 200_000, 400_000] {
        let r = run_row(&VecAdd::new(n, 9), &fitted_cfg)?;
        gaps.push((r.delta_t - r.delta_e).abs());
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let _ = writeln!(
        out,
        "\nMean |ΔT−ΔE| for vecadd predicted with *fitted* parameters: {:.2}%",
        100.0 * mean_gap
    );
    Ok(out)
}

/// E7 — multi-device sharded launches: vector addition split across
/// 1/2/4 devices of a homogeneous cluster, with per-device transfer
/// costs (the per-link `Î·α + I·β` shares) and the cluster cost
/// function's max-over-devices prediction next to the simulated
/// observation.  Transfer dominates vector addition, so doubling the
/// devices roughly halves the total — the regime the peer-link and
/// shard-planner machinery exists for.
pub fn e7_multi_device(cfg: &ExpConfig) -> Result<String, AlgosError> {
    use atgpu_algos::vecadd::VECADD_TIME_OPS;
    use atgpu_model::cost::cluster_cost;
    use atgpu_model::{AlgoMetrics, ClusterSpec, RoundMetrics};
    use atgpu_sim::{even_shards, run_cluster_program};

    let n: u64 = match cfg.scale {
        crate::runner::Scale::Quick => 1 << 15,
        _ => 1 << 20,
    };
    let machine = &cfg.machine;
    let b = machine.b;
    let k = machine.blocks_for(n);
    let pad = |w: u64| w.div_ceil(b) * b;
    let w = VecAdd::new(n, 21);

    let mut rows = Vec::new();
    let mut baseline_ms = None;
    for devices in [1u32, 2, 4] {
        let built = w.build_sharded(machine, devices)?;
        let cluster = ClusterSpec::homogeneous(devices as usize, cfg.spec);
        let report =
            run_cluster_program(&built.program, built.inputs.clone(), machine, &cluster, &cfg.sim)?;

        // Model side: each device's shard as its own metrics row.
        let shards = even_shards(k, devices);
        let per_device: Vec<AlgoMetrics> = (0..devices)
            .map(|d| {
                let round = shards
                    .iter()
                    .find(|s| s.device == d)
                    .map(|s| {
                        let words = (s.end * b).min(n) - s.start * b;
                        RoundMetrics {
                            time: VECADD_TIME_OPS,
                            io_blocks: 3 * s.blocks(),
                            global_words: 3 * pad(n),
                            shared_words: 3 * b,
                            inward_words: 2 * words,
                            inward_txns: 2,
                            outward_words: words,
                            outward_txns: 1,
                            blocks_launched: s.blocks(),
                        }
                    })
                    .unwrap_or_default();
                AlgoMetrics::new(vec![round])
            })
            .collect();
        let predicted = cluster_cost(&cluster, machine, &per_device, &[])
            .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;

        let total = report.total_ms();
        let speedup = match baseline_ms {
            None => {
                baseline_ms = Some(total);
                1.0
            }
            Some(base) => base / total,
        };
        let per_dev_xfer: Vec<String> =
            report.transfer_ms_per_device().iter().map(|t| format!("{t:.3}")).collect();
        rows.push(vec![
            devices.to_string(),
            format!("{total:.3}"),
            format!("{:.3}", report.kernel_ms()),
            per_dev_xfer.join(" / "),
            format!("{:.3}", predicted.total_ms),
            format!("{speedup:.2}x"),
        ]);
    }

    let mut out =
        format!("### E7 — multi-device sharded vector addition (n = {n}, even block shards)\n\n");
    out.push_str(&markdown_table(
        &[
            "devices",
            "observed total (ms)",
            "observed kernel (ms)",
            "per-device transfer (ms)",
            "predicted total (ms)",
            "speedup",
        ],
        &rows,
    ));
    Ok(out)
}

/// E8 — overlapped copy/compute streams and threaded cluster execution:
///
/// 1. **Overlap efficiency** — the double-buffered streamed ooc-vecadd
///    and streamed sharded matmul against their serial de-streamed
///    forms, observed (simulator stream timelines) next to predicted
///    (`streamed_evaluate` over the analyser's stream schedules);
/// 2. **Threaded dispatch** — host wall-clock of a 4-device sharded
///    launch with per-device OS threads vs sequential dispatch
///    (bit-identical results either way);
/// 3. **Heterogeneous planner** — even vs speed-weighted tile-row shards
///    on a mixed-generation 2-device cluster.
pub fn e8_streams(cfg: &ExpConfig) -> Result<String, AlgosError> {
    use atgpu_analyze::stream_schedule;
    use atgpu_model::cost::streamed_evaluate;
    use atgpu_model::ClusterSpec;
    use atgpu_sim::{run_cluster_program, run_program, SimConfig};
    use std::time::Instant;

    let quick = matches!(cfg.scale, crate::runner::Scale::Quick);
    let machine = &cfg.machine;
    let mut out = String::new();

    // -- 1a: streamed vs serial out-of-core vecadd -------------------
    let (n, chunk) = if quick { (1u64 << 18, 1u64 << 15) } else { (1 << 20, 1 << 16) };
    let w = OocVecAdd::new(n, chunk, 8);
    let streamed = w.build_streamed(machine)?;
    let serial = w.build(machine)?;
    let r_streamed =
        run_program(&streamed.program, streamed.inputs.clone(), machine, &cfg.spec, &cfg.sim)?;
    let r_serial =
        run_program(&serial.program, serial.inputs.clone(), machine, &cfg.spec, &cfg.sim)?;

    // Predicted side: analyser metrics + stream schedule through the
    // same chain scheduler the simulator times rounds with.
    let err = |e: &dyn std::fmt::Display| AlgosError::InvalidSize { reason: e.to_string() };
    let predict = |built: &atgpu_algos::workload::BuiltProgram| -> Result<f64, AlgosError> {
        let analysis = analyze_program(&built.program, machine).map_err(|e| err(&e))?;
        let sched = stream_schedule(&built.program);
        let c = streamed_evaluate(&cfg.params, machine, &cfg.spec, &analysis.metrics(), &sched)
            .map_err(|e| err(&e))?;
        Ok(c.total_ms)
    };
    let pred_streamed = predict(&streamed)?;
    let pred_serial = predict(&serial)?;

    let obs_speedup = r_serial.total_ms() / r_streamed.total_ms();
    let _ = writeln!(
        out,
        "### E8 — copy/compute overlap: ooc-vecadd (n = {n}, chunk = {chunk}, double-buffered)\n"
    );
    out.push_str(&markdown_table(
        &["variant", "rounds R", "observed (ms)", "predicted (ms)"],
        &[
            vec![
                "serial".into(),
                serial.program.num_rounds().to_string(),
                format!("{:.3}", r_serial.total_ms()),
                format!("{pred_serial:.3}"),
            ],
            vec![
                "streamed".into(),
                streamed.program.num_rounds().to_string(),
                format!("{:.3}", r_streamed.total_ms()),
                format!("{pred_streamed:.3}"),
            ],
        ],
    ));
    let _ = writeln!(
        out,
        "\nOverlap speedup: observed {obs_speedup:.2}x, predicted {:.2}x.\n",
        pred_serial / pred_streamed
    );

    // -- 1b: streamed sharded matmul on 2 devices --------------------
    let mm_n = if quick { 256 } else { 512 };
    let mm = MatMul::new(mm_n, 8);
    let devices = 2u32;
    let built = mm.build_sharded_streamed(machine, devices, 2)?;
    let cluster = ClusterSpec::homogeneous(devices as usize, cfg.spec);
    let r_mm_streamed =
        run_cluster_program(&built.program, built.inputs.clone(), machine, &cluster, &cfg.sim)?;
    let r_mm_serial = run_cluster_program(
        &built.program.destreamed(),
        built.inputs.clone(),
        machine,
        &cluster,
        &cfg.sim,
    )?;
    let _ = writeln!(
        out,
        "### E8 — streamed sharded matmul (n = {mm_n}, {devices} devices, 2-row chunks)\n"
    );
    out.push_str(&markdown_table(
        &["variant", "observed total (ms)", "observed kernel (ms)"],
        &[
            vec![
                "serial shards".into(),
                format!("{:.3}", r_mm_serial.total_ms()),
                format!("{:.3}", r_mm_serial.kernel_ms()),
            ],
            vec![
                "streamed shards".into(),
                format!("{:.3}", r_mm_streamed.total_ms()),
                format!("{:.3}", r_mm_streamed.kernel_ms()),
            ],
        ],
    ));
    let _ = writeln!(
        out,
        "\nOverlap speedup: {:.2}x (compute-heavy, so the upload hides almost fully).\n",
        r_mm_serial.total_ms() / r_mm_streamed.total_ms()
    );

    // -- 2: threaded device dispatch (host wall-clock) ---------------
    // Simulation-compute-heavy workload: each device's shard costs real
    // host CPU, so per-device OS threads pay off on multicore hosts.
    let tn = if quick { 256 } else { 512 };
    let tw = MatMul::new(tn, 4);
    let tbuilt = tw.build_sharded(machine, 4)?;
    let tcluster = ClusterSpec::homogeneous(4, cfg.spec);
    let mut wall = [f64::INFINITY; 2];
    for (slot, threads) in [(0usize, false), (1, true)] {
        let sim = SimConfig { device_threads: threads, ..cfg.sim.clone() };
        for _ in 0..3 {
            let inputs = tbuilt.inputs.clone();
            let t0 = Instant::now();
            let r = run_cluster_program(&tbuilt.program, inputs, machine, &tcluster, &sim)?;
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(r);
            wall[slot] = wall[slot].min(dt);
        }
    }
    let cores = atgpu_sim::cluster::host_parallelism();
    let _ = writeln!(
        out,
        "### E8 — threaded cluster dispatch (sharded matmul n = {tn}, 4 devices, {cores} host core(s))\n"
    );
    out.push_str(&markdown_table(
        &["dispatch", "host wall-clock (s)"],
        &[
            vec!["sequential".into(), format!("{:.4}", wall[0])],
            vec!["threaded (per-device OS threads)".into(), format!("{:.4}", wall[1])],
        ],
    ));
    let _ = writeln!(
        out,
        "\nWall-clock speedup: {:.2}x{}.\n",
        wall[0] / wall[1],
        if cores == 1 { " (single-core host: threads cannot help here)" } else { "" }
    );

    // -- 3: heterogeneous cluster, even vs weighted shards -----------
    let hn = if quick { 256 } else { 512 };
    let hw = MatMul::new(hn, 17);
    let mut mixed = ClusterSpec::homogeneous(2, cfg.spec);
    mixed.devices[1] = GpuSpec::midrange_like();
    mixed.host_links[1] = mixed.devices[1].host_link();
    let even = hw.build_sharded(machine, 2)?;
    let planned = hw.build_sharded_planned(machine, &mixed)?;
    let r_even =
        run_cluster_program(&even.program, even.inputs.clone(), machine, &mixed, &cfg.sim)?;
    let r_planned =
        run_cluster_program(&planned.program, planned.inputs.clone(), machine, &mixed, &cfg.sim)?;
    let rows_of = |b: &atgpu_algos::workload::BuiltProgram| -> String {
        b.program
            .rounds
            .iter()
            .find_map(|r| r.shards())
            .map(|s| s.iter().map(|x| format!("{}", x.blocks())).collect::<Vec<_>>().join(" / "))
            .unwrap_or_default()
    };
    let _ = writeln!(
        out,
        "### E8 — heterogeneous 2-device cluster (gtx650 + midrange), matmul n = {hn}\n"
    );
    out.push_str(&markdown_table(
        &["shard planner", "blocks per device", "observed total (ms)"],
        &[
            vec!["even".into(), rows_of(&even), format!("{:.3}", r_even.total_ms())],
            vec![
                "speed-weighted".into(),
                rows_of(&planned),
                format!("{:.3}", r_planned.total_ms()),
            ],
        ],
    ));
    let _ = writeln!(
        out,
        "\nWeighted-planner speedup on the mixed cluster: {:.2}x.\n",
        r_even.total_ms() / r_planned.total_ms()
    );

    Ok(out)
}

/// E9 — the cross-launch kernel cache: the same replay-eligible kernel
/// relaunched `L` times (the shape every sweep harness in this crate
/// produces), simulated with the cache on vs the `SimConfig::cache`
/// kill-switch off.  Cached launches skip both kernel lowering and
/// first-block timing-replay warmup, so host throughput rises with `L`
/// while every modeled observation stays **bit-identical** (asserted
/// here, proven at scale by `tests/cache_differential.rs`).
pub fn e9_kernel_cache(cfg: &ExpConfig) -> Result<String, AlgosError> {
    use atgpu_sim::SimConfig;
    use std::time::Instant;

    let quick = matches!(cfg.scale, crate::runner::Scale::Quick);
    let machine = &cfg.machine;
    // A small grid keeps per-launch compile cost visible — the regime
    // the E-series sweeps (thousands of small launches) live in.
    let n = 8 * machine.b;
    let w = VecAdd::new(n, 13);
    let launch_counts: &[u64] = if quick { &[25, 100, 400] } else { &[100, 400, 1600] };

    let mut rows = Vec::new();
    for &launches in launch_counts {
        let built = w.build_relaunched(machine, launches)?;
        let time_with = |sim: &SimConfig| -> Result<(f64, atgpu_sim::SimReport), AlgosError> {
            let mut best = f64::INFINITY;
            let mut report = None;
            for _ in 0..3 {
                let inputs = built.inputs.clone();
                let t0 = Instant::now();
                let r = run_program(&built.program, inputs, machine, &cfg.spec, sim)?;
                best = best.min(t0.elapsed().as_secs_f64());
                report = Some(r);
            }
            Ok((best, report.expect("three repetitions ran")))
        };
        let (secs_on, r_on) = time_with(&SimConfig { cache: true, ..cfg.sim.clone() })?;
        let (secs_off, r_off) = time_with(&SimConfig { cache: false, ..cfg.sim.clone() })?;
        // The cache may only change host wall-clock — never observations.
        assert_eq!(r_on.rounds, r_off.rounds, "cache changed modeled results");
        let blocks = launches * machine.blocks_for(n);
        let c = r_on.device_stats.cache;
        rows.push(vec![
            launches.to_string(),
            format!("{:.0}", blocks as f64 / secs_off.max(1e-12)),
            format!("{:.0}", blocks as f64 / secs_on.max(1e-12)),
            format!("{:.2}x", secs_off / secs_on.max(1e-12)),
            format!("{}/{}", c.hits, c.misses),
            format!("{:.1}%", 100.0 * c.hit_rate()),
        ]);
    }

    let mut out = format!(
        "### E9 — cross-launch kernel cache (vecadd, n = {n}, {} blocks/launch, repeated launches)\n\n",
        machine.blocks_for(n)
    );
    out.push_str(&markdown_table(
        &[
            "launches",
            "cache off (blk/s)",
            "cache on (blk/s)",
            "speedup",
            "hits/misses",
            "hit rate",
        ],
        &rows,
    ));
    out.push_str(
        "\nModeled rounds are bit-identical cache on vs off (asserted); the speedup is pure \
         host wall-clock from skipping recompilation and timing-replay warmup.\n",
    );
    Ok(out)
}

/// E10 — the cost-driven pipeline planner, mixed generations and
/// asymmetric links:
///
/// 1. **Planner sweep** — even vs compute-weighted vs cost-driven
///    (pipeline) shard plans across device counts × host-link
///    asymmetries × a transfer-bound (vecadd) and a compute-bound
///    (matmul) workload, observed totals next to the analytic
///    `plan_cost` predictions;
/// 2. **The transfer blind spot** — identical GPUs behind a fast + slow
///    PCIe pair: compute weighting sees a "homogeneous" cluster and
///    splits evenly; the cost-driven planner starves the slow link;
/// 3. **Auto-chunked streaming** — `OocVecAdd::build_planned` derives
///    its double-buffered chunk from the model (no hand tuning) and is
///    measured against its de-streamed serial form;
/// 4. **Per-span timeline trace** — the planned ooc run re-executed with
///    [`atgpu_sim::SimConfig::trace`] on (bit-identical, asserted), each
///    observed span paired with the analytic span
///    [`atgpu_model::cost::schedule_round_spans`] predicts for the same
///    round, and the worst per-span error reported.  With `trace`
///    set, the Chrome `trace_event` JSON is written there.
pub fn e10_pipeline_planner(
    cfg: &ExpConfig,
    trace: Option<&std::path::Path>,
) -> Result<String, AlgosError> {
    use atgpu_algos::vecadd::VecAdd;
    use atgpu_model::{plan, ClusterSpec, LinkParams, ShardProfile};
    use atgpu_sim::{
        even_shards, planned_shards, run_cluster_program, run_program, weighted_shards,
    };

    let quick = matches!(cfg.scale, crate::runner::Scale::Quick);
    let machine = &cfg.machine;
    let err = |e: &dyn std::fmt::Display| AlgosError::InvalidSize { reason: e.to_string() };
    let mut out = String::new();

    // Identical devices; the LAST device's host link slowed by 8x in
    // the asymmetric configurations.
    let slow = 8.0;
    let make_cluster = |devices: usize, asym: bool| {
        let mut c = ClusterSpec::homogeneous(devices, cfg.spec);
        if asym {
            let l = &mut c.host_links[devices - 1];
            *l = LinkParams {
                alpha_ms: l.alpha_ms * slow,
                beta_ms_per_word: l.beta_ms_per_word * slow,
            };
        }
        c
    };
    let fmt_counts = |c: &[u64]| c.iter().map(u64::to_string).collect::<Vec<_>>().join(" / ");

    // -- 1 + 2: planner sweep -----------------------------------------
    let n_vec: u64 = if quick { 1 << 15 } else { 1 << 20 };
    let mm_n: u64 = if quick { 256 } else { 512 };
    let mut rows = Vec::new();
    // (observed_weighted, observed_planned, predicted_planned) of the
    // acceptance case: 2 devices, asymmetric, vecadd.
    let mut acceptance: Option<(f64, f64, f64)> = None;
    for devices in [2usize, 4] {
        for asym in [false, true] {
            let cluster = make_cluster(devices, asym);
            for workload in ["vecadd", "matmul"] {
                if workload == "matmul" && !(devices == 2 && asym) {
                    continue; // one compute-bound contrast case is enough
                }
                let (units, profile): (u64, ShardProfile) = match workload {
                    "vecadd" => (machine.blocks_for(n_vec), VecAdd::shard_profile(machine)),
                    _ => {
                        let w = MatMul::new(mm_n, 3);
                        (mm_n / machine.b, w.row_profile(machine))
                    }
                };
                let plans = [
                    ("even", even_shards(units, devices as u32)),
                    ("weighted", weighted_shards(units, &cluster)),
                    ("pipeline", planned_shards(units, &cluster, machine, &profile)),
                ];
                let mut base_ms = None;
                for (name, shards) in plans {
                    let built = match workload {
                        "vecadd" => {
                            VecAdd::new(n_vec, 21).build_sharded_with(machine, shards.clone())?
                        }
                        _ => MatMul::new(mm_n, 3).build_sharded_rows(machine, shards.clone())?,
                    };
                    let report = run_cluster_program(
                        &built.program,
                        built.inputs.clone(),
                        machine,
                        &cluster,
                        &cfg.sim,
                    )?;
                    let c = atgpu_sim::shard_counts(&shards, devices);
                    let predicted =
                        plan::plan_cost(&cluster, machine, &profile, &c).map_err(|e| err(&e))?;
                    let observed = report.total_ms();
                    let speedup = match base_ms {
                        None => {
                            base_ms = Some(observed);
                            1.0
                        }
                        Some(b) => b / observed,
                    };
                    if workload == "vecadd" && devices == 2 && asym {
                        match name {
                            "weighted" => acceptance = Some((observed, 0.0, 0.0)),
                            "pipeline" => {
                                let (w, _, _) = acceptance.expect("weighted row measured first");
                                acceptance = Some((w, observed, predicted));
                            }
                            _ => {}
                        }
                    }
                    rows.push(vec![
                        devices.to_string(),
                        if asym { format!("last link /{slow:.0}") } else { "symmetric".into() },
                        workload.to_string(),
                        name.to_string(),
                        fmt_counts(&atgpu_sim::shard_counts(&shards, devices)),
                        format!("{observed:.3}"),
                        format!("{predicted:.3}"),
                        format!("{speedup:.2}x"),
                    ]);
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "### E10 — planner sweep (vecadd n = {n_vec}, matmul n = {mm_n}; links slowed {slow:.0}x)\n"
    );
    out.push_str(&markdown_table(
        &[
            "devices",
            "links",
            "workload",
            "planner",
            "blocks per device",
            "observed (ms)",
            "predicted (ms)",
            "speedup vs even",
        ],
        &rows,
    ));

    let (obs_weighted, obs_planned, pred_planned) = acceptance.expect("acceptance case measured");
    let gap = (pred_planned - obs_planned).abs() / obs_planned.max(1e-12);
    let _ = writeln!(
        out,
        "\nPipeline-planner speedup on the link-asymmetric transfer-bound case: \
         {:.2}x over compute-weighted (identical devices, so the weighted planner \
         splits evenly — the transfer blind spot); prediction within {:.1}% of observation.\n",
        obs_weighted / obs_planned,
        100.0 * gap
    );

    // -- 3: auto-chunked streamed ooc-vecadd --------------------------
    // Paper scale regardless of --quick: the σ amortisation that makes
    // the pipeline pay needs enough rounds to show.
    let n_ooc = 1u64 << 20;
    let w = atgpu_algos::ooc::OocVecAdd::new(n_ooc, machine.b, 8);
    let planned = w.build_planned(machine, &cfg.spec)?;
    let chunk_words = planned.program.rounds.first().map(|r| r.inward().0).unwrap_or(0) / 2;
    let r_planned =
        run_program(&planned.program, planned.inputs.clone(), machine, &cfg.spec, &cfg.sim)?;
    let serial = planned.program.destreamed();
    let r_serial = run_program(&serial, planned.inputs.clone(), machine, &cfg.spec, &cfg.sim)?;
    let predict = |p: &atgpu_ir::Program| -> Result<f64, AlgosError> {
        let analysis = analyze_program(p, machine).map_err(|e| err(&e))?;
        let sched = atgpu_analyze::stream_schedule(p);
        let c = atgpu_model::cost::streamed_evaluate(
            &cfg.params,
            machine,
            &cfg.spec,
            &analysis.metrics(),
            &sched,
        )
        .map_err(|e| err(&e))?;
        Ok(c.total_ms)
    };
    let pred_planned_ooc = predict(&planned.program)?;
    let pred_serial_ooc = predict(&serial)?;
    let _ = writeln!(
        out,
        "### E10 — auto-chunked ooc-vecadd (n = {n_ooc}, solver-derived chunk = {chunk_words} words)\n"
    );
    out.push_str(&markdown_table(
        &["variant", "rounds R", "observed (ms)", "predicted (ms)"],
        &[
            vec![
                "serial (de-streamed)".into(),
                serial.num_rounds().to_string(),
                format!("{:.3}", r_serial.total_ms()),
                format!("{pred_serial_ooc:.3}"),
            ],
            vec![
                "planned ping-pong".into(),
                planned.program.num_rounds().to_string(),
                format!("{:.3}", r_planned.total_ms()),
                format!("{pred_planned_ooc:.3}"),
            ],
        ],
    ));
    let _ = writeln!(
        out,
        "\nAuto-chunk overlap: observed {:.2}x, predicted {:.2}x — no hand-tuned chunk size.\n",
        r_serial.total_ms() / r_planned.total_ms(),
        pred_serial_ooc / pred_planned_ooc
    );

    // -- 4: per-span timeline trace -----------------------------------
    let traced_cfg = atgpu_sim::SimConfig { trace: true, ..cfg.sim.clone() };
    let r_traced =
        run_program(&planned.program, planned.inputs.clone(), machine, &cfg.spec, &traced_cfg)?;
    let identical = r_traced.output(planned.outputs[0]) == r_planned.output(planned.outputs[0])
        && r_traced.total_ms().to_bits() == r_planned.total_ms().to_bits();
    let analysis = analyze_program(&planned.program, machine).map_err(|e| err(&e))?;
    let metrics = analysis.metrics();
    let sched = atgpu_analyze::stream_schedule(&planned.program);
    let spans = &r_traced.trace.as_ref().expect("traced run records spans").spans;

    // Pair observed with predicted spans per (round, lane): both sides
    // schedule the same host steps in program order through the same
    // timeline, so lane order matches one-to-one.
    let mut worst_xfer = 0.0f64;
    let mut worst_kernel = 0.0f64;
    let mut paired = 0usize;
    for (ri, rm) in metrics.rounds.iter().enumerate() {
        let kernel_ms = atgpu_model::cost::gpu_kernel_term(machine, &cfg.spec, &cfg.params, rm)
            .map_err(|e| err(&e))?;
        let (pred, _) =
            atgpu_model::cost::schedule_round_spans(&cfg.params, rm, kernel_ms, sched.get(ri), 0.0);
        for lane in 0u8..4 {
            let obs_lane: Vec<_> = spans
                .iter()
                .filter(|s| s.round as usize == ri && s.resource.lane() == lane)
                .collect();
            let pred_lane: Vec<_> = pred.iter().filter(|s| s.resource.lane() == lane).collect();
            for (o, p) in obs_lane.iter().zip(&pred_lane) {
                let pd = p.end_ms - p.start_ms;
                if pd <= 1e-9 {
                    continue;
                }
                let e = (o.dur_ms() - pd).abs() / pd;
                if o.resource == atgpu_model::StreamResource::Compute {
                    worst_kernel = worst_kernel.max(e);
                } else {
                    worst_xfer = worst_xfer.max(e);
                }
                paired += 1;
            }
        }
    }
    if let Some(path) = trace {
        let json = atgpu_sim::sim_report_trace_json(&r_traced).expect("trace present");
        std::fs::write(path, json).map_err(|e| err(&e))?;
        let _ = writeln!(out, "Chrome trace written to {}.", path.display());
    }
    let _ = writeln!(
        out,
        "Timeline trace: traced run bit-identical to untraced: {}; {} spans recorded, \
         {paired} paired with analytic spans; worst transfer-span error {:.1}%, worst \
         kernel-span error {:.1}%.\n",
        if identical { "yes" } else { "NO" },
        spans.len(),
        100.0 * worst_xfer,
        100.0 * worst_kernel,
    );
    Ok(out)
}

/// E11 — deterministic fault injection and degraded-mode replanning:
///
/// 1. **Drop-rate sweep** — seeded random plans filtered to dropped
///    transfer attempts on a multi-round slabbed 4-device vecadd; every
///    drop is retried with priced exponential backoff and the answers
///    stay bit-identical to the fault-free run;
/// 2. **Mid-program device loss** — one device dies at the half-way
///    round; the survivors replay its checkpoint journal and absorb its
///    shards through the cost-driven planner, and the analytic
///    `cluster_cost_degraded` mirror predicts every round's observed
///    time;
/// 3. **Traced chaos run** — drops + the device death re-run with
///    tracing on (bit-identical, asserted): retry attempts and backoff
///    waits appear as their own spans, the journal replay lands on the
///    heir's host lane, and every priced span matches its link-model
///    prediction within the configured jitter.  With `trace` set, the
///    Chrome `trace_event` JSON is written there.
pub fn e11_fault_tolerance(
    cfg: &ExpConfig,
    trace: Option<&std::path::Path>,
) -> Result<String, AlgosError> {
    use atgpu_algos::vecadd::VECADD_TIME_OPS;
    use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
    use atgpu_model::cost::{cluster_cost_degraded, DegradedLoss};
    use atgpu_model::{AlgoMetrics, ClusterSpec, RoundMetrics, ShardProfile};
    use atgpu_sim::{
        even_shards, planned_shards, run_cluster_program, FaultEvent, FaultPlan, SimConfig,
    };

    let quick = matches!(cfg.scale, crate::runner::Scale::Quick);
    let machine = &cfg.machine;
    let b = machine.b;
    let devices: u32 = 4;
    let rounds: usize = if quick { 4 } else { 8 };
    let slab_blocks: u64 = if quick { 32 } else { 128 };
    let slab = slab_blocks * b;
    let n = slab * rounds as u64;
    let err = |e: &dyn std::fmt::Display| AlgosError::InvalidSize { reason: e.to_string() };

    // The workload: R slabs of vector addition.  Each round uploads one
    // slab split evenly over the devices, adds it in place, and
    // downloads the result — enough rounds for a mid-program death to
    // leave real checkpointed state behind.
    let shards = even_shards(slab_blocks, devices);
    let mut pb = ProgramBuilder::new("vecadd_slabbed");
    let ha = pb.host_input("A", n);
    let hb = pb.host_input("B", n);
    let hc = pb.host_output("C", n);
    let da = pb.device_alloc("a", n);
    let db = pb.device_alloc("b", n);
    let dc = pb.device_alloc("c", n);
    for r in 0..rounds {
        let off0 = r as u64 * slab;
        pb.begin_round();
        for s in &shards {
            let off = off0 + s.start * b;
            let words = s.blocks() * b;
            pb.transfer_in_to(s.device, ha, off, da, off, words);
            pb.transfer_in_to(s.device, hb, off, db, off, words);
        }
        // The vecadd kernel body, reading this round's slab: same shape
        // as `vecadd_kernel`, so `time = VECADD_TIME_OPS` on the model
        // side.
        let bi = b as i64;
        let mut kb = KernelBuilder::new(format!("vecadd_slab{r}"), slab_blocks, 3 * b);
        let g = AddrExpr::block() * bi + AddrExpr::lane() + off0 as i64;
        kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
        kb.glb_to_shr(AddrExpr::lane() + bi, db, g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + bi);
        kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1));
        kb.st_shr(AddrExpr::lane() + 2 * bi, Operand::Reg(2));
        kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * bi);
        pb.launch_sharded(kb.build(), shards.clone());
        for s in &shards {
            let off = off0 + s.start * b;
            pb.transfer_out_from(s.device, dc, off, hc, off, s.blocks() * b);
        }
    }
    let program = pb.build().map_err(|e| err(&e))?;
    let cluster = ClusterSpec::homogeneous(devices as usize, cfg.spec);
    let va: Vec<i64> = (0..n).map(|i| (i as i64 * 7 + 3) % 1001 - 500).collect();
    let vb: Vec<i64> = (0..n).map(|i| (i as i64 * 13 + 5) % 1001 - 500).collect();
    let inputs = vec![va, vb];
    let run = |fault: FaultPlan| {
        let sim = SimConfig { fault, ..cfg.sim.clone() };
        run_cluster_program(&program, inputs.clone(), machine, &cluster, &sim)
    };

    // -- 1: drop-rate sweep -------------------------------------------
    let baseline = run(FaultPlan::default())?;
    let base_ms = baseline.total_ms();
    let base_out = baseline.output(hc).to_vec();
    let mut rows = Vec::new();
    let mut all_identical = true;
    for (i, rate) in [0.0f64, 0.05, 0.1, 0.2].into_iter().enumerate() {
        let mut plan = FaultPlan::random(0xC11A05 + i as u64, devices, rounds, rate);
        plan.events.retain(|e| matches!(e, FaultEvent::TransferDrop { .. }));
        let injected = plan.events.len();
        let report = run(plan)?;
        let stats = report.device_stats_total();
        let identical = report.output(hc) == &base_out[..];
        all_identical &= identical;
        let obs = report.total_ms();
        rows.push(vec![
            format!("{rate:.2}"),
            injected.to_string(),
            stats.retries.to_string(),
            format!("{:.3}", stats.backoff_ms),
            format!("{obs:.3}"),
            format!("{:+.1}%", 100.0 * (obs - base_ms) / base_ms),
            if identical { "yes".into() } else { "NO".into() },
        ]);
    }
    let mut out = format!(
        "### E11 — dropped-transfer sweep (slabbed vecadd, n = {n}, {rounds} rounds, 4 devices)\n\n"
    );
    out.push_str(&markdown_table(
        &[
            "drop rate",
            "injected drops",
            "retries",
            "backoff (ms)",
            "observed (ms)",
            "overhead",
            "bit-identical",
        ],
        &rows,
    ));
    let _ = writeln!(
        out,
        "\nEvery retried attempt is re-priced on its link and every backoff wait is \
         charged to the round; answers bit-identical across all drop rates: {}.\n",
        if all_identical { "yes" } else { "NO" }
    );

    // -- 2: mid-program device loss -----------------------------------
    let at_round = rounds / 2;
    let dead: u32 = 2;
    let mut plan = FaultPlan::new(0xDEAD);
    plan.push(FaultEvent::DeviceDown { device: dead, at_round });
    let report = run(plan)?;
    let identical = report.output(hc) == &base_out[..];
    let recoveries: u64 = report.device_stats.iter().map(|s| s.recoveries).sum();

    // The analytic mirror: one metrics row per round per device (all
    // rounds alike), the dead device's journal (2 uploaded + 1 computed
    // slab share per completed round) replayed at `at_round`, and its
    // blocks taken over exactly the way the simulator's planner
    // re-apportions them over the surviving sub-cluster.
    let pad = |w: u64| w.div_ceil(b) * b;
    let metrics_for = |d: u32, k: usize| {
        let round = shards
            .iter()
            .find(|s| s.device == d)
            .map(|s| RoundMetrics {
                time: VECADD_TIME_OPS,
                io_blocks: 3 * s.blocks(),
                global_words: 3 * pad(n),
                shared_words: 3 * b,
                inward_words: 2 * s.blocks() * b,
                inward_txns: 2,
                outward_words: s.blocks() * b,
                outward_txns: 1,
                blocks_launched: s.blocks(),
            })
            .unwrap_or_default();
        AlgoMetrics::new(vec![round; k])
    };
    let dead_blocks =
        shards.iter().find(|s| s.device == dead).map(|s| s.blocks()).unwrap_or_default();
    let survivors: Vec<usize> = (0..devices as usize).filter(|&d| d != dead as usize).collect();
    let sub = ClusterSpec::homogeneous(survivors.len(), cfg.spec);
    let take = planned_shards(dead_blocks, &sub, machine, &ShardProfile::streaming(b));
    let counts = atgpu_sim::shard_counts(&take, survivors.len());
    let mut takeover = vec![0.0; devices as usize];
    for (i, &s) in survivors.iter().enumerate() {
        takeover[s] = counts[i] as f64 / dead_blocks as f64;
    }
    let loss = DegradedLoss {
        device: dead as usize,
        at_round,
        replay_words: 3 * dead_blocks * b * at_round as u64,
        replay_txns: 1,
        takeover,
    };
    // Per-round predictions by prefix differencing: the cost of the
    // first k rounds minus the cost of the first k − 1 under the same
    // loss (replay bills once, at `at_round`).
    let mut pred_rounds = Vec::with_capacity(rounds);
    let mut prev = 0.0;
    for k in 1..=rounds {
        let per_device: Vec<AlgoMetrics> = (0..devices).map(|d| metrics_for(d, k)).collect();
        let c = cluster_cost_degraded(&cluster, machine, &per_device, &[], &loss)
            .map_err(|e| err(&e))?;
        pred_rounds.push(c.total_ms - prev);
        prev = c.total_ms;
    }
    let mut rows = Vec::new();
    let mut max_err = 0.0f64;
    for (i, (obs_r, pred_r)) in
        report.rounds.iter().map(|r| r.total_ms()).zip(&pred_rounds).enumerate()
    {
        let e = (pred_r - obs_r).abs() / obs_r.max(1e-12);
        max_err = max_err.max(e);
        rows.push(vec![
            format!("{i}{}", if i == at_round { " (death)" } else { "" }),
            format!("{obs_r:.3}"),
            format!("{pred_r:.3}"),
            format!("{:.1}%", 100.0 * e),
        ]);
    }
    let _ = writeln!(
        out,
        "### E11 — mid-program device loss (device {dead} dies at round {at_round} of {rounds})\n"
    );
    out.push_str(&markdown_table(&["round", "observed (ms)", "predicted (ms)", "error"], &rows));
    let total = report.total_ms();
    let _ = writeln!(
        out,
        "\nDegraded run: bit-identical to fault-free: {}; journal replays onto {recoveries} \
         survivors; total {total:.3} ms vs fault-free {base_ms:.3} ms ({:.2}x, under 2x: {}); \
         max per-round prediction error {:.1}% (within 10%: {}).\n",
        if identical { "yes" } else { "NO" },
        total / base_ms,
        if total < 2.0 * base_ms { "yes" } else { "NO" },
        100.0 * max_err,
        if max_err <= 0.10 { "yes" } else { "NO" },
    );

    // -- 3: traced chaos run ------------------------------------------
    // Drops plus the same device death, once untraced and once traced:
    // tracing must not move a single bit, and the fault machinery must
    // be *visible* — retry attempts, backoff waits and the heir's
    // journal replay each as their own span.
    use atgpu_sim::SpanKind;
    let mut plan = FaultPlan::random(0xC11A05 + 2, devices, rounds, 0.1);
    plan.events.retain(|e| matches!(e, FaultEvent::TransferDrop { .. }));
    plan.push(FaultEvent::DeviceDown { device: dead, at_round });
    let untraced = run(plan.clone())?;
    let sim = SimConfig { fault: plan, trace: true, ..cfg.sim.clone() };
    let traced = run_cluster_program(&program, inputs.clone(), machine, &cluster, &sim)?;
    let identical = traced.output(hc) == untraced.output(hc)
        && traced.total_ms().to_bits() == untraced.total_ms().to_bits()
        && traced.output(hc) == &base_out[..];

    let tr = traced.trace.as_ref().expect("traced run records spans");
    let heir = (0..devices).find(|&d| d != dead).unwrap_or_default();
    let backoffs = tr.spans.iter().filter(|s| matches!(s.kind, SpanKind::Backoff)).count();
    let replay_on_heir =
        tr.spans.iter().any(|s| matches!(s.kind, SpanKind::Replay) && s.device == heir);
    // Every span the link model prices (transfers, retry attempts, the
    // replay — not backoff waits or kernels) against its prediction.
    let mut worst_span = 0.0f64;
    let mut priced = 0usize;
    for s in &tr.spans {
        if s.predicted_ms > 0.0 && !matches!(s.kind, SpanKind::Backoff) {
            worst_span = worst_span.max((s.dur_ms() - s.predicted_ms).abs() / s.predicted_ms);
            priced += 1;
        }
    }
    if let Some(path) = trace {
        let json = atgpu_sim::cluster_report_trace_json(&traced).expect("trace present");
        std::fs::write(path, json).map_err(|e| err(&e))?;
        let _ = writeln!(out, "\nChrome trace written to {}.", path.display());
    }
    let _ = writeln!(
        out,
        "\nTraced chaos run: bit-identical to untraced: {}; {} spans recorded \
         ({backoffs} backoff waits visible, {priced} priced by the link model); \
         replay span on heir device {heir}: {}; worst priced-span error {:.1}% \
         (within 10%: {}).\n",
        if identical { "yes" } else { "NO" },
        tr.spans.len(),
        if replay_on_heir { "yes" } else { "NO" },
        100.0 * worst_span,
        if worst_span <= 0.10 { "yes" } else { "NO" },
    );
    Ok(out)
}

/// E12 — the multi-tenant cost-query service's pricing fast path: hit
/// rate and latency histogram of a repeated-query workload through
/// [`atgpu_serve::CostServer`], against a sim-only baseline answering
/// every query with a full cluster simulation.
///
/// The workload asks a small set of distinct what-if questions over and
/// over (the serving regime the memo exists for): the first ask of each
/// exactly-analysable program is answered by the streamed analytic cost
/// model, the first ask of a bank-conflicted program falls outside the
/// analytic trust gate and pays a full simulation, and every repeat is a
/// memo hit.  Asserted (the PR's acceptance bars):
///
/// * ≥ 90% of queries answered on the fast path (memo + analytic);
/// * fast-path p50 latency ≥ 10x below the simulation fallback's —
///   per-query bests on both sides (the baseline is best-of-3, the
///   fast path best-of-`repeats`), so host CPU contention, which only
///   ever adds time, can't masquerade as fast-path cost;
/// * every quote within 10% of the simulator's observed total.
pub fn e12_pricing_service(cfg: &ExpConfig) -> Result<String, AlgosError> {
    use atgpu_model::ClusterSpec;
    use atgpu_serve::{CostServer, PriceSource, ServerConfig};
    use atgpu_sim::{run_cluster_program, SimConfig};
    use std::time::Instant;

    let quick = matches!(cfg.scale, crate::runner::Scale::Quick);
    let machine = &cfg.machine;
    let devices = 2usize;
    let spec = ClusterSpec::homogeneous(devices, cfg.spec);
    let err = |e: &dyn std::fmt::Display| AlgosError::InvalidSize { reason: e.to_string() };

    // The server prices deterministically (its default config is
    // noise-free); the sim-only baseline must answer the same question,
    // so it uses the same config rather than `cfg.sim`'s jitter.
    let sim = SimConfig::default();
    let server =
        CostServer::new(*machine, spec.clone(), ServerConfig::default()).map_err(|e| err(&e))?;

    // Distinct questions: sharded vector additions of several sizes
    // (exactly analysable → analytic fast path) plus one bank-conflicted
    // unpadded tiled transpose, whose failed conflict-free assumption forces the
    // first ask through the simulation fallback.
    let distinct = if quick { 5u64 } else { 9 };
    let repeats: usize = if quick { 20 } else { 40 };
    let mut programs = Vec::new();
    for i in 0..distinct {
        let n = 32 * (8 + 4 * i);
        programs.push((
            format!("vecadd n={n}"),
            VecAdd::new(n, 100 + i).build_sharded(machine, devices as u32)?,
        ));
    }
    programs.push((
        "transpose/tiled 32".to_string(),
        Transpose::new(32, 5, TransposeVariant::Tiled).build(machine)?,
    ));

    // Sim-only baseline: every query pays a full cluster simulation
    // (best-of-3 per program; the observed totals double as the
    // accuracy reference for the quotes).
    let mut baseline_secs = Vec::new();
    let mut observed_ms = Vec::new();
    for (_, built) in &programs {
        let mut best = f64::INFINITY;
        let mut obs = 0.0;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = run_cluster_program(&built.program, built.inputs.clone(), machine, &spec, &sim)
                .map_err(|e| err(&e))?;
            best = best.min(t0.elapsed().as_secs_f64());
            obs = r.total_ms();
        }
        baseline_secs.push(best);
        observed_ms.push(obs);
    }

    // The repeated-query workload through the pricing API.  Alongside
    // the raw per-call samples (the histogram below shows the full
    // distribution), keep each query's *best* fast-path latency: the
    // latency comparison must match the baseline's best-of idiom, or
    // CPU contention from whatever else the host is running lands only
    // on the µs-scale side and masquerades as fast-path cost.
    let mut fast_secs = Vec::new();
    let mut slow_secs = Vec::new();
    let mut fast_best = vec![f64::INFINITY; programs.len()];
    let mut first: Vec<Option<atgpu_serve::Quote>> = vec![None; programs.len()];
    for _ in 0..repeats {
        for (i, (_, built)) in programs.iter().enumerate() {
            let t0 = Instant::now();
            let q = server.price(&built.program).map_err(|e| err(&e))?;
            let dt = t0.elapsed().as_secs_f64();
            match q.source {
                PriceSource::Simulated => slow_secs.push(dt),
                PriceSource::Memo | PriceSource::Analytic => {
                    fast_secs.push(dt);
                    fast_best[i] = fast_best[i].min(dt);
                }
            }
            first[i].get_or_insert(q);
        }
    }

    // -- accuracy: every quote within tolerance of the observed total --
    let mut worst_err = 0.0f64;
    let mut worst_name = String::new();
    let mut rows = Vec::new();
    for (i, (name, _)) in programs.iter().enumerate() {
        let q = first[i].expect("every program was priced");
        let e = (q.total_ms - observed_ms[i]).abs() / observed_ms[i].max(1e-12);
        if e > worst_err {
            worst_err = e;
            worst_name =
                format!("{name} ({:?} {:.4}ms vs {:.4}ms)", q.source, q.total_ms, observed_ms[i]);
        }
        rows.push(vec![
            name.clone(),
            format!("{:?}", q.source),
            format!("{:.4}", q.total_ms),
            format!("{:.4}", observed_ms[i]),
            format!("{:.2}%", 100.0 * e),
            format!("{:.0}", baseline_secs[i] * 1e6),
        ]);
    }
    assert!(
        worst_err <= 0.10,
        "a quote missed the observed total by {:.1}% (> 10%): {worst_name}",
        100.0 * worst_err
    );

    // -- hit rate and latency ------------------------------------------
    let stats = server.stats().price;
    let hit_rate = stats.fast_fraction();
    assert!(hit_rate >= 0.90, "fast path served only {:.1}% of queries", 100.0 * hit_rate);

    let pct = |v: &mut [f64], q: f64| -> f64 {
        v.sort_by(f64::total_cmp);
        v[((v.len() - 1) as f64 * q).round() as usize]
    };
    // The slow side: the sim-only baseline plus the measured fallback
    // queries — what every query would cost without the fast path.
    // Both sides of the comparison are per-query bests: the baseline is
    // best-of-3 by construction, the fast side best-of-`repeats` from
    // the workload loop (min is the right estimator of intrinsic cost
    // when interference only ever adds time).
    let mut sim_all = baseline_secs.clone();
    sim_all.extend_from_slice(&slow_secs);
    let mut fast_best: Vec<f64> = fast_best.into_iter().filter(|v| v.is_finite()).collect();
    let (p50_fast, p90_fast) = (pct(&mut fast_best, 0.5), pct(&mut fast_best, 0.9));
    let (p50_sim, p90_sim) = (pct(&mut sim_all, 0.5), pct(&mut sim_all, 0.9));
    let speedup = p50_sim / p50_fast.max(1e-12);
    assert!(
        speedup >= 10.0,
        "fast-path p50 {:.1}µs only {speedup:.1}x below sim p50 {:.1}µs",
        p50_fast * 1e6,
        p50_sim * 1e6
    );

    // -- latency histogram (decade buckets) ----------------------------
    let names = ["< 1 µs", "1–10 µs", "10–100 µs", "0.1–1 ms", "1–10 ms", "≥ 10 ms"];
    let bucket = |s: f64| -> usize {
        let us = s * 1e6;
        [1.0, 10.0, 100.0, 1e3, 1e4].iter().position(|&hi| us < hi).unwrap_or(5)
    };
    let (mut fast_h, mut sim_h) = ([0usize; 6], [0usize; 6]);
    fast_secs.iter().for_each(|&s| fast_h[bucket(s)] += 1);
    sim_all.iter().for_each(|&s| sim_h[bucket(s)] += 1);
    let bar = |count: usize, max: usize| "█".repeat((count * 24).div_ceil(max.max(1)).min(24));
    let hmax = fast_h.iter().chain(&sim_h).copied().max().unwrap_or(1);
    let hist_rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                n.to_string(),
                format!("{} {}", fast_h[i], bar(fast_h[i], hmax)),
                format!("{} {}", sim_h[i], bar(sim_h[i], hmax)),
            ]
        })
        .collect();

    let total = fast_secs.len() + slow_secs.len();
    let mut out = format!(
        "### E12 — multi-tenant pricing service: analytic fast path vs sim-only baseline \
         ({devices} devices, {} distinct queries × {repeats} repeats)\n\n",
        programs.len()
    );
    out.push_str(&markdown_table(
        &[
            "query",
            "first answer",
            "quote (ms)",
            "sim observed (ms)",
            "error",
            "sim-only latency (µs)",
        ],
        &rows,
    ));
    out.push('\n');
    out.push_str(&markdown_table(
        &["latency", "fast path (memo + analytic)", "simulation (baseline + fallback)"],
        &hist_rows,
    ));
    let _ = writeln!(
        out,
        "\nFast path answered {} of {total} queries — hit rate {:.1}% ({} memo / {} analytic / \
         {} simulated).  Per-query best latency: p50 {:.1} µs vs {:.1} µs sim-only ({:.0}x \
         below; p90 {:.1} µs vs {:.1} µs); worst quote error {:.2}% (within 10%: {}).",
        fast_secs.len(),
        100.0 * hit_rate,
        stats.memo_hits,
        stats.analytic,
        stats.simulated,
        p50_fast * 1e6,
        p50_sim * 1e6,
        speedup,
        p90_fast * 1e6,
        p90_sim * 1e6,
        100.0 * worst_err,
        if worst_err <= 0.10 { "yes" } else { "NO" },
    );
    Ok(out)
}

/// E13 — peer-aware shard planning on an asymmetric peer matrix: the
/// argmin flip the directed peer-link pricing exists for.
///
/// Four identical devices behind identical host links — every
/// peer-**blind** signal (compute weight, host-link balance) says "split
/// evenly" — but every peer edge touching the last device is `penalty`×
/// more expensive in both `α` and `β` (a distant switch hop).  Two
/// peer-heavy irregular workloads run under three plans each:
///
/// * **even** — the uninformed baseline;
/// * **peer-blind** — [`atgpu_sim::planned_shards`] priced with
///   [`atgpu_model::ShardProfile::without_peer`]: the E10 planner as it
///   was before peer traffic became a priced quantity;
/// * **peer-aware** — the same planner with the full profile: halo /
///   merge rows enter the objective and the drop-device candidates
///   become reachable.
///
/// The halo stencil trades one boundary cell per direction per round
/// across every device boundary; the histogram merges each device's
/// partial-bin rows to the owner.  On this matrix the peer-aware argmin
/// *flips* — it idles the expensive device and eats the extra compute on
/// the rest — and the flip is real: on both workloads the observed round
/// time beats the peer-blind plan's by ≥ 1.3x, and on the (statically
/// conflict-free) stencil the analytic prediction lands within 10% of
/// observation (all pinned by the e13 test; the histogram's gap is the
/// model's conflict-free assumption, reported in the output).  A traced
/// re-run of the winning stencil plan must be bit-identical; with
/// `trace` set its Chrome `trace_event` JSON is written there.
pub fn e13_peer_aware_planner(
    cfg: &ExpConfig,
    trace: Option<&std::path::Path>,
) -> Result<String, AlgosError> {
    use atgpu_algos::stencil::Stencil;
    use atgpu_model::{plan, ClusterSpec};
    use atgpu_sim::{even_shards, planned_shards, run_cluster_program, shard_counts, SimConfig};

    let quick = matches!(cfg.scale, crate::runner::Scale::Quick);
    let machine = &cfg.machine;
    let err = |e: &dyn std::fmt::Display| AlgosError::InvalidSize { reason: e.to_string() };
    let mut out = String::new();

    // Identical devices, identical host links — peer-blind homogeneity —
    // with every directed peer edge touching the LAST device slowed.
    let devices = 4usize;
    let expensive = devices - 1;
    let penalty = 128.0;
    let mut cluster = ClusterSpec::homogeneous(devices, cfg.spec);
    for d in 0..devices {
        if d == expensive {
            continue;
        }
        cluster.peer_links[d][expensive] = cluster.peer_links[d][expensive].scaled(penalty);
        cluster.peer_links[expensive][d] = cluster.peer_links[expensive][d].scaled(penalty);
    }
    let fmt_counts = |c: &[u64]| c.iter().map(u64::to_string).collect::<Vec<_>>().join(" / ");

    let n_st: u64 = if quick { 1 << 13 } else { 1 << 17 };
    let st_rounds = 8u64;
    let n_hist: u64 = if quick { 1 << 15 } else { 1 << 19 };
    let stencil = Stencil::new(n_st, 13);
    let hist = Histogram::new(n_hist, machine.b, 13);

    let mut rows = Vec::new();
    // Per workload: (flip, observed_blind / observed_aware, prediction gap).
    let mut accept = Vec::new();
    // The peer-aware stencil build, kept for the traced re-run.
    let mut traced_case = None;
    for workload in ["stencil", "histogram"] {
        let (units, profile) = match workload {
            "stencil" => (machine.blocks_for(n_st), Stencil::shard_profile(machine, st_rounds)),
            _ => (machine.blocks_for(n_hist), Histogram::shard_profile(machine)),
        };
        let plans = [
            ("even", even_shards(units, devices as u32)),
            ("peer-blind", planned_shards(units, &cluster, machine, &profile.without_peer())),
            ("peer-aware", planned_shards(units, &cluster, machine, &profile)),
        ];
        let mut blind: Option<(Vec<u64>, f64)> = None;
        for (name, shards) in plans {
            let built = match workload {
                "stencil" => stencil.build_sharded_with(machine, shards.clone(), st_rounds)?,
                _ => hist.build_sharded_with(machine, shards.clone())?,
            };
            let report = run_cluster_program(
                &built.program,
                built.inputs.clone(),
                machine,
                &cluster,
                &cfg.sim,
            )?;
            let counts = shard_counts(&shards, devices);
            // Every plan is priced with the FULL profile: the peer-blind
            // planner chose without seeing peer rows, but its plan still
            // pays them.
            let predicted =
                plan::plan_cost(&cluster, machine, &profile, &counts).map_err(|e| err(&e))?;
            let observed = report.total_ms();
            let speedup = match &blind {
                Some((_, b)) => format!("{:.2}x", b / observed),
                None => "—".into(),
            };
            match name {
                "peer-blind" => blind = Some((counts.clone(), observed)),
                "peer-aware" => {
                    let (bc, bms) = blind.clone().expect("peer-blind row measured first");
                    let gap = (predicted - observed).abs() / observed.max(1e-12);
                    accept.push((workload, bc != counts, bms / observed, gap));
                    if workload == "stencil" {
                        let ob = built.outputs[0];
                        traced_case = Some((built, report.output(ob).to_vec()));
                    }
                }
                _ => {}
            }
            rows.push(vec![
                workload.to_string(),
                name.to_string(),
                fmt_counts(&counts),
                format!("{observed:.3}"),
                format!("{predicted:.3}"),
                speedup,
            ]);
        }
    }

    let _ = writeln!(
        out,
        "### E13 — peer-aware planning (4 identical devices, peer edges to device \
         {expensive} slowed {penalty:.0}x; stencil n = {n_st} × {st_rounds} rounds, \
         histogram n = {n_hist})\n"
    );
    out.push_str(&markdown_table(
        &[
            "workload",
            "planner",
            "blocks per device",
            "observed (ms)",
            "predicted (ms)",
            "speedup vs peer-blind",
        ],
        &rows,
    ));
    out.push('\n');
    for (workload, flip, speedup, gap) in &accept {
        let _ = writeln!(
            out,
            "Peer-aware speedup on {workload}: {speedup:.2}x over the peer-blind plan \
             (argmin flip: {}); prediction within {:.1}% of observation.",
            if *flip { "yes" } else { "NO" },
            100.0 * gap
        );
    }
    let _ = writeln!(
        out,
        "\nThe histogram prediction gap is the model's conflict-free assumption, not the \
         peer pricing: the partial-bin kernel serialises on shared-memory bank conflicts \
         (see E3), a per-plan-constant term no plan's profile carries — the *relative* \
         ordering of candidate plans, which is all the planner needs, is unaffected."
    );

    // -- traced re-run of the winning stencil plan --------------------
    let (built, base_out) = traced_case.expect("the stencil peer-aware case ran");
    let sim = SimConfig { trace: true, ..cfg.sim.clone() };
    let traced =
        run_cluster_program(&built.program, built.inputs.clone(), machine, &cluster, &sim)?;
    let identical = traced.output(built.outputs[0]) == &base_out[..];
    let n_spans = traced.trace.as_ref().map(|t| t.spans.len()).unwrap_or(0);
    if let Some(path) = trace {
        let json = atgpu_sim::cluster_report_trace_json(&traced).expect("trace present");
        std::fs::write(path, json).map_err(|e| err(&e))?;
        let _ = writeln!(out, "\nChrome trace written to {}.", path.display());
    }
    let _ = writeln!(
        out,
        "\nTraced peer-aware run: bit-identical to untraced: {}; {n_spans} spans recorded.\n",
        if identical { "yes" } else { "NO" },
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;

    fn cfg() -> ExpConfig {
        ExpConfig::standard(Scale::Quick)
    }

    #[test]
    fn e1_runs_and_reports() {
        let s = e1_out_of_core(&cfg()).unwrap();
        assert!(s.contains("chunk"));
        assert!(s.contains("host-finish"));
        assert!(s.contains("device-finish"));
    }

    #[test]
    fn e3_shows_conflict_contrast() {
        let s = e3_bank_conflicts(&cfg()).unwrap();
        assert!(s.contains("transpose/naive"));
        assert!(s.contains("transpose/tiled-padded"));
        assert!(s.contains("histogram"));
    }

    #[test]
    fn e4_occupancy_monotone() {
        let (s, fig) = e4_occupancy(&cfg()).unwrap();
        assert!(s.contains("ℓ"));
        // Less shared per block -> higher occupancy -> faster: observed
        // series should be non-increasing as m shrinks... the sweep goes
        // from small m (divisor 16) to large m (divisor 1), so observed
        // time should increase along the series.
        let obs = &fig.series[1].points;
        assert!(obs.last().unwrap().1 >= obs.first().unwrap().1, "{obs:?}");
    }

    #[test]
    fn e5_reports_all_workloads() {
        let (s, rows) = e5_other_problems(&cfg()).unwrap();
        assert_eq!(rows.len(), 6);
        for name in ["saxpy", "dot", "scan", "stencil", "gemv", "bitonic"] {
            assert!(s.contains(name));
        }
    }

    #[test]
    fn e2_covers_all_specs() {
        let s = e2_other_gpus(&cfg()).unwrap();
        for name in ["gtx650-like", "midrange-like", "highend-like"] {
            assert!(s.contains(name));
        }
    }

    #[test]
    fn e7_sharding_speeds_up_transfer_bound_vecadd() {
        let s = e7_multi_device(&cfg()).unwrap();
        assert!(s.contains("per-device transfer"));
        // The 4-device row must show a real speedup over 1 device.
        let speedups: Vec<f64> = s
            .lines()
            .filter(|l| l.ends_with("x |"))
            .filter_map(|l| {
                let cell = l.rsplit('|').nth(1)?.trim();
                cell.strip_suffix('x')?.parse().ok()
            })
            .collect();
        assert_eq!(speedups.len(), 3, "{s}");
        assert!(speedups[2] > 2.0, "4-device speedup {speedups:?}\n{s}");
    }

    #[test]
    fn e8_streams_overlap_and_planner() {
        let s = e8_streams(&cfg()).unwrap();
        // Acceptance: double-buffered ooc-vecadd ≥ 1.2x over its serial
        // form in modeled time.
        let speedup: f64 = s
            .lines()
            .find(|l| l.starts_with("Overlap speedup: observed"))
            .and_then(|l| l.split("observed ").nth(1)?.split('x').next()?.trim().parse().ok())
            .expect("overlap speedup line");
        assert!(speedup >= 1.2, "ooc-vecadd overlap speedup {speedup} < 1.2\n{s}");
        // The predicted speedup tracks the observed one.
        let predicted: f64 = s
            .lines()
            .find(|l| l.starts_with("Overlap speedup: observed"))
            .and_then(|l| l.split("predicted ").nth(1)?.split('x').next()?.trim().parse().ok())
            .expect("predicted speedup");
        assert!(
            (speedup - predicted).abs() < 0.35,
            "observed {speedup} vs predicted {predicted}\n{s}"
        );
        // The weighted planner beats the even split on the mixed cluster.
        let planner: f64 = s
            .lines()
            .find(|l| l.starts_with("Weighted-planner speedup"))
            .and_then(|l| l.split(": ").nth(1)?.split('x').next()?.trim().parse().ok())
            .expect("planner speedup line");
        assert!(planner > 1.2, "weighted planner speedup {planner}\n{s}");
        // Threaded dispatch: on a host with 4+ cores the 4-device
        // sharded launch must cut wall-clock ≥ 1.5x; on fewer cores
        // threads cannot help, so only assert it is not pathologically
        // slower.
        let wall: f64 = s
            .lines()
            .find(|l| l.starts_with("Wall-clock speedup"))
            .and_then(|l| l.split(": ").nth(1)?.split('x').next()?.trim().parse().ok())
            .expect("wall-clock line");
        if atgpu_sim::cluster::host_parallelism() >= 4 {
            assert!(
                wall >= 1.5,
                "threaded 4-device dispatch only {wall}x on a multicore host\n{s}"
            );
        } else {
            assert!(wall > 0.5, "threaded dispatch slower than half sequential: {wall}\n{s}");
        }
    }

    #[test]
    fn e9_cache_sweep_reports_hits_and_identical_results() {
        let s = e9_kernel_cache(&cfg()).unwrap();
        assert!(s.contains("cross-launch kernel cache"), "{s}");
        // Exact counters for the largest quick sweep point: 400 launches
        // = 1 compile + 399 hits.
        assert!(s.contains("399/1"), "{s}");
        assert!(s.contains("bit-identical"));
        // Every sweep point reports a hit rate above 90%.
        for line in s.lines().filter(|l| l.contains("% |")) {
            let rate: f64 = line
                .rsplit('|')
                .nth(1)
                .and_then(|c| c.trim().strip_suffix('%'))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0);
            assert!(rate > 90.0, "hit rate {rate} too low in: {line}");
        }
    }

    /// The PR's acceptance criteria, pinned: on the E10 link-asymmetric
    /// transfer-bound case the pipeline planner beats the
    /// compute-weighted planner's observed round time by ≥ 1.2x with the
    /// analytic prediction within 10% of observation, and the
    /// auto-chunked streamed ooc-vecadd reproduces the hand-written
    /// overlap (≥ 1.5x vs its serial form) without a hand-tuned chunk.
    #[test]
    fn e10_planner_beats_weighted_and_predicts() {
        let s = e10_pipeline_planner(&cfg(), None).unwrap();
        let line =
            s.lines().find(|l| l.starts_with("Pipeline-planner speedup")).expect("acceptance line");
        let speedup: f64 = line
            .split("case: ")
            .nth(1)
            .and_then(|t| t.split('x').next())
            .and_then(|v| v.trim().parse().ok())
            .expect("speedup value");
        assert!(speedup >= 1.2, "planner speedup {speedup} < 1.2\n{s}");
        let gap: f64 = line
            .split("within ")
            .nth(1)
            .and_then(|t| t.split('%').next())
            .and_then(|v| v.trim().parse().ok())
            .expect("prediction gap");
        assert!(gap <= 10.0, "prediction off by {gap}%\n{s}");

        let overlap_line =
            s.lines().find(|l| l.starts_with("Auto-chunk overlap")).expect("auto-chunk line");
        let grab = |tag: &str| -> f64 {
            overlap_line
                .split(tag)
                .nth(1)
                .and_then(|t| t.split('x').next())
                .and_then(|v| v.trim().parse().ok())
                .expect("overlap value")
        };
        let (obs, pred) = (grab("observed "), grab("predicted "));
        assert!(obs >= 1.5, "auto-chunk overlap {obs} < 1.5\n{s}");
        assert!((obs - pred).abs() < 0.2, "observed {obs} vs predicted {pred}\n{s}");

        // Per-span tracing: bit-identical run, and the worst span-level
        // prediction error stays within the round-level tolerance.
        let tline =
            s.lines().find(|l| l.starts_with("Timeline trace:")).expect("timeline trace line");
        assert!(tline.contains("bit-identical to untraced: yes"), "{s}");
        let span_err = |tag: &str| -> f64 {
            tline
                .split(tag)
                .nth(1)
                .and_then(|t| t.split('%').next())
                .and_then(|v| v.trim().parse().ok())
                .expect("span error value")
        };
        assert!(
            span_err("worst transfer-span error ") <= 10.0,
            "transfer spans off by more than 10%\n{s}"
        );
        assert!(
            span_err("worst kernel-span error ") <= 10.0,
            "kernel spans off by more than 10%\n{s}"
        );
    }

    /// The PR's acceptance criteria, pinned: every drop rate leaves the
    /// answers bit-identical, a mid-program device loss finishes under
    /// 2x the fault-free wall-clock, and the degraded cost mirror
    /// predicts each round within 10%.
    #[test]
    fn e11_chaos_stays_correct_and_predicted() {
        let s = e11_fault_tolerance(&cfg(), None).unwrap();
        let drops = s
            .lines()
            .find(|l| l.contains("answers bit-identical across all drop rates"))
            .expect("drop-sweep acceptance line");
        assert!(drops.ends_with("yes."), "{s}");
        let line = s
            .lines()
            .find(|l| l.starts_with("Degraded run:"))
            .expect("device-loss acceptance line");
        assert!(line.contains("bit-identical to fault-free: yes"), "{s}");
        assert!(line.contains("replays onto 3 survivors"), "{s}");
        assert!(line.contains("under 2x: yes"), "{s}");
        assert!(line.contains("within 10%: yes"), "{s}");

        // The traced chaos run: tracing is invisible, retries and the
        // heir's journal replay are visible, and priced spans match
        // their link-model predictions.
        let tline =
            s.lines().find(|l| l.starts_with("Traced chaos run:")).expect("traced chaos line");
        assert!(tline.contains("bit-identical to untraced: yes"), "{s}");
        assert!(tline.contains("replay span on heir device 0: yes"), "{s}");
        assert!(tline.contains("within 10%: yes"), "{s}");
    }

    /// The pricing-service acceptance bars, pinned: ≥ 90% of a
    /// repeated-query workload served from the fast path, fast-path p50
    /// ≥ 10x below simulation (both asserted inside the sweep — it
    /// returning `Ok` is the check), quotes within 10%.
    #[test]
    fn e12_fast_path_dominates() {
        let s = e12_pricing_service(&cfg()).unwrap();
        assert!(s.contains("multi-tenant pricing service"), "{s}");
        assert!(s.contains("within 10%: yes"), "{s}");
        // One simulated fallback (the bank-conflicted transpose), the
        // rest analytic or memoized.
        assert!(s.contains("1 simulated"), "{s}");
        let rate: f64 = s
            .lines()
            .find(|l| l.contains("hit rate"))
            .and_then(|l| l.split("hit rate ").nth(1))
            .and_then(|t| t.split('%').next())
            .and_then(|v| v.parse().ok())
            .expect("hit rate line");
        assert!(rate >= 90.0, "hit rate {rate}% too low:\n{s}");
    }

    /// The peer-aware planning acceptance bars, pinned: on the
    /// asymmetric peer matrix the peer-aware planner picks a different
    /// plan than the peer-blind one (the argmin flip), the flip is
    /// observed-faster by ≥ 1.3x on both workloads, the stencil
    /// prediction lands within 10% of observation, and the traced re-run
    /// is bit-identical.
    #[test]
    fn e13_peer_aware_flips_argmin_and_wins() {
        let s = e13_peer_aware_planner(&cfg(), None).unwrap();
        for workload in ["stencil", "histogram"] {
            let line = s
                .lines()
                .find(|l| l.starts_with(&format!("Peer-aware speedup on {workload}")))
                .expect("acceptance line");
            assert!(line.contains("argmin flip: yes"), "{s}");
            let speedup: f64 = line
                .split("speedup on ")
                .nth(1)
                .and_then(|t| t.split(": ").nth(1))
                .and_then(|t| t.split('x').next())
                .and_then(|v| v.trim().parse().ok())
                .expect("speedup value");
            assert!(speedup >= 1.3, "{workload} peer-aware speedup {speedup} < 1.3\n{s}");
            let gap: f64 = line
                .split("within ")
                .nth(1)
                .and_then(|t| t.split('%').next())
                .and_then(|v| v.trim().parse().ok())
                .expect("prediction gap");
            if workload == "stencil" {
                assert!(gap <= 10.0, "stencil prediction off by {gap}%\n{s}");
            }
        }
        let tline =
            s.lines().find(|l| l.starts_with("Traced peer-aware run:")).expect("traced line");
        assert!(tline.contains("bit-identical to untraced: yes"), "{s}");
    }

    #[test]
    fn e6_calibration_report() {
        let s = e6_calibration(&cfg()).unwrap();
        assert!(s.contains("fitted"));
        assert!(s.contains("λ"));
        assert!(s.contains("fitted* parameters") || s.contains("fitted"));
    }
}
