//! Figure 4 — reduction: predicted, observed and normalised.

use crate::figures::{reduce_sizes, standard_panels};
use crate::runner::{run_row, ExpConfig, SweepRow};
use crate::series::Figure;
use atgpu_algos::reduce::Reduce;
use atgpu_algos::AlgosError;

/// Runs the reduction sweep (paper: `n = 2¹⁶ … 2²⁶`, 0/1 values).
pub fn rows(cfg: &ExpConfig) -> Result<Vec<SweepRow>, AlgosError> {
    reduce_sizes(cfg.scale).into_iter().map(|n| run_row(&Reduce::new(n, n), cfg)).collect()
}

/// Figures 4a, 4b, 4c from the sweep rows.
pub fn figures(rows: &[SweepRow]) -> Vec<Figure> {
    standard_panels(rows, 4, "reduction", true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;

    #[test]
    fn quick_sweep_reproduces_paper_shape() {
        let cfg = ExpConfig::standard(Scale::Quick);
        let rows = rows(&cfg).unwrap();
        let last = rows.last().unwrap();
        // Transfer matters but less than in vector addition: ΔE should be
        // positive yet clearly below the vecadd regime (~0.85).
        assert!(last.delta_e > 0.05 && last.delta_e < 0.8, "ΔE = {}", last.delta_e);
        // Total still exceeds kernel.
        assert!(last.total_ms > last.kernel_ms);
        assert_eq!(figures(&rows).len(), 3);
    }
}
