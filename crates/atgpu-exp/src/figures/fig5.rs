//! Figure 5 — matrix multiplication: predicted and observed (the paper
//! has no normalised panel for this workload).

use crate::figures::{matmul_sizes, standard_panels};
use crate::runner::{run_row, ExpConfig, SweepRow};
use crate::series::Figure;
use atgpu_algos::matmul::MatMul;
use atgpu_algos::AlgosError;

/// Runs the matrix-multiplication sweep (paper: `n = 32 … 1024`).
pub fn rows(cfg: &ExpConfig) -> Result<Vec<SweepRow>, AlgosError> {
    matmul_sizes(cfg.scale).into_iter().map(|n| run_row(&MatMul::new(n, n), cfg)).collect()
}

/// Figures 5a, 5b from the sweep rows.
pub fn figures(rows: &[SweepRow]) -> Vec<Figure> {
    standard_panels(rows, 5, "matrix multiplication", false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Scale;

    #[test]
    fn quick_sweep_reproduces_paper_shape() {
        let cfg = ExpConfig::standard(Scale::Quick);
        let rows = rows(&cfg).unwrap();
        let last = rows.last().unwrap();
        // "There is little difference between the kernel running time and
        // the total running time": transfer share is small.
        assert!(last.delta_e < 0.35, "ΔE = {}", last.delta_e);
        // Kernel dominates the total.
        assert!(last.kernel_ms > 0.5 * last.total_ms);
        assert_eq!(figures(&rows).len(), 2);
    }
}
