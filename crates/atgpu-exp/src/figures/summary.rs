//! §IV-D summary statistics.
//!
//! The paper quotes, per workload:
//!
//! * the average share of total running time spent on data transfer
//!   (84 % vector addition, 35 % reduction, "little" for matmul);
//! * the average gap between predicted and observed transfer proportions
//!   (within 1.5 %, 5.49 % and 0.76 % respectively);
//! * the fraction of actual running time the SWGPU view captures
//!   (16 %, 58 %, 89 %) — i.e. the kernel share of the total.

use crate::figures::fig6::mean_delta_gap;
use crate::report::markdown_table;
use crate::runner::SweepRow;

/// Summary statistics for one workload's sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSummary {
    /// Mean observed transfer share ΔE.
    pub mean_delta_e: f64,
    /// Mean predicted transfer share ΔT.
    pub mean_delta_t: f64,
    /// Mean |ΔT − ΔE| (the paper's accuracy number).
    pub mean_delta_gap: f64,
    /// Mean kernel/total ratio — the share of reality SWGPU captures.
    pub swgpu_capture: f64,
}

/// Computes the summary for one sweep.
pub fn summarize(rows: &[SweepRow]) -> WorkloadSummary {
    let n = rows.len().max(1) as f64;
    WorkloadSummary {
        mean_delta_e: rows.iter().map(|r| r.delta_e).sum::<f64>() / n,
        mean_delta_t: rows.iter().map(|r| r.delta_t).sum::<f64>() / n,
        mean_delta_gap: mean_delta_gap(rows),
        swgpu_capture: rows
            .iter()
            .map(|r| if r.total_ms > 0.0 { r.kernel_ms / r.total_ms } else { 0.0 })
            .sum::<f64>()
            / n,
    }
}

/// Paper-quoted reference values for the three workloads, for the
/// side-by-side EXPERIMENTS.md table.
pub struct PaperReference {
    /// Workload name.
    pub name: &'static str,
    /// Paper's average transfer share of total time.
    pub transfer_share: Option<f64>,
    /// Paper's average |ΔT − ΔE|.
    pub delta_gap: f64,
    /// Paper's SWGPU capture fraction.
    pub swgpu_capture: f64,
}

/// The three reference rows from §IV-D.
pub fn paper_reference() -> [PaperReference; 3] {
    [
        PaperReference {
            name: "vecadd",
            transfer_share: Some(0.84),
            delta_gap: 0.015,
            swgpu_capture: 0.16,
        },
        PaperReference {
            name: "reduce",
            transfer_share: Some(0.35),
            delta_gap: 0.0549,
            swgpu_capture: 0.58,
        },
        PaperReference {
            name: "matmul",
            transfer_share: None, // "little difference"
            delta_gap: 0.0076,
            swgpu_capture: 0.89,
        },
    ]
}

/// Renders the paper-vs-measured summary as a markdown table.
pub fn render(vecadd: &[SweepRow], reduce: &[SweepRow], matmul: &[SweepRow]) -> String {
    let sweeps = [vecadd, reduce, matmul];
    let refs = paper_reference();
    let pct = |v: f64| format!("{:.1}%", 100.0 * v);
    let rows: Vec<Vec<String>> = refs
        .iter()
        .zip(sweeps)
        .map(|(r, rows)| {
            let s = summarize(rows);
            vec![
                r.name.to_string(),
                r.transfer_share.map(pct).unwrap_or_else(|| "small".into()),
                pct(s.mean_delta_e),
                pct(r.delta_gap),
                pct(s.mean_delta_gap),
                pct(r.swgpu_capture),
                pct(s.swgpu_capture),
            ]
        })
        .collect();
    markdown_table(
        &[
            "workload",
            "transfer share (paper)",
            "transfer share (measured)",
            "|ΔT−ΔE| (paper)",
            "|ΔT−ΔE| (measured)",
            "SWGPU capture (paper)",
            "SWGPU capture (measured)",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(delta_e: f64, delta_t: f64, kernel: f64, total: f64) -> SweepRow {
        SweepRow {
            n: 1,
            atgpu_cost: 1.0,
            swgpu_cost: 0.5,
            total_ms: total,
            kernel_ms: kernel,
            delta_e,
            delta_t,
        }
    }

    #[test]
    fn summarize_averages() {
        let rows = vec![row(0.8, 0.82, 0.1, 1.0), row(0.9, 0.86, 0.3, 1.0)];
        let s = summarize(&rows);
        assert!((s.mean_delta_e - 0.85).abs() < 1e-12);
        assert!((s.mean_delta_gap - 0.03).abs() < 1e-12);
        assert!((s.swgpu_capture - 0.2).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_workloads() {
        let rows = vec![row(0.8, 0.8, 0.1, 1.0)];
        let md = render(&rows, &rows, &rows);
        for name in ["vecadd", "reduce", "matmul"] {
            assert!(md.contains(name));
        }
        assert!(md.contains("small")); // matmul's paper transfer share
    }

    #[test]
    fn paper_reference_matches_quoted_numbers() {
        let r = paper_reference();
        assert_eq!(r[0].transfer_share, Some(0.84));
        assert_eq!(r[1].delta_gap, 0.0549);
        assert_eq!(r[2].swgpu_capture, 0.89);
    }
}
