//! Table I — comparison of GPU abstract models.

use atgpu_model::comparison::{classical_models, comparison_table, render_ascii, render_markdown};

/// The table as markdown (the paper's Table I).
pub fn markdown() -> String {
    render_markdown(&comparison_table())
}

/// The table as fixed-width ASCII for terminals.
pub fn ascii() -> String {
    render_ascii(&comparison_table())
}

/// Extended table including the classical models from the related-work
/// discussion.
pub fn extended_markdown() -> String {
    let mut models = classical_models();
    models.extend(comparison_table());
    render_markdown(&models)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_checkmarks() {
        let md = markdown();
        // ATGPU column exists and transfer row only ticks ATGPU.
        let transfer_row =
            md.lines().find(|l| l.contains("Host/Device Data Transfer")).expect("transfer row");
        assert_eq!(transfer_row.matches('✓').count(), 1);
        let time_row = md.lines().find(|l| l.contains("Time Complexity")).unwrap();
        assert_eq!(time_row.matches('✓').count(), 3);
    }

    #[test]
    fn extended_includes_classical() {
        let md = extended_markdown();
        for name in ["PRAM", "BSP", "BSPRAM", "PEM"] {
            assert!(md.contains(name));
        }
    }

    #[test]
    fn ascii_renders() {
        assert!(ascii().contains("ATGPU"));
    }
}
