//! Common sweep machinery: analyse + cost + simulate one workload
//! instance, producing one row of a figure's data.

use atgpu_algos::{AlgosError, Workload};
use atgpu_analyze::analyze_program;
use atgpu_model::cost::{evaluate, CostModel};
use atgpu_model::{AtgpuMachine, CostParams, GpuSpec};
use atgpu_sim::xfer::XferNoise;
use atgpu_sim::{run_program, SimConfig};

/// Experiment scale, selecting sweep ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes for CI and unit tests (seconds).
    Quick,
    /// The paper's ranges, with the largest matrix/reduction points
    /// trimmed to keep a full run around a minute.
    Paper,
    /// The complete paper ranges (vecadd to 10⁷, reduction to 2²⁶,
    /// matmul to 1024).
    Full,
}

/// Configuration for an experiment run.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// The abstract machine (analysis side).
    pub machine: AtgpuMachine,
    /// The simulated device (observation side).
    pub spec: GpuSpec,
    /// Cost parameters for the predicted curves (usually
    /// [`GpuSpec::derived_cost_params`] or a fitted calibration).
    pub params: CostParams,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Sweep scale.
    pub scale: Scale,
    /// Verify simulated outputs against host references (slower; sweeps
    /// default to false, tests to true).
    pub verify: bool,
}

impl ExpConfig {
    /// The standard configuration: GTX 650-like machine + device, derived
    /// cost parameters, deterministic 2 % transfer jitter.
    pub fn standard(scale: Scale) -> Self {
        let spec = GpuSpec::gtx650_like();
        Self {
            machine: AtgpuMachine::gtx650_like(),
            spec,
            params: spec.derived_cost_params(),
            sim: SimConfig {
                noise: Some(XferNoise { rel: 0.02 }),
                seed: 0x5EED,
                ..SimConfig::default()
            },
            scale,
            verify: false,
        }
    }
}

/// One row of a sweep: predictions and observations at problem size `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// Problem size.
    pub n: u64,
    /// ATGPU GPU-cost (Expression 2), in milliseconds with calibrated
    /// parameters.
    pub atgpu_cost: f64,
    /// SWGPU baseline cost (no transfer terms).
    pub swgpu_cost: f64,
    /// Simulated total running time (ms) — the paper's "Total".
    pub total_ms: f64,
    /// Simulated kernel-only time (ms) — the paper's "Kernel".
    pub kernel_ms: f64,
    /// Observed transfer proportion ΔE.
    pub delta_e: f64,
    /// Predicted transfer proportion ΔT.
    pub delta_t: f64,
}

/// Analyses, costs and simulates one workload instance.
pub fn run_row(w: &dyn Workload, cfg: &ExpConfig) -> Result<SweepRow, AlgosError> {
    let built = w.build(&cfg.machine)?;
    let analysis = analyze_program(&built.program, &cfg.machine)
        .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
    let metrics = analysis.metrics();
    let atgpu = evaluate(CostModel::GpuCost, &cfg.params, &cfg.machine, &cfg.spec, &metrics)
        .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;
    let swgpu = evaluate(CostModel::Swgpu, &cfg.params, &cfg.machine, &cfg.spec, &metrics)
        .map_err(|e| AlgosError::InvalidSize { reason: e.to_string() })?;

    let report = if cfg.verify {
        atgpu_algos::verify_on_sim(w, &cfg.machine, &cfg.spec, &cfg.sim)?
    } else {
        run_program(&built.program, built.inputs, &cfg.machine, &cfg.spec, &cfg.sim)?
    };

    Ok(SweepRow {
        n: w.size(),
        atgpu_cost: atgpu.total(),
        swgpu_cost: swgpu.total(),
        total_ms: report.total_ms(),
        kernel_ms: report.kernel_ms(),
        delta_e: report.transfer_proportion(),
        delta_t: atgpu.transfer_proportion(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atgpu_algos::vecadd::VecAdd;

    #[test]
    fn row_fields_are_consistent() {
        let cfg = ExpConfig { verify: true, ..ExpConfig::standard(Scale::Quick) };
        let row = run_row(&VecAdd::new(10_000, 1), &cfg).unwrap();
        assert_eq!(row.n, 10_000);
        assert!(row.atgpu_cost > row.swgpu_cost, "transfer terms must add cost");
        assert!(row.total_ms > row.kernel_ms);
        assert!((0.0..=1.0).contains(&row.delta_e));
        assert!((0.0..=1.0).contains(&row.delta_t));
    }

    #[test]
    fn predicted_and_observed_deltas_close_for_vecadd() {
        // Figure 6a: the paper reports ΔT within ~1.5 % of ΔE on average.
        let cfg = ExpConfig::standard(Scale::Quick);
        let row = run_row(&VecAdd::new(200_000, 2), &cfg).unwrap();
        assert!(
            (row.delta_e - row.delta_t).abs() < 0.1,
            "ΔE {} vs ΔT {}",
            row.delta_e,
            row.delta_t
        );
    }
}
