//! File output: CSV, gnuplot data, markdown tables, JSON — all
//! hand-rolled (no serialisation dependencies).

use crate::runner::SweepRow;
use crate::series::Figure;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Renders a figure as CSV: `x,<series1>,<series2>,…` (series are joined
/// on x; missing values are empty cells).
pub fn figure_csv(fig: &Figure) -> String {
    let mut xs: Vec<f64> = fig.series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup();
    let mut out = String::new();
    let _ = write!(out, "{}", fig.xlabel);
    for s in &fig.series {
        let _ = write!(out, ",{}", s.label);
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x}");
        for s in &fig.series {
            match s.points.iter().find(|p| p.0 == x) {
                Some(&(_, y)) => {
                    let _ = write!(out, ",{y}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the raw sweep rows as CSV (one file per workload keeps every
/// quantity the figures derive from).
pub fn rows_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from("n,atgpu_cost,swgpu_cost,total_ms,kernel_ms,delta_e,delta_t\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.n, r.atgpu_cost, r.swgpu_cost, r.total_ms, r.kernel_ms, r.delta_e, r.delta_t
        );
    }
    out
}

/// Renders a figure as a gnuplot-ready `.dat` block (x then one column
/// per series, aligned rows only).
pub fn figure_dat(fig: &Figure) -> String {
    let mut out = format!("# {} — {}\n# x", fig.id, fig.title);
    for s in &fig.series {
        let _ = write!(out, " {}", s.label.replace(' ', "_"));
    }
    out.push('\n');
    if let Some(first) = fig.series.first() {
        for (i, &(x, _)) in first.points.iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &fig.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " {y}");
                    }
                    None => out.push_str(" nan"),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Renders a figure as minimal JSON.
pub fn figure_json(fig: &Figure) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = format!(
        "{{\"id\":\"{}\",\"title\":\"{}\",\"xlabel\":\"{}\",\"ylabel\":\"{}\",\"series\":[",
        esc(&fig.id),
        esc(&fig.title),
        esc(&fig.xlabel),
        esc(&fig.ylabel)
    );
    for (i, s) in fig.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"label\":\"{}\",\"points\":[", esc(&s.label));
        for (j, &(x, y)) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{x},{y}]");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// A simple markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("|");
    for h in headers {
        let _ = write!(out, " {h} |");
    }
    out.push_str("\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            let _ = write!(out, " {cell} |");
        }
        out.push('\n');
    }
    out
}

/// Renders a ready-to-run gnuplot script plotting the figure from its
/// `.dat` file (`gnuplot fig3a.gp` → `fig3a.png`).
pub fn figure_gnuplot(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "set terminal pngcairo size 900,600");
    let _ = writeln!(out, "set output '{}.png'", fig.id);
    let _ = writeln!(out, "set title \"{}\"", fig.title.replace('"', "'"));
    let _ = writeln!(out, "set xlabel \"{}\"", fig.xlabel);
    let _ = writeln!(out, "set ylabel \"{}\"", fig.ylabel);
    let _ = writeln!(out, "set key top left");
    let mut parts = Vec::new();
    for (i, s) in fig.series.iter().enumerate() {
        parts.push(format!(
            "'{}.dat' using 1:{} with linespoints title \"{}\"",
            fig.id,
            i + 2,
            s.label.replace('"', "'")
        ));
    }
    let _ = writeln!(out, "plot {}", parts.join(", \\\n     "));
    out
}

/// Writes a figure's CSV, `.dat`, JSON and gnuplot files into `dir`.
pub fn write_figure(fig: &Figure, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.csv", fig.id)), figure_csv(fig))?;
    fs::write(dir.join(format!("{}.dat", fig.id)), figure_dat(fig))?;
    fs::write(dir.join(format!("{}.json", fig.id)), figure_json(fig))?;
    fs::write(dir.join(format!("{}.gp", fig.id)), figure_gnuplot(fig))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn fig() -> Figure {
        Figure::new(
            "fig3a",
            "predicted",
            "n",
            "cost",
            vec![
                Series::new("ATGPU", vec![(1.0, 10.0), (2.0, 20.0)]),
                Series::new("SWGPU", vec![(1.0, 5.0), (2.0, 9.0)]),
            ],
        )
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = figure_csv(&fig());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("n,ATGPU,SWGPU"));
        assert_eq!(lines.next(), Some("1,10,5"));
        assert_eq!(lines.next(), Some("2,20,9"));
    }

    #[test]
    fn csv_handles_missing_points() {
        let f = Figure::new(
            "f",
            "t",
            "x",
            "y",
            vec![Series::new("A", vec![(1.0, 1.0)]), Series::new("B", vec![(2.0, 2.0)])],
        );
        let csv = figure_csv(&f);
        assert!(csv.contains("1,1,\n"));
        assert!(csv.contains("2,,2\n"));
    }

    #[test]
    fn dat_format() {
        let dat = figure_dat(&fig());
        assert!(dat.starts_with("# fig3a"));
        assert!(dat.contains("1 10 5"));
    }

    #[test]
    fn json_is_balanced() {
        let j = figure_json(&fig());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"ATGPU\""));
    }

    #[test]
    fn rows_csv_roundtrip_fields() {
        let rows = vec![crate::runner::SweepRow {
            n: 100,
            atgpu_cost: 1.5,
            swgpu_cost: 1.0,
            total_ms: 2.0,
            kernel_ms: 0.5,
            delta_e: 0.75,
            delta_t: 0.7,
        }];
        let csv = rows_csv(&rows);
        assert!(csv.contains("100,1.5,1,2,0.5,0.75,0.7"));
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn write_figure_creates_files() {
        let dir = std::env::temp_dir().join("atgpu_exp_test_out");
        let _ = std::fs::remove_dir_all(&dir);
        write_figure(&fig(), &dir).unwrap();
        assert!(dir.join("fig3a.csv").exists());
        assert!(dir.join("fig3a.dat").exists());
        assert!(dir.join("fig3a.json").exists());
        assert!(dir.join("fig3a.gp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gnuplot_script_references_every_series() {
        let gp = figure_gnuplot(&fig());
        assert!(gp.contains("set output 'fig3a.png'"));
        assert!(gp.contains("using 1:2"));
        assert!(gp.contains("using 1:3"));
        assert!(gp.contains("\"ATGPU\"") && gp.contains("\"SWGPU\""));
    }
}
