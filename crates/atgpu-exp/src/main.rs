//! `atgpu-exp` — regenerate the paper's tables and figures.
//!
//! ```text
//! atgpu-exp [COMMANDS] [OPTIONS]
//!
//! COMMANDS (any combination; default: all)
//!   table1 fig3 fig4 fig5 fig6 summary e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 all
//!   pseudocode NAME   print a workload's program in the paper's notation
//!                     (vecadd, reduce, matmul, saxpy, dot, scan, stencil,
//!                      transpose, histogram, bitonic, gemv, spmv)
//!   check-trace FILE...
//!                     validate Chrome trace_event JSON files written by
//!                     --trace (round-trip parse, monotone non-overlapping
//!                     spans); nonzero exit on the first invalid file
//!
//! OPTIONS
//!   --verify       statically verify the whole workload roster (bounds,
//!                  cross-block write races, host-dataflow lints) and print
//!                  a verdict table; nonzero exit if any program is proven
//!                  unsound
//!   --quick        small sweep sizes (seconds)
//!   --full         complete paper ranges (minutes)
//!   --out DIR      write CSV/DAT/JSON files (default: ./experiments)
//!   --no-noise     disable transfer jitter
//!   --parallel N   simulate with N worker threads
//!   --trace PATH   write Chrome trace_event JSON from the traced
//!                  E10/E11/E13 runs; PATH gets the experiment tag inserted
//!                  before its extension (out.json -> out.e10.json, …)
//! ```

#![forbid(unsafe_code)]

use atgpu_exp::figures::{ext, fig3, fig4, fig5, fig6, summary, table1};
use atgpu_exp::{chart, report};
use atgpu_exp::{ExpConfig, Scale, SweepRow};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    commands: BTreeSet<String>,
    scale: Scale,
    out: PathBuf,
    noise: bool,
    threads: Option<usize>,
    pseudocode: Option<String>,
    trace: Option<PathBuf>,
    check_trace: Option<Vec<String>>,
    verify: bool,
}

/// `out.json` → `out.e10.json`: the per-experiment trace file name.
fn trace_path(base: &std::path::Path, tag: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("json");
    base.with_file_name(format!("{stem}.{tag}.{ext}"))
}

/// Parses trace files back and verifies them (structure, required
/// fields, per-lane monotone non-overlap).  Fails on the first invalid
/// file.
fn check_traces(files: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if files.is_empty() {
        return Err("check-trace needs at least one trace file".into());
    }
    for f in files {
        let s = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        let c = atgpu_sim::validate_chrome_json(&s).map_err(|e| format!("{f}: invalid: {e}"))?;
        println!(
            "{f}: ok — {} spans on {} device(s), {} counter samples",
            c.spans, c.devices, c.counters
        );
    }
    Ok(())
}

/// Statically verifies every workload in the roster and prints a
/// verdict table: race verdict, proven out-of-bounds count, undecided
/// sites and host-dataflow lints per program.  Programs with a proven
/// defect are listed with their `kernel@instr#N` witness and the run
/// exits nonzero.
fn verify_workloads() -> Result<(), Box<dyn std::error::Error>> {
    use atgpu_algos::Workload;
    use atgpu_verify::RaceVerdict;
    let machine = atgpu_model::AtgpuMachine::gtx650_like();
    let roster: Vec<(&str, Box<dyn Workload>)> = vec![
        ("vecadd", Box::new(atgpu_algos::vecadd::VecAdd::new(1024, 0))),
        ("saxpy", Box::new(atgpu_algos::saxpy::Saxpy::new(1024, 3, 0))),
        ("reduce", Box::new(atgpu_algos::reduce::Reduce::new(2048, 0))),
        ("dot", Box::new(atgpu_algos::dot::Dot::new(1024, 0))),
        ("scan", Box::new(atgpu_algos::scan::Scan::new(1024, 0))),
        ("stencil", Box::new(atgpu_algos::stencil::Stencil::new(1024, 0))),
        ("matmul", Box::new(atgpu_algos::matmul::MatMul::new(64, 0))),
        (
            "transpose",
            Box::new(atgpu_algos::transpose::Transpose::new(
                64,
                0,
                atgpu_algos::transpose::TransposeVariant::Tiled,
            )),
        ),
        ("gemv", Box::new(atgpu_algos::gemv::Gemv::new(64, 0))),
        ("spmv", Box::new(atgpu_algos::spmv::SpmvEll::new(128, 3, 0))),
        ("histogram", Box::new(atgpu_algos::histogram::Histogram::new(1024, 32, 0))),
        ("bitonic", Box::new(atgpu_algos::bitonic::BitonicSort::new(128, 0))),
    ];
    println!("== static verification — {} workloads ==\n", roster.len());
    println!(
        "{:<12} {:>8}  {:<10} {:>4} {:>8} {:>6}  verdict",
        "workload", "launches", "race", "oob", "unknown", "lints"
    );
    let mut defects = Vec::new();
    for (name, w) in roster {
        let built = w.build(&machine)?;
        let report = atgpu_verify::verify_program(&built.program, machine.b);
        let race = if report.launches.iter().any(|l| matches!(l.race, RaceVerdict::Racy(_))) {
            "RACY"
        } else if report.all_race_free() {
            "race-free"
        } else {
            "unknown"
        };
        let oob: usize = report.launches.iter().map(|l| l.oob.len()).sum();
        let unknown: usize = report.launches.iter().map(|l| l.bounds_unknown).sum();
        let verdict = if report.is_sound() { "sound" } else { "UNSOUND" };
        println!(
            "{name:<12} {:>8}  {race:<10} {oob:>4} {unknown:>8} {:>6}  {verdict}",
            report.launches.len(),
            report.lints.len(),
        );
        for lint in &report.lints {
            println!("             lint: {lint}");
        }
        if let Some(why) = report.first_unsoundness() {
            defects.push(format!("{name}: {why}"));
        }
    }
    if !defects.is_empty() {
        for d in &defects {
            eprintln!("UNSOUND — {d}");
        }
        return Err(format!("{} workload(s) failed static verification", defects.len()).into());
    }
    println!("\nall workloads verified: no proven races or out-of-bounds accesses");
    Ok(())
}

/// Prints a workload's program rendered in the paper's pseudocode.
fn print_pseudocode(name: &str) -> Result<(), Box<dyn std::error::Error>> {
    use atgpu_algos::Workload;
    let machine = atgpu_model::AtgpuMachine::gtx650_like();
    let w: Box<dyn Workload> = match name {
        "vecadd" => Box::new(atgpu_algos::vecadd::VecAdd::new(1024, 0)),
        "saxpy" => Box::new(atgpu_algos::saxpy::Saxpy::new(1024, 3, 0)),
        "reduce" => Box::new(atgpu_algos::reduce::Reduce::new(2048, 0)),
        "dot" => Box::new(atgpu_algos::dot::Dot::new(1024, 0)),
        "scan" => Box::new(atgpu_algos::scan::Scan::new(1024, 0)),
        "stencil" => Box::new(atgpu_algos::stencil::Stencil::new(1024, 0)),
        "matmul" => Box::new(atgpu_algos::matmul::MatMul::new(64, 0)),
        "transpose" => Box::new(atgpu_algos::transpose::Transpose::new(
            64,
            0,
            atgpu_algos::transpose::TransposeVariant::Tiled,
        )),
        "gemv" => Box::new(atgpu_algos::gemv::Gemv::new(64, 0)),
        "spmv" => Box::new(atgpu_algos::spmv::SpmvEll::new(128, 3, 0)),
        "histogram" => Box::new(atgpu_algos::histogram::Histogram::new(1024, 32, 0)),
        "bitonic" => Box::new(atgpu_algos::bitonic::BitonicSort::new(128, 0)),
        other => return Err(format!("unknown workload `{other}`").into()),
    };
    let built = w.build(&machine)?;
    println!("{}", atgpu_ir::pretty::render_program(&built.program));
    Ok(())
}

fn parse_args() -> Result<Args, String> {
    let mut commands = BTreeSet::new();
    let mut scale = Scale::Paper;
    let mut out = PathBuf::from("experiments");
    let mut noise = true;
    let mut threads = None;
    let mut pseudocode = None;
    let mut trace = None;
    let mut check_trace = None;
    let mut verify = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--verify" => verify = true,
            "--quick" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--no-noise" => noise = false,
            "--out" => {
                out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--trace" => {
                trace = Some(PathBuf::from(it.next().ok_or("--trace needs a file path")?));
            }
            "check-trace" => {
                // Everything after the subcommand is a trace file.
                check_trace = Some(it.by_ref().collect::<Vec<String>>());
            }
            "pseudocode" => {
                pseudocode = Some(it.next().ok_or("pseudocode needs a workload name")?);
            }
            "--parallel" => {
                threads = Some(
                    it.next()
                        .ok_or("--parallel needs a thread count")?
                        .parse::<usize>()
                        .map_err(|e| format!("bad thread count: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "atgpu-exp — regenerate the ATGPU paper's tables and figures\n\
                     commands: table1 fig3 fig4 fig5 fig6 summary e1 e2 e3 e4 e5 e6 e7 e8 e9 e10 e11 e12 e13 all\n\
                     \x20          check-trace FILE...\n\
                     options:  --verify --quick --full --out DIR --no-noise --parallel N --trace PATH"
                );
                std::process::exit(0);
            }
            cmd @ ("table1" | "fig3" | "fig4" | "fig5" | "fig6" | "summary" | "e1" | "e2"
            | "e3" | "e4" | "e5" | "e6" | "e7" | "e8" | "e9" | "e10" | "e11" | "e12"
            | "e13" | "all") => {
                commands.insert(cmd.to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if commands.is_empty() && pseudocode.is_none() && check_trace.is_none() && !verify {
        commands.insert("all".to_string());
    }
    Ok(Args { commands, scale, out, noise, threads, pseudocode, trace, check_trace, verify })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn want(args: &Args, cmd: &str) -> bool {
    args.commands.contains("all") || args.commands.contains(cmd)
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if args.verify {
        verify_workloads()?;
        if args.commands.is_empty() && args.pseudocode.is_none() && args.check_trace.is_none() {
            return Ok(());
        }
    }
    if let Some(files) = &args.check_trace {
        check_traces(files)?;
        if args.commands.is_empty() && args.pseudocode.is_none() {
            return Ok(());
        }
    }
    if let Some(name) = &args.pseudocode {
        print_pseudocode(name)?;
        if args.commands.is_empty() {
            return Ok(());
        }
    }
    let mut cfg = ExpConfig::standard(args.scale);
    if !args.noise {
        cfg.sim.noise = None;
    }
    if let Some(t) = args.threads {
        cfg.sim.mode = atgpu_sim::ExecMode::Parallel { threads: t };
    }
    std::fs::create_dir_all(&args.out)?;

    println!("ATGPU experiment harness — machine {}, scale {:?}", cfg.machine, args.scale);
    println!(
        "device: k'={}, H={}, clock={:.0} cycles/ms; params: γ={:.0} λ={} σ={}ms α={}ms β={:.2e}ms/word\n",
        cfg.spec.k_prime,
        cfg.spec.h_limit,
        cfg.spec.clock_cycles_per_ms,
        cfg.params.gamma,
        cfg.params.lambda,
        cfg.params.sigma,
        cfg.params.alpha,
        cfg.params.beta,
    );

    if want(args, "table1") {
        println!("== Table I — comparison of GPU abstract models ==\n");
        println!("{}", table1::ascii());
        std::fs::write(args.out.join("table1.md"), table1::markdown())?;
        std::fs::write(args.out.join("table1_extended.md"), table1::extended_markdown())?;
    }

    let need_vecadd = ["fig3", "fig6", "summary"].iter().any(|c| want(args, c));
    let need_reduce = ["fig4", "fig6", "summary"].iter().any(|c| want(args, c));
    let need_matmul = ["fig5", "fig6", "summary"].iter().any(|c| want(args, c));

    let vecadd_rows: Vec<SweepRow> = if need_vecadd {
        eprintln!("[sweep] vector addition …");
        fig3::rows(&cfg)?
    } else {
        Vec::new()
    };
    let reduce_rows: Vec<SweepRow> = if need_reduce {
        eprintln!("[sweep] reduction …");
        fig4::rows(&cfg)?
    } else {
        Vec::new()
    };
    let matmul_rows: Vec<SweepRow> = if need_matmul {
        eprintln!("[sweep] matrix multiplication …");
        fig5::rows(&cfg)?
    } else {
        Vec::new()
    };

    if want(args, "fig3") {
        emit_figures(&fig3::figures(&vecadd_rows), args)?;
        std::fs::write(args.out.join("fig3_rows.csv"), report::rows_csv(&vecadd_rows))?;
    }
    if want(args, "fig4") {
        emit_figures(&fig4::figures(&reduce_rows), args)?;
        std::fs::write(args.out.join("fig4_rows.csv"), report::rows_csv(&reduce_rows))?;
    }
    if want(args, "fig5") {
        emit_figures(&fig5::figures(&matmul_rows), args)?;
        std::fs::write(args.out.join("fig5_rows.csv"), report::rows_csv(&matmul_rows))?;
    }
    if want(args, "fig6") {
        emit_figures(&fig6::figures(&vecadd_rows, &reduce_rows, &matmul_rows), args)?;
    }
    if want(args, "summary") {
        println!("== §IV-D summary: paper vs this reproduction ==\n");
        let md = summary::render(&vecadd_rows, &reduce_rows, &matmul_rows);
        println!("{md}");
        std::fs::write(args.out.join("summary.md"), md)?;
    }

    // Extension experiments.
    let mut ext_md = String::new();
    if want(args, "e1") {
        eprintln!("[ext] E1 out-of-core …");
        ext_md.push_str(&ext::e1_out_of_core(&cfg)?);
        ext_md.push('\n');
    }
    if want(args, "e2") {
        eprintln!("[ext] E2 other GPUs …");
        ext_md.push_str(&ext::e2_other_gpus(&cfg)?);
        ext_md.push('\n');
    }
    if want(args, "e3") {
        eprintln!("[ext] E3 bank conflicts …");
        ext_md.push_str(&ext::e3_bank_conflicts(&cfg)?);
        ext_md.push('\n');
    }
    if want(args, "e4") {
        eprintln!("[ext] E4 occupancy …");
        let (md, fig) = ext::e4_occupancy(&cfg)?;
        ext_md.push_str(&md);
        ext_md.push('\n');
        emit_figures(&[fig], args)?;
    }
    if want(args, "e5") {
        eprintln!("[ext] E5 other problems …");
        let (md, _) = ext::e5_other_problems(&cfg)?;
        ext_md.push_str(&md);
        ext_md.push('\n');
    }
    if want(args, "e6") {
        eprintln!("[ext] E6 calibration …");
        ext_md.push_str(&ext::e6_calibration(&cfg)?);
        ext_md.push('\n');
    }
    if want(args, "e7") {
        eprintln!("[ext] E7 multi-device sharding …");
        ext_md.push_str(&ext::e7_multi_device(&cfg)?);
        ext_md.push('\n');
    }
    if want(args, "e8") {
        eprintln!("[ext] E8 streams + threaded clusters …");
        ext_md.push_str(&ext::e8_streams(&cfg)?);
        ext_md.push('\n');
    }
    if want(args, "e9") {
        eprintln!("[ext] E9 cross-launch kernel cache …");
        ext_md.push_str(&ext::e9_kernel_cache(&cfg)?);
        ext_md.push('\n');
    }
    if want(args, "e10") {
        eprintln!("[ext] E10 cost-driven pipeline planner …");
        let tp = args.trace.as_ref().map(|p| trace_path(p, "e10"));
        ext_md.push_str(&ext::e10_pipeline_planner(&cfg, tp.as_deref())?);
        ext_md.push('\n');
    }
    if want(args, "e11") {
        eprintln!("[ext] E11 fault injection + degraded-mode replanning …");
        let tp = args.trace.as_ref().map(|p| trace_path(p, "e11"));
        ext_md.push_str(&ext::e11_fault_tolerance(&cfg, tp.as_deref())?);
        ext_md.push('\n');
    }
    if want(args, "e12") {
        eprintln!("[ext] E12 multi-tenant pricing service …");
        ext_md.push_str(&ext::e12_pricing_service(&cfg)?);
        ext_md.push('\n');
    }
    if want(args, "e13") {
        eprintln!("[ext] E13 peer-aware shard planning …");
        let tp = args.trace.as_ref().map(|p| trace_path(p, "e13"));
        ext_md.push_str(&ext::e13_peer_aware_planner(&cfg, tp.as_deref())?);
        ext_md.push('\n');
    }
    if !ext_md.is_empty() {
        println!("{ext_md}");
        std::fs::write(args.out.join("extensions.md"), &ext_md)?;
    }

    println!("\nartefacts written to {}", args.out.display());
    Ok(())
}

fn emit_figures(figs: &[atgpu_exp::Figure], args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    for f in figs {
        println!("{}", chart::render(f, 64, 16));
        report::write_figure(f, &args.out)?;
    }
    Ok(())
}
