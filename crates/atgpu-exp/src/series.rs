//! Data series and figures.

/// One plotted series: a label and `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "ATGPU", "Total").
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { label: label.into(), points }
    }

    /// Min–max normalises the y values onto `[0, 1]` — the paper's
    /// "normalised all data on a 0→1 scale" for its (c) panels.
    /// A constant series maps to all zeros.
    pub fn normalized(&self) -> Series {
        let ys: Vec<f64> = self.points.iter().map(|p| p.1).collect();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = hi - lo;
        Series {
            label: self.label.clone(),
            points: self
                .points
                .iter()
                .map(|&(x, y)| (x, if span > 0.0 { (y - lo) / span } else { 0.0 }))
                .collect(),
        }
    }

    /// The y value at the largest x.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }

    /// Mean of the y values.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }
}

/// A figure: several series over a common x axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier matching the paper ("fig3a", "fig6b", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates a figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
        series: Vec<Series>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series,
        }
    }

    /// The figure with every series min–max normalised (a "(c)" panel).
    pub fn normalized(&self, id: impl Into<String>, title: impl Into<String>) -> Figure {
        Figure {
            id: id.into(),
            title: title.into(),
            xlabel: self.xlabel.clone(),
            ylabel: "normalised".into(),
            series: self.series.iter().map(Series::normalized).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_maps_to_unit_interval() {
        let s = Series::new("t", vec![(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]);
        let n = s.normalized();
        assert_eq!(n.points[0].1, 0.0);
        assert_eq!(n.points[1].1, 0.5);
        assert_eq!(n.points[2].1, 1.0);
        // x untouched.
        assert_eq!(n.points[2].0, 3.0);
    }

    #[test]
    fn normalize_constant_series() {
        let s = Series::new("t", vec![(1.0, 5.0), (2.0, 5.0)]);
        let n = s.normalized();
        assert!(n.points.iter().all(|p| p.1 == 0.0));
    }

    #[test]
    fn mean_and_last() {
        let s = Series::new("t", vec![(1.0, 2.0), (2.0, 4.0)]);
        assert_eq!(s.mean_y(), 3.0);
        assert_eq!(s.last_y(), Some(4.0));
        assert_eq!(Series::new("e", vec![]).mean_y(), 0.0);
    }

    #[test]
    fn figure_normalized_keeps_labels() {
        let f = Figure::new(
            "fig3b",
            "observed",
            "n",
            "ms",
            vec![Series::new("Total", vec![(1.0, 1.0), (2.0, 3.0)])],
        );
        let n = f.normalized("fig3c", "normalised");
        assert_eq!(n.id, "fig3c");
        assert_eq!(n.series[0].label, "Total");
    }
}
