//! Figure and table runners, one per paper artefact.

pub mod ext;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod summary;
pub mod table1;

use crate::runner::{Scale, SweepRow};
use crate::series::{Figure, Series};

/// Builds the paper's standard panel triple from sweep rows:
/// `(a)` predicted (ATGPU vs SWGPU cost), `(b)` observed (Total vs
/// Kernel ms), and optionally `(c)` everything normalised together.
pub fn standard_panels(
    rows: &[SweepRow],
    fig_no: u8,
    workload: &str,
    with_normalized: bool,
) -> Vec<Figure> {
    let xs = |f: fn(&SweepRow) -> f64| -> Vec<(f64, f64)> {
        rows.iter().map(|r| (r.n as f64, f(r))).collect()
    };
    let atgpu = Series::new("ATGPU", xs(|r| r.atgpu_cost));
    let swgpu = Series::new("SWGPU", xs(|r| r.swgpu_cost));
    let total = Series::new("Total", xs(|r| r.total_ms));
    let kernel = Series::new("Kernel", xs(|r| r.kernel_ms));

    let a = Figure::new(
        format!("fig{fig_no}a"),
        format!("{workload}: predicted results"),
        "n",
        "cost (ms)",
        vec![atgpu.clone(), swgpu.clone()],
    );
    let b = Figure::new(
        format!("fig{fig_no}b"),
        format!("{workload}: observed results"),
        "n",
        "time (ms)",
        vec![total.clone(), kernel.clone()],
    );
    let mut out = vec![a, b];
    if with_normalized {
        let c = Figure::new(
            format!("fig{fig_no}c"),
            format!("{workload}: normalised results"),
            "n",
            "cost / time (0→1)",
            vec![atgpu.normalized(), swgpu.normalized(), total.normalized(), kernel.normalized()],
        );
        out.push(c);
    }
    out
}

/// Sweep sizes for the vector-addition figure.
pub fn vecadd_sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => (1..=5).map(|i| i * 20_000).collect(),
        Scale::Paper | Scale::Full => (1..=10).map(|i| i * 1_000_000).collect(),
    }
}

/// Sweep sizes for the reduction figure (paper: `n = 2^16 … 2^26`).
pub fn reduce_sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => (10..=14).map(|e| 1u64 << e).collect(),
        Scale::Paper => (16..=24).map(|e| 1u64 << e).collect(),
        Scale::Full => (16..=26).map(|e| 1u64 << e).collect(),
    }
}

/// Sweep sizes for the matrix-multiplication figure
/// (paper: `n = 32, 64, …, 1024`).
pub fn matmul_sizes(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![32, 64, 96, 128],
        Scale::Paper => vec![64, 128, 192, 256, 320, 384, 448, 512],
        Scale::Full => vec![64, 128, 256, 384, 512, 640, 768, 896, 1024],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SweepRow> {
        (1..=3)
            .map(|i| SweepRow {
                n: i * 100,
                atgpu_cost: i as f64 * 2.0,
                swgpu_cost: i as f64,
                total_ms: i as f64 * 3.0,
                kernel_ms: i as f64 * 0.5,
                delta_e: 0.8,
                delta_t: 0.79,
            })
            .collect()
    }

    #[test]
    fn panels_have_paper_series() {
        let figs = standard_panels(&rows(), 3, "vecadd", true);
        assert_eq!(figs.len(), 3);
        assert_eq!(figs[0].id, "fig3a");
        assert_eq!(figs[0].series.len(), 2);
        assert_eq!(figs[1].series[0].label, "Total");
        assert_eq!(figs[2].series.len(), 4);
        // Normalised panel peaks at 1.
        assert_eq!(figs[2].series[0].last_y(), Some(1.0));
    }

    #[test]
    fn fig5_has_no_normalized_panel() {
        let figs = standard_panels(&rows(), 5, "matmul", false);
        assert_eq!(figs.len(), 2);
    }

    #[test]
    fn sizes_match_paper_ranges() {
        assert_eq!(vecadd_sizes(Scale::Paper).len(), 10);
        assert_eq!(*vecadd_sizes(Scale::Paper).last().unwrap(), 10_000_000);
        assert_eq!(*reduce_sizes(Scale::Full).last().unwrap(), 1 << 26);
        assert_eq!(*matmul_sizes(Scale::Full).last().unwrap(), 1024);
        assert!(matmul_sizes(Scale::Quick).iter().all(|n| n % 32 == 0));
    }
}
