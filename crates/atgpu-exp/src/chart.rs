//! ASCII line charts for terminal output of the figures.

use crate::series::Figure;

/// Plot symbols assigned to series in order.
const SYMBOLS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

/// Renders a figure as an ASCII chart of the given plot-area size.
pub fn render(fig: &Figure, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let mut out = String::new();
    out.push_str(&format!("{} — {}\n", fig.id, fig.title));

    let all: Vec<(f64, f64)> = fig.series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if y_lo > 0.0 && y_lo / y_hi.max(1e-300) > 0.5 {
        // Keep some headroom for nearly-flat positive data.
        y_lo = 0.0;
    }
    let x_span = (x_hi - x_lo).max(f64::MIN_POSITIVE);
    let y_span = (y_hi - y_lo).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in fig.series.iter().enumerate() {
        let sym = SYMBOLS[si % SYMBOLS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_lo) / x_span) * (width as f64 - 1.0)).round() as usize;
            let cy = (((y - y_lo) / y_span) * (height as f64 - 1.0)).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            // First-drawn symbol wins on collisions.
            if grid[row][col] == ' ' {
                grid[row][col] = sym;
            }
        }
    }

    let y_label_hi = format_num(y_hi);
    let y_label_lo = format_num(y_lo);
    let margin = y_label_hi.len().max(y_label_lo.len());
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            y_label_hi.clone()
        } else if r == height - 1 {
            y_label_lo.clone()
        } else {
            String::new()
        };
        out.push_str(&format!("{label:>margin$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>margin$} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>margin$}  {:<w2$}{}\n",
        "",
        format_num(x_lo),
        format_num(x_hi),
        w2 = width.saturating_sub(format_num(x_hi).len()),
    ));
    out.push_str(&format!("{:>margin$}  x: {}   y: {}\n", "", fig.xlabel, fig.ylabel));
    let legend: Vec<String> = fig
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", SYMBOLS[i % SYMBOLS.len()], s.label))
        .collect();
    out.push_str(&format!("{:>margin$}  {}\n", "", legend.join("   ")));
    out
}

/// Compact number formatting for axis labels.
pub fn format_num(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".into()
    } else if a >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn sample_fig() -> Figure {
        Figure::new(
            "figX",
            "test",
            "n",
            "ms",
            vec![
                Series::new("A", vec![(1.0, 1.0), (2.0, 2.0), (3.0, 4.0)]),
                Series::new("B", vec![(1.0, 4.0), (2.0, 2.0), (3.0, 1.0)]),
            ],
        )
    }

    #[test]
    fn render_contains_symbols_and_legend() {
        let s = render(&sample_fig(), 40, 10);
        assert!(s.contains('*'));
        assert!(s.contains('+'));
        assert!(s.contains("A"));
        assert!(s.contains("B"));
        assert!(s.contains("figX"));
    }

    #[test]
    fn render_empty_figure() {
        let f = Figure::new("e", "empty", "x", "y", vec![]);
        assert!(render(&f, 40, 10).contains("no data"));
    }

    #[test]
    fn render_single_point() {
        let f = Figure::new("p", "point", "x", "y", vec![Series::new("S", vec![(1.0, 1.0)])]);
        let s = render(&f, 30, 8);
        assert!(s.contains('*'));
    }

    #[test]
    fn format_num_scales() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(1500.0), "1.5k");
        assert_eq!(format_num(2_000_000.0), "2.0M");
        assert_eq!(format_num(3.5e9), "3.5G");
        assert_eq!(format_num(0.25), "0.2500");
    }
}
