//! # atgpu-exp — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation
//! (§IV) against the simulated GTX 650-like device, plus the extension
//! experiments its future-work section calls for:
//!
//! | Runner | Paper artefact |
//! |---|---|
//! | [`figures::table1`] | Table I — model comparison |
//! | [`figures::fig3`] | Fig. 3a/3b/3c — vector addition |
//! | [`figures::fig4`] | Fig. 4a/4b/4c — reduction |
//! | [`figures::fig5`] | Fig. 5a/5b — matrix multiplication |
//! | [`figures::fig6`] | Fig. 6a/6b/6c — transfer proportions ΔE vs ΔT |
//! | [`figures::summary`] | §IV-D summary statistics |
//! | [`figures::ext`] | E1 out-of-core, E2 other GPUs, E3 bank conflicts, E4 occupancy, E5 other problems, E6 calibration, E7 multi-device sharding, E8 streams + threaded clusters, E9 kernel cache, E10 cost-driven pipeline planner |
//!
//! Each runner produces [`series::Figure`] data that the [`report`]
//! module renders as CSV / gnuplot / markdown files and the [`chart`]
//! module renders as ASCII plots for the terminal.
//!
//! The "observed" series are simulated observations — see DESIGN.md for
//! the hardware-substitution argument — and the "predicted" series are
//! the ATGPU/SWGPU cost functions evaluated on metrics derived from the
//! same IR by `atgpu-analyze`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chart;
pub mod figures;
pub mod report;
pub mod runner;
pub mod series;

pub use runner::{run_row, ExpConfig, Scale, SweepRow};
pub use series::{Figure, Series};
