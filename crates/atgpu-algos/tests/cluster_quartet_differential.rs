//! Differential tests for the irregular quartet on clusters: under ANY
//! explicit shard plan — random contiguous partitions over 1–4 devices —
//! the cluster builds of stencil, scan, spmv, and histogram must produce
//! outputs **bit-identical** to the host reference, on both block
//! executors (the micro-op engine and the tree-walking reference
//! interpreter).  The peer traffic each build emits (halo exchange,
//! all-to-one gather, one-to-all scatter, partial-row merge) moves data,
//! never changes it.
//!
//! A chaos case pins the same identity through a mid-program device loss
//! on the halo stencil: the journal-replay recovery plus heir-served
//! peer copies must keep every halo cell exact.

use atgpu_algos::histogram::Histogram;
use atgpu_algos::scan::Scan;
use atgpu_algos::spmv::SpmvEll;
use atgpu_algos::stencil::Stencil;
use atgpu_algos::workload::BuiltProgram;
use atgpu_ir::Shard;
use atgpu_model::{AtgpuMachine, ClusterSpec, GpuSpec};
use atgpu_sim::{run_cluster_program, FaultEvent, FaultPlan, SimConfig};

fn machine() -> AtgpuMachine {
    AtgpuMachine::new(1 << 20, 32, 12_288, 1 << 26).unwrap()
}

fn cluster(n: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(n, GpuSpec { k_prime: 2, h_limit: 8, ..GpuSpec::gtx650_like() })
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random contiguous partition of `[0, blocks)` with random device
/// assignment over `devices` devices — the adversarial input to
/// `build_sharded_with`.
fn random_plan(rng: &mut Rng, blocks: u64, devices: u32) -> Vec<Shard> {
    let mut cuts = vec![0u64, blocks];
    for _ in 0..rng.below(4) {
        cuts.push(rng.below(blocks + 1));
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2)
        .map(|w| Shard { device: rng.below(devices as u64) as u32, start: w[0], end: w[1] })
        .collect()
}

/// Runs `built` on both engines and asserts each output buffer equals
/// `expected` bit for bit.
fn assert_both_engines(
    built: &BuiltProgram,
    expected: &[Vec<i64>],
    machine: &AtgpuMachine,
    spec: &ClusterSpec,
    label: &str,
) {
    for use_reference in [false, true] {
        let config = SimConfig { use_reference, ..SimConfig::default() };
        let report =
            run_cluster_program(&built.program, built.inputs.clone(), machine, spec, &config)
                .unwrap_or_else(|e| panic!("{label} (reference={use_reference}): {e}"));
        for (buf, want) in built.outputs.iter().zip(expected) {
            assert_eq!(
                report.output(*buf),
                want.as_slice(),
                "{label} (reference={use_reference}): output mismatch"
            );
        }
    }
}

#[test]
fn stencil_random_plans_both_engines() {
    let m = machine();
    let mut rng = Rng(0x5717);
    for trial in 0..12 {
        let devices = 1 + (trial % 4) as u32;
        let n = 32 * (2 + rng.below(8));
        let rounds = 1 + rng.below(6);
        let w = Stencil::new(n, trial);
        let k = m.blocks_for(n);
        let plan = random_plan(&mut rng, k, devices);
        let built = w.build_sharded_with(&m, plan.clone(), rounds).unwrap();
        assert_both_engines(
            &built,
            &[w.iterated_reference(rounds)],
            &m,
            &cluster(devices as usize),
            &format!("stencil n={n} rounds={rounds} plan={plan:?}"),
        );
    }
}

#[test]
fn scan_random_plans_both_engines() {
    let m = machine();
    let mut rng = Rng(0x5ca9);
    for trial in 0..12 {
        let devices = 1 + (trial % 4) as u32;
        let n = 1 + rng.below(5000);
        let w = Scan::new(n, trial);
        let k = m.blocks_for(n);
        let plan = random_plan(&mut rng, k, devices);
        let built = w.build_sharded_with(&m, plan.clone()).unwrap();
        assert_both_engines(
            &built,
            &[w.host_reference()],
            &m,
            &cluster(devices as usize),
            &format!("scan n={n} plan={plan:?}"),
        );
    }
}

#[test]
fn spmv_random_plans_both_engines() {
    let m = machine();
    let mut rng = Rng(0x59e5);
    for trial in 0..12 {
        let devices = 1 + (trial % 4) as u32;
        let n = 32 * (1 + rng.below(16));
        let k_slots = 1 + rng.below(6);
        let w = SpmvEll::new(n, k_slots, trial);
        let k = m.blocks_for(n);
        let plan = random_plan(&mut rng, k, devices);
        let built = w.build_sharded_with(&m, plan.clone()).unwrap();
        assert_both_engines(
            &built,
            &[w.host_reference()],
            &m,
            &cluster(devices as usize),
            &format!("spmv n={n} K={k_slots} plan={plan:?}"),
        );
    }
}

#[test]
fn histogram_random_plans_both_engines() {
    let m = machine();
    let mut rng = Rng(0x4157);
    for trial in 0..12 {
        let devices = 1 + (trial % 4) as u32;
        let n = 1 + rng.below(4000);
        let w = Histogram::new(n, m.b, trial);
        let k = m.blocks_for(n);
        let plan = random_plan(&mut rng, k, devices);
        let built = w.build_sharded_with(&m, plan.clone()).unwrap();
        assert_both_engines(
            &built,
            &[w.host_reference()],
            &m,
            &cluster(devices as usize),
            &format!("histogram n={n} plan={plan:?}"),
        );
    }
}

#[test]
fn stencil_survives_mid_program_device_loss() {
    // The chaos identity on the halo stencil: device 1 dies at the start
    // of round 3 of 6 — its slab is re-apportioned, its journal replayed
    // onto the survivors, and subsequent halo exchanges are served by the
    // heir.  The output must still be bit-identical to the fault-free
    // iterated reference: faults cost time, never answers.
    let m = machine();
    let w = Stencil::new(256, 21);
    let rounds = 6u64;
    let built = w.build_sharded(&m, 3, rounds).unwrap();
    let mut fault = FaultPlan::new(7);
    fault.push(FaultEvent::DeviceDown { device: 1, at_round: 3 });
    let config = SimConfig { fault, ..SimConfig::default() };
    let report =
        run_cluster_program(&built.program, built.inputs.clone(), &m, &cluster(3), &config)
            .unwrap();
    assert_eq!(report.output(built.outputs[0]), w.iterated_reference(rounds).as_slice());
    let recoveries: u64 = report.device_stats.iter().map(|s| s.recoveries).sum();
    assert!(recoveries > 0, "the loss must be absorbed through recovery, not ignored");
}
