//! Bitonic sort — a round-heavy extension workload.
//!
//! The bitonic network sorts `N = 2^m` keys in `m(m+1)/2` compare-exchange
//! passes, and on the ATGPU model **every pass is a kernel launch** — a
//! program with `R = Θ(log² n)` rounds, the regime where the model's
//! per-round synchronisation charge `σ` (and nothing else) explains a
//! large slice of the running time.  The paper's own future work asks for
//! exactly this kind of stress on the round structure.
//!
//! Each pass pairs element `low` with `low ⊕ stride`; the pair indices
//! are computed in registers (shift/mask arithmetic) and the keys are
//! gathered and scattered through **data-dependent global addressing** —
//! the analyser can only bound those accesses conservatively
//! (`io_exact = false`), making this the library's showcase for the
//! inexact-analysis path, while the simulator still measures the true
//! transaction counts.
//!
//! Keys are padded to the next power of two with `i64::MAX` on the host
//! side, so the device sorts a full network and the first `n` outputs are
//! the sorted keys.

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, PredExpr, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::AtgpuMachine;

/// A bitonic-sort instance (ascending).
#[derive(Debug, Clone)]
pub struct BitonicSort {
    n: u64,
    data: Vec<i64>,
}

impl BitonicSort {
    /// Random instance of size `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self { n, data: gen::vec_in_range(n, -10_000, 10_000, seed) }
    }

    /// Instance from explicit keys.
    pub fn from_data(data: Vec<i64>) -> Self {
        Self { n: data.len() as u64, data }
    }

    /// Host reference: a sorted copy.
    pub fn host_reference(&self) -> Vec<i64> {
        let mut v = self.data.clone();
        v.sort_unstable();
        v
    }

    /// Number of compare-exchange passes (= kernel rounds) for `n` keys
    /// padded to the next power of two of at least `2b`.
    pub fn passes(n: u64, b: u64) -> u64 {
        let np = n.max(2 * b).next_power_of_two();
        let m = np.trailing_zeros() as u64;
        m * (m + 1) / 2
    }
}

impl Workload for BitonicSort {
    fn name(&self) -> &'static str {
        "bitonic"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        let b = machine.b;
        if !b.is_power_of_two() {
            return Err(AlgosError::InvalidMachine {
                reason: format!("bitonic sort needs b a power of two, got {b}"),
            });
        }
        let n = self.n;
        // Pad to a power of two with at least one full pair per lane.
        let np = n.max(2 * b).next_power_of_two();
        let bi = b as i64;

        let mut pb = ProgramBuilder::new("bitonic");
        let hin = pb.host_input("A", np);
        let hout = pb.host_output("Sorted", n);
        let da = pb.device_alloc("a", np);

        // Host-side padding with +infinity keys.
        let mut padded = self.data.clone();
        padded.resize(np as usize, i64::MAX);

        let k = np / (2 * b); // one lane per element pair
        let stages = np.trailing_zeros();

        let mut first = true;
        for stage in 1..=stages {
            let kk: i64 = 1i64 << stage; // bitonic block size
            for sub in (0..stage).rev() {
                let stride: i64 = 1i64 << sub;
                let mut kb = KernelBuilder::new(format!("bitonic_s{stage}_j{sub}"), k, 2 * b);
                // t = i·b + j: the lane's pair number.
                kb.alu(AluOp::Mul, 0, Operand::Block, Operand::Imm(bi));
                kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Lane);
                // low = ((t >> sub) << (sub+1)) + (t & (stride-1))
                kb.alu(AluOp::Shr, 1, Operand::Reg(0), Operand::Imm(sub as i64));
                kb.alu(AluOp::Shl, 1, Operand::Reg(1), Operand::Imm(sub as i64 + 1));
                kb.alu(AluOp::And, 2, Operand::Reg(0), Operand::Imm(stride - 1));
                kb.alu(AluOp::Add, 1, Operand::Reg(1), Operand::Reg(2));
                // partner = low + stride
                kb.alu(AluOp::Add, 2, Operand::Reg(1), Operand::Imm(stride));
                // ascending iff (low & kk) == 0
                kb.alu(AluOp::And, 3, Operand::Reg(1), Operand::Imm(kk));
                // Gather the pair (data-dependent global access).
                kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::reg(1));
                kb.glb_to_shr(AddrExpr::lane() + bi, da, AddrExpr::reg(2));
                kb.ld_shr(4, AddrExpr::lane());
                kb.ld_shr(5, AddrExpr::lane() + bi);
                kb.alu(AluOp::Min, 6, Operand::Reg(4), Operand::Reg(5));
                kb.alu(AluOp::Max, 7, Operand::Reg(4), Operand::Reg(5));
                kb.pred(
                    PredExpr::Eq(Operand::Reg(3), Operand::Imm(0)),
                    |kb| {
                        // ascending: min to low, max to partner
                        kb.st_shr(AddrExpr::lane(), Operand::Reg(6));
                        kb.st_shr(AddrExpr::lane() + bi, Operand::Reg(7));
                    },
                    |kb| {
                        kb.st_shr(AddrExpr::lane(), Operand::Reg(7));
                        kb.st_shr(AddrExpr::lane() + bi, Operand::Reg(6));
                    },
                );
                // Scatter back.
                kb.shr_to_glb(da, AddrExpr::reg(1), AddrExpr::lane());
                kb.shr_to_glb(da, AddrExpr::reg(2), AddrExpr::lane() + bi);

                pb.begin_round();
                if first {
                    pb.transfer_in(hin, da, np);
                    first = false;
                }
                pb.launch(kb.build());
            }
        }
        // The final round also carries the outward transfer.
        pb.transfer_out_at(da, 0, hout, 0, n);

        Ok(BuiltProgram { program: pb.build()?, inputs: vec![padded], outputs: vec![hout] })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            // R = Θ(log² n)
            BigO::new("rounds", Term::n().log2().times(Term::n().log2()).plus(Term::c(66.0))),
            BigO::new("transfer", Term::n().times(Term::c(3.0)).plus(Term::c(128.0))),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn sorts_random_data() {
        for n in [5u64, 64, 100, 1000] {
            let w = BitonicSort::new(n, n);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn sorts_adversarial_patterns() {
        for data in [
            vec![5, 4, 3, 2, 1],
            vec![1; 70],
            (0..128).rev().collect::<Vec<i64>>(),
            vec![i64::MAX - 1, i64::MIN + 1, 0, -1, 1],
        ] {
            let w = BitonicSort::from_data(data.clone());
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("{data:?}: {e}"));
        }
    }

    #[test]
    fn round_count_is_log_squared() {
        let m = test_machine();
        let w = BitonicSort::new(1 << 12, 1); // np = 4096 = 2^12
        let built = w.build(&m).unwrap();
        assert_eq!(built.program.num_rounds(), 12 * 13 / 2);
        assert_eq!(BitonicSort::passes(1 << 12, m.b), 78);
    }

    #[test]
    fn analyzer_flags_data_dependent_accesses() {
        let m = test_machine();
        let w = BitonicSort::new(256, 1);
        let built = w.build(&m).unwrap();
        let a = analyze_program(&built.program, &m).unwrap();
        assert!(!a.io_exact, "gather/scatter addressing cannot be exact");
        // Shared-memory addressing is plain lane-stride-1: conflict-free
        // even though the *global* side is data-dependent.
        assert!(a.conflict_free);
        // The conservative bound still feeds a finite cost.
        let params = test_spec().derived_cost_params();
        let cost = atgpu_model::cost::atgpu_cost(&params, &m, &test_spec(), &a.metrics()).unwrap();
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn sync_cost_grows_with_rounds() {
        // With Θ(log² n) rounds, σ·R is a visible slice of the total —
        // the model's "minimise R" advice made measurable.
        let m = test_machine();
        let s = test_spec();
        let w = BitonicSort::new(4096, 2);
        let r = verify_on_sim(&w, &m, &s, &SimConfig::default()).unwrap();
        let sync = r.sync_ms();
        assert!(
            sync / r.total_ms() > 0.3,
            "σ·R should dominate a small bitonic sort: {} of {}",
            sync,
            r.total_ms()
        );
    }

    #[test]
    fn empty_rejected() {
        assert!(BitonicSort::from_data(vec![]).build(&test_machine()).is_err());
    }
}
