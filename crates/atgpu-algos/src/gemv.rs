//! Matrix–vector multiplication (GEMV) — extension workload sitting
//! between vector addition and matrix multiplication in arithmetic
//! intensity: `O(n²)` words transferred for `O(n²)` work, so transfer
//! and kernel grow at the same rate and Δ stays high at every size —
//! unlike matmul, scaling up never rescues a transfer-blind analysis.
//!
//! One thread block computes one output element `y[i]`: the row and the
//! operand vector are streamed through shared memory in coalesced
//! `b`-word chunks, each lane accumulates a partial dot product in a
//! register, and a sequential-addressing tree folds the partials.

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, PredExpr, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, RoundMetrics};

/// A GEMV instance `y = A·x` with `A` an `n×n` row-major matrix.
#[derive(Debug, Clone)]
pub struct Gemv {
    n: u64,
    a: Vec<i64>,
    x: Vec<i64>,
}

impl Gemv {
    /// Random instance with side `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self {
            n,
            a: gen::vec_in_range(n * n, -20, 20, seed),
            x: gen::vec_in_range(n, -20, 20, seed.wrapping_add(1)),
        }
    }

    /// Host reference.
    pub fn host_reference(&self) -> Vec<i64> {
        let n = self.n as usize;
        (0..n).map(|i| (0..n).map(|k| self.a[i * n + k] * self.x[k]).sum()).collect()
    }
}

impl Workload for Gemv {
    fn name(&self) -> &'static str {
        "gemv"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let n = self.n;
        let b = machine.b;
        if n == 0 || !n.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("matrix side {n} must be a positive multiple of b = {b}"),
            });
        }
        if !b.is_power_of_two() {
            return Err(AlgosError::InvalidMachine {
                reason: format!("the folding tree needs b a power of two, got {b}"),
            });
        }
        let bi = b as i64;
        let ni = n as i64;
        let chunks = n / b;
        let steps = b.trailing_zeros();

        let mut pb = ProgramBuilder::new("gemv");
        let ha = pb.host_input("A", n * n);
        let hx = pb.host_input("X", n);
        let hy = pb.host_output("Y", n);
        let da = pb.device_alloc("a", n * n);
        let dx = pb.device_alloc("x", n);
        let dy = pb.device_alloc("y", n);

        // Shared layout: row chunk [0, b), x chunk [b, 2b), fold tree [2b, 3b).
        let mut kb = KernelBuilder::new("gemv_kernel", n, 3 * b);
        kb.mov(0, Operand::Imm(0)); // accumulator
        kb.repeat(chunks as u32, |kb| {
            kb.glb_to_shr(
                AddrExpr::lane(),
                da,
                AddrExpr::block() * ni + AddrExpr::loop_var(0) * bi + AddrExpr::lane(),
            );
            kb.glb_to_shr(AddrExpr::lane() + bi, dx, AddrExpr::loop_var(0) * bi + AddrExpr::lane());
            kb.ld_shr(1, AddrExpr::lane());
            kb.ld_shr(2, AddrExpr::lane() + bi);
            kb.alu(AluOp::Mul, 3, Operand::Reg(1), Operand::Reg(2));
            kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(3));
        });
        // Fold the b partials.
        kb.st_shr(AddrExpr::lane() + 2 * bi, Operand::Reg(0));
        kb.repeat(steps, |kb| {
            kb.alu(AluOp::Shr, 4, Operand::Imm(bi / 2), Operand::LoopVar(0));
            kb.when(PredExpr::Lt(Operand::Lane, Operand::Reg(4)), |kb| {
                kb.ld_shr(5, AddrExpr::lane() + 2 * bi);
                kb.ld_shr(6, AddrExpr::lane() + AddrExpr::reg(4) + 2 * bi);
                kb.alu(AluOp::Add, 5, Operand::Reg(5), Operand::Reg(6));
                kb.st_shr(AddrExpr::lane() + 2 * bi, Operand::Reg(5));
            });
        });
        kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
            kb.shr_to_glb(dy, AddrExpr::block(), AddrExpr::c(2 * bi));
        });

        pb.begin_round();
        pb.transfer_in(ha, da, n * n);
        pb.transfer_in(hx, dx, n);
        pb.launch(kb.build());
        pb.transfer_out(dy, hy, n);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.x.clone()],
            outputs: vec![hy],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        if !n.is_multiple_of(b) || !b.is_power_of_two() {
            return None;
        }
        let chunks = n / b;
        let steps = b.trailing_zeros() as u64;
        Some(AlgoMetrics::new(vec![RoundMetrics {
            // mov + chunks·6 + stage + steps·(shr + pred + 4) + final pred + store
            time: 1 + 6 * chunks + 1 + 6 * steps + 2,
            // per block: 2 coalesced loads per chunk + 1 output store
            io_blocks: n * (2 * chunks + 1),
            global_words: n * n + 2 * n.div_ceil(b) * b,
            shared_words: 3 * b,
            inward_words: n * n + n,
            inward_txns: 2,
            outward_words: n,
            outward_txns: 1,
            blocks_launched: n,
        }]))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("time", Term::n().over(Term::b()).times(Term::c(8.0))),
            BigO::new("io", Term::n().pow(2).over(Term::b()).times(Term::c(3.0))),
            BigO::new("transfer", Term::n().pow(2).times(Term::c(2.0))),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn analyzer_matches_closed_form() {
        let m = test_machine();
        for n in [32u64, 96, 128] {
            let w = Gemv::new(n, 1);
            let built = w.build(&m).unwrap();
            assert_eq!(
                analyze_program(&built.program, &m).unwrap().metrics(),
                w.closed_form(&m).unwrap(),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn simulation_matches_host() {
        for n in [32u64, 64, 128] {
            let w = Gemv::new(n, n);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn identity_matrix_reproduces_x() {
        let n = 32u64;
        let mut a = vec![0i64; (n * n) as usize];
        for i in 0..n as usize {
            a[i * n as usize + i] = 1;
        }
        let x: Vec<i64> = (0..n as i64).collect();
        let w = Gemv { n, a, x: x.clone() };
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        assert_eq!(r.output(atgpu_ir::HBuf(2)), &x[..]);
    }

    #[test]
    fn delta_stays_high_at_scale() {
        // Unlike matmul, Δ does not vanish as n grows: transfer and work
        // are both Θ(n²).
        let m = test_machine();
        let s = atgpu_model::GpuSpec::gtx650_like();
        let small = verify_on_sim(&Gemv::new(128, 1), &m, &s, &SimConfig::default()).unwrap();
        let large = verify_on_sim(&Gemv::new(512, 1), &m, &s, &SimConfig::default()).unwrap();
        assert!(small.transfer_proportion() > 0.4);
        assert!(large.transfer_proportion() > 0.4);
    }

    #[test]
    fn invalid_sizes_rejected() {
        assert!(Gemv::new(33, 0).build(&test_machine()).is_err());
        assert!(Gemv::new(0, 0).build(&test_machine()).is_err());
    }
}
