//! Workload-library errors.

use std::fmt;

/// Errors raised while building or verifying workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgosError {
    /// The problem size is incompatible with the machine (e.g. matrix
    /// side not a multiple of `b`).
    InvalidSize {
        /// Explanation.
        reason: String,
    },
    /// The machine is unsuitable (e.g. `b` not a power of two for the
    /// tree reduction).
    InvalidMachine {
        /// Explanation.
        reason: String,
    },
    /// IR construction failed.
    Ir(atgpu_ir::IrError),
    /// Simulation failed.
    Sim(atgpu_sim::SimError),
    /// The simulated output did not match the host reference.
    Mismatch {
        /// Which output buffer.
        buffer: String,
        /// First mismatching index.
        index: usize,
        /// Expected word.
        expected: i64,
        /// Simulated word.
        actual: i64,
    },
}

impl fmt::Display for AlgosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgosError::InvalidSize { reason } => write!(f, "invalid problem size: {reason}"),
            AlgosError::InvalidMachine { reason } => write!(f, "invalid machine: {reason}"),
            AlgosError::Ir(e) => write!(f, "IR error: {e}"),
            AlgosError::Sim(e) => write!(f, "simulation error: {e}"),
            AlgosError::Mismatch { buffer, index, expected, actual } => write!(
                f,
                "output mismatch in `{buffer}` at word {index}: expected {expected}, got {actual}"
            ),
        }
    }
}

impl std::error::Error for AlgosError {}

impl From<atgpu_ir::IrError> for AlgosError {
    fn from(e: atgpu_ir::IrError) -> Self {
        AlgosError::Ir(e)
    }
}

impl From<atgpu_sim::SimError> for AlgosError {
    fn from(e: atgpu_sim::SimError) -> Self {
        AlgosError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatch_message() {
        let e = AlgosError::Mismatch { buffer: "C".into(), index: 3, expected: 7, actual: 9 };
        let s = e.to_string();
        assert!(s.contains("C") && s.contains("3") && s.contains("7") && s.contains("9"));
    }
}
