//! Vector addition — the paper's §IV-A workload (Figure 3).
//!
//! "For two vectors `A, B` of length `n`, the addition is `A + B`.  […]
//! An element of the answer vector is independent, making this an
//! embarrassingly parallel problem."
//!
//! The paper's ATGPU analysis: 1 round, time `O(1)`, I/O `O(k)`, global
//! space `O(n)`, shared space `O(b)`, transfer `O(α + βn)`; cost
//! `3α + 3nβ + (t + 3kλ)/γ + σ`.  Our IR encoding has `t = 7` lockstep
//! operations (the paper's CUDA kernel counts 13; both are the `O(1)`
//! constant).

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, RoundMetrics};

/// Lockstep operations of our vector-addition kernel encoding.
pub const VECADD_TIME_OPS: u64 = 7;

/// A vector-addition instance `C = A + B`.
#[derive(Debug, Clone)]
pub struct VecAdd {
    n: u64,
    a: Vec<i64>,
    b: Vec<i64>,
}

impl VecAdd {
    /// Random instance of size `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self { n, a: gen::small_ints(n, seed), b: gen::small_ints(n, seed.wrapping_add(1)) }
    }

    /// Instance from explicit data.
    pub fn from_data(a: Vec<i64>, b: Vec<i64>) -> Result<Self, AlgosError> {
        if a.len() != b.len() {
            return Err(AlgosError::InvalidSize {
                reason: format!("vector lengths differ: {} vs {}", a.len(), b.len()),
            });
        }
        Ok(Self { n: a.len() as u64, a, b })
    }

    /// Host reference: elementwise sum.
    pub fn host_reference(&self) -> Vec<i64> {
        self.a.iter().zip(&self.b).map(|(x, y)| x + y).collect()
    }

    /// Builds a **multi-device** vector addition: the grid is split into
    /// contiguous block ranges, one per device; each device receives only
    /// its slice of `A` and `B` over its own host link, runs its shard,
    /// and returns its slice of `C` — an embarrassingly parallel workload
    /// where sharding divides the transfer-dominated total by the device
    /// count (CrystalGPU-style transparent distribution).
    pub fn build_sharded(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
    ) -> Result<BuiltProgram, AlgosError> {
        let k = machine.blocks_for(self.n);
        self.build_sharded_with(machine, atgpu_sim::even_shards(k, devices))
    }

    /// The per-block cost shape of the vecadd kernel — what the
    /// cost-driven planner prices: `2b` words in, `b` words out, 3
    /// coalesced block transactions and an `O(1)` kernel per block.
    /// This *is* [`atgpu_model::ShardProfile::streaming`] — the planner's
    /// generic streaming default is defined as the vecadd shape, so the
    /// two stay in lockstep by construction.
    pub fn shard_profile(machine: &AtgpuMachine) -> atgpu_model::ShardProfile {
        atgpu_model::ShardProfile::streaming(machine.b)
    }

    /// [`Self::build_sharded`] with the blocks apportioned by the
    /// **cost-driven planner** ([`atgpu_sim::planned_shards`]): candidate
    /// plans (even, compute-weighted, transfer-balanced) are priced with
    /// this workload's [`Self::shard_profile`] through the cluster cost
    /// function — per-device host-link `α`/`β` included — and the
    /// cheapest modeled plan wins.  On a cluster of identical GPUs behind
    /// asymmetric host links this hands the slow-link device fewer
    /// blocks, which an even or `k′·clock`-weighted split never would.
    pub fn build_sharded_planned(
        &self,
        machine: &AtgpuMachine,
        cluster: &atgpu_model::ClusterSpec,
    ) -> Result<BuiltProgram, AlgosError> {
        let k = machine.blocks_for(self.n);
        let shards = atgpu_sim::planned_shards(k, cluster, machine, &Self::shard_profile(machine));
        self.build_sharded_with(machine, shards)
    }

    /// [`Self::build_sharded`] with an explicit shard plan (the grid's
    /// blocks, contiguously partitioned) — what the experiment harness
    /// uses to compare planners on the same program shape.
    pub fn build_sharded_with(
        &self,
        machine: &AtgpuMachine,
        shards: Vec<atgpu_ir::Shard>,
    ) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty vectors".into() });
        }
        let k = machine.blocks_for(self.n);
        check_shards_fit(&shards, k)?;
        let n = self.n;

        let mut pb = ProgramBuilder::new("vecadd_sharded");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let db = pb.device_alloc("b", n);
        let dc = pb.device_alloc("c", n);

        // A shard covering blocks [start, end) touches the word range
        // [start·b, min(end·b, n)) of every buffer.
        let slice = |s: &atgpu_ir::Shard| {
            let off = s.start * machine.b;
            (off, (s.end * machine.b).min(n) - off)
        };
        pb.begin_round();
        for s in &shards {
            let (off, words) = slice(s);
            pb.transfer_in_to(s.device, ha, off, da, off, words);
            pb.transfer_in_to(s.device, hb, off, db, off, words);
        }
        pb.launch_sharded(vecadd_kernel(k, machine.b, da, db, dc), shards.clone());
        for s in &shards {
            let (off, words) = slice(s);
            pb.transfer_out_from(s.device, dc, off, hc, off, words);
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }

    /// Builds the **repeated-launch** form: inputs staged once, then the
    /// *same* kernel launched once per round for `launches` rounds
    /// (idempotent — every launch recomputes the same `C`), then one
    /// download.  This is the cross-launch kernel-cache stress shape:
    /// every launch after the first hits the compiled program and, the
    /// kernel being replay-eligible, its recorded timing trace.
    pub fn build_relaunched(
        &self,
        machine: &AtgpuMachine,
        launches: u64,
    ) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 || launches == 0 {
            return Err(AlgosError::InvalidSize {
                reason: "empty vectors or zero launches".into(),
            });
        }
        let k = machine.blocks_for(self.n);
        let n = self.n;

        let mut pb = ProgramBuilder::new("vecadd_relaunched");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let db = pb.device_alloc("b", n);
        let dc = pb.device_alloc("c", n);

        pb.begin_round();
        pb.transfer_in(ha, da, n);
        pb.transfer_in(hb, db, n);
        for _ in 0..launches {
            pb.launch(vecadd_kernel(k, machine.b, da, db, dc));
            pb.begin_round();
        }
        pb.transfer_out(dc, hc, n);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }
}

/// Rejects a caller-supplied shard plan whose ranges fall outside the
/// `grid`-block launch (the slice arithmetic below would otherwise
/// underflow before `ProgramBuilder::build`'s partition validation gets
/// a chance to report it properly).
pub(crate) fn check_shards_fit(shards: &[atgpu_ir::Shard], grid: u64) -> Result<(), AlgosError> {
    if let Some(s) = shards.iter().find(|s| s.start >= s.end || s.end > grid) {
        return Err(AlgosError::InvalidSize {
            reason: format!(
                "shard [{}, {}) on device {} does not fit the {grid}-block grid",
                s.start, s.end, s.device
            ),
        });
    }
    Ok(())
}

/// Builds the vecadd kernel: `k` blocks stage both operand rows into
/// shared memory, add, and stage the result back out — all coalesced.
/// Shared layout: `_a` at 0, `_b` at `b`, `_c` at `2b`.
fn vecadd_kernel(
    k: u64,
    b: u64,
    da: atgpu_ir::DBuf,
    db: atgpu_ir::DBuf,
    dc: atgpu_ir::DBuf,
) -> atgpu_ir::Kernel {
    let bi = b as i64;
    let mut kb = KernelBuilder::new("vecadd_kernel", k, 3 * b);
    let g = AddrExpr::block() * bi + AddrExpr::lane();
    kb.glb_to_shr(AddrExpr::lane(), da, g.clone()); // _a[j] <= a[ib + j]
    kb.glb_to_shr(AddrExpr::lane() + bi, db, g.clone()); // _b[j] <= b[ib + j]
    kb.ld_shr(0, AddrExpr::lane());
    kb.ld_shr(1, AddrExpr::lane() + bi);
    kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1)); // _c <- _a + _b
    kb.st_shr(AddrExpr::lane() + 2 * bi, Operand::Reg(2));
    kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * bi); // c[ib + j] <= _c[j]
    kb.build()
}

impl Workload for VecAdd {
    fn name(&self) -> &'static str {
        "vecadd"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty vectors".into() });
        }
        let k = machine.blocks_for(self.n);
        let n = self.n;

        let mut pb = ProgramBuilder::new("vecadd");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a", n);
        let db = pb.device_alloc("b", n);
        let dc = pb.device_alloc("c", n);

        pb.begin_round();
        pb.transfer_in(ha, da, n); // a W A
        pb.transfer_in(hb, db, n); // b W B
                                   // The paper's pseudocode: stage both operands into shared memory,
                                   // add, stage the result back out — all coalesced.
        pb.launch(vecadd_kernel(k, machine.b, da, db, dc));
        pb.transfer_out(dc, hc, n); // C W c

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        let k = machine.blocks_for(n);
        let pad = |w: u64| w.div_ceil(b) * b;
        Some(AlgoMetrics::new(vec![RoundMetrics {
            time: VECADD_TIME_OPS,
            io_blocks: 3 * k, // one coalesced transaction per buffer per block
            global_words: 3 * pad(n),
            shared_words: 3 * b,
            inward_words: 2 * n,
            inward_txns: 2,
            outward_words: n,
            outward_txns: 1,
            blocks_launched: k,
        }]))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("rounds", Term::c(1.0)),
            BigO::new("time", Term::c(1.0)),
            BigO::new("io", Term::n().over(Term::b()).ceil()), // O(k)
            BigO::new("global_space", Term::n()),
            BigO::new("shared_space", Term::b()),
            BigO::new("transfer", Term::n()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn analyzer_matches_closed_form() {
        let m = test_machine();
        for n in [32u64, 64, 1000, 4096] {
            let w = VecAdd::new(n, 42);
            let built = w.build(&m).unwrap();
            let analysis = analyze_program(&built.program, &m).unwrap();
            assert_eq!(
                analysis.metrics(),
                w.closed_form(&m).unwrap(),
                "closed form mismatch at n={n}"
            );
            assert!(analysis.io_exact);
            assert!(analysis.conflict_free);
        }
    }

    #[test]
    fn simulation_matches_host_reference() {
        let w = VecAdd::new(1000, 7);
        verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
    }

    #[test]
    fn simulation_matches_reference_non_multiple_of_b() {
        let w = VecAdd::new(33, 7);
        verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
    }

    #[test]
    fn single_element() {
        let w = VecAdd::from_data(vec![5], vec![-3]).unwrap();
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        assert_eq!(r.output(atgpu_ir::HBuf(2)), &[2]);
    }

    #[test]
    fn empty_rejected() {
        let w = VecAdd::from_data(vec![], vec![]).unwrap();
        assert!(w.build(&test_machine()).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(VecAdd::from_data(vec![1], vec![1, 2]).is_err());
    }

    #[test]
    fn transfer_dominates_like_the_paper() {
        // The paper observed data transfer taking ~84% of total time.
        // Our GTX650-like simulation should land in the same regime
        // (transfer clearly dominant).
        let w = VecAdd::new(1 << 16, 3);
        let r = verify_on_sim(
            &w,
            &test_machine(),
            &atgpu_model::GpuSpec::gtx650_like(),
            &SimConfig::default(),
        )
        .unwrap();
        let delta = r.transfer_proportion();
        assert!(delta > 0.5, "transfer share {delta} unexpectedly small");
    }

    #[test]
    fn bounds_hold_with_small_constant() {
        let m = test_machine();
        let io_bound = BigO::new("io", Term::n().over(Term::b()).ceil());
        let mut samples = Vec::new();
        for n in [1024u64, 4096, 16384] {
            let w = VecAdd::new(n, 1);
            let built = w.build(&m).unwrap();
            let a = analyze_program(&built.program, &m).unwrap();
            samples.push((n as f64, a.metrics().total_io_blocks() as f64));
        }
        let c = io_bound.fitted_constant(&samples, m.b as f64).unwrap();
        assert!(c <= 3.5, "I/O constant {c} too large for O(n/b)");
    }

    #[test]
    fn parallel_mode_agrees() {
        let w = VecAdd::new(2048, 9);
        let cfg = SimConfig {
            mode: atgpu_sim::ExecMode::Parallel { threads: 2 },
            ..SimConfig::default()
        };
        verify_on_sim(&w, &test_machine(), &test_spec(), &cfg).unwrap();
    }

    #[test]
    fn sharded_build_verifies_on_clusters() {
        use crate::workload::verify_built_on_cluster;
        let m = test_machine();
        for devices in [1u32, 2, 3, 4] {
            for n in [1024u64, 1000] {
                let w = VecAdd::new(n, 11);
                let built = w.build_sharded(&m, devices).unwrap();
                let cluster = atgpu_model::ClusterSpec::homogeneous(devices as usize, test_spec());
                let report = verify_built_on_cluster(
                    &built,
                    &w.expected(),
                    &m,
                    &cluster,
                    &SimConfig::default(),
                )
                .unwrap_or_else(|e| panic!("devices={devices} n={n}: {e}"));
                // Every participating device reports transfer time.
                let xfer = report.transfer_ms_per_device();
                assert_eq!(xfer.len(), devices as usize);
                assert!(xfer.iter().all(|&t| t > 0.0), "devices={devices} n={n}");
            }
        }
    }

    /// The cost-driven planner on identical devices behind a fast and a
    /// slow host link: the slow-link device must run fewer blocks, and
    /// the planned program must beat the even split's observed total.
    #[test]
    fn planned_sharding_starves_slow_links_and_verifies() {
        use crate::workload::verify_built_on_cluster;
        let m = test_machine();
        let w = VecAdd::new(1 << 12, 13);
        let mut cluster = atgpu_model::ClusterSpec::homogeneous(2, test_spec());
        cluster.host_links[1] = atgpu_model::LinkParams {
            alpha_ms: cluster.host_links[1].alpha_ms * 8.0,
            beta_ms_per_word: cluster.host_links[1].beta_ms_per_word * 8.0,
        };
        let built = w.build_sharded_planned(&m, &cluster).unwrap();
        let report =
            verify_built_on_cluster(&built, &w.expected(), &m, &cluster, &SimConfig::default())
                .unwrap();
        let blocks: Vec<u64> =
            report.rounds[0].devices.iter().map(|d| d.kernel_stats.blocks).collect();
        assert!(blocks[1] < blocks[0], "slow-link device over-assigned: {blocks:?}");
        let even = w.build_sharded(&m, 2).unwrap();
        let r_even =
            verify_built_on_cluster(&even, &w.expected(), &m, &cluster, &SimConfig::default())
                .unwrap();
        assert!(
            report.total_ms() < r_even.total_ms(),
            "planned {} vs even {}",
            report.total_ms(),
            r_even.total_ms()
        );
    }

    /// A caller-supplied shard plan that exceeds the grid must come back
    /// as a proper error, not a slice-arithmetic underflow panic.
    #[test]
    fn explicit_shard_plan_outside_grid_rejected() {
        let m = test_machine();
        let w = VecAdd::new(4 * m.b, 1); // 4-block grid
        for bad in [
            vec![atgpu_ir::Shard { device: 0, start: 0, end: 8 }],
            vec![atgpu_ir::Shard { device: 0, start: 4, end: 8 }],
            vec![atgpu_ir::Shard { device: 0, start: 2, end: 2 }],
        ] {
            assert!(
                w.build_sharded_with(&m, bad.clone()).is_err(),
                "plan {bad:?} must be rejected"
            );
        }
        // The full in-range grid still builds.
        assert!(w
            .build_sharded_with(&m, vec![atgpu_ir::Shard { device: 0, start: 0, end: 4 }])
            .is_ok());
    }

    #[test]
    fn relaunched_build_verifies_and_hits_cache() {
        let m = test_machine();
        let w = VecAdd::new(256, 5);
        let built = w.build_relaunched(&m, 10).unwrap();
        assert_eq!(built.program.num_rounds(), 11); // stage + 10 launches, out in the last
        let run = |cfg: &SimConfig| {
            atgpu_sim::run_program(&built.program, built.inputs.clone(), &m, &test_spec(), cfg)
                .unwrap()
        };
        let on = run(&SimConfig::default());
        assert_eq!(on.output(built.outputs[0]), w.host_reference());
        // 1 compile, 9 cached launches.
        assert_eq!((on.device_stats.cache.misses, on.device_stats.cache.hits), (1, 9));
        // The kill-switch reproduces every observation bit for bit.
        let off = run(&SimConfig { cache: false, ..SimConfig::default() });
        assert_eq!(on.rounds, off.rounds);
        assert_eq!(off.device_stats.cache, Default::default());
        assert_eq!(on.output(built.outputs[0]), off.output(built.outputs[0]));
    }

    #[test]
    fn sharding_cuts_transfer_dominated_time() {
        use crate::workload::verify_built_on_cluster;
        let m = test_machine();
        let spec = atgpu_model::GpuSpec::gtx650_like();
        let w = VecAdd::new(1 << 16, 3);
        let total = |devices: u32| {
            let built = w.build_sharded(&m, devices).unwrap();
            let cluster = atgpu_model::ClusterSpec::homogeneous(devices as usize, spec);
            verify_built_on_cluster(&built, &w.expected(), &m, &cluster, &SimConfig::default())
                .unwrap()
                .total_ms()
        };
        let t1 = total(1);
        let t4 = total(4);
        assert!(
            t4 < 0.5 * t1,
            "4-device sharding should cut the transfer-dominated total: {t4} vs {t1}"
        );
    }
}
