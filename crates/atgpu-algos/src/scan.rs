//! Inclusive prefix sum (scan) — extension workload with a three-round
//! hierarchical structure.
//!
//! 1. **Block scan** (`k` blocks): each block Hillis–Steele-scans its `b`
//!    words in shared memory, stores the scanned chunk and its block
//!    total.
//! 2. **Sums scan** (1 block): a single block walks the `k` block totals
//!    in chunks of `b`, scanning each and carrying the running total in
//!    shared memory — the sequential-carry pattern a single-warp machine
//!    needs.
//! 3. **Offset add** (`k` blocks): each block adds the scanned total of
//!    the preceding blocks to its chunk (block 0 is guarded by the
//!    model's single-conditional `if`).
//!
//! The Hillis–Steele steps are hazard-free under the model's lockstep
//! semantics: a load instruction completes for *all* lanes before the
//! following store issues.

use crate::error::AlgosError;
use crate::gen;
use crate::vecadd::check_shards_fit;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, PredExpr, ProgramBuilder, Shard};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, PeerProfile, RoundMetrics, ShardProfile};

/// An inclusive-scan instance.
#[derive(Debug, Clone)]
pub struct Scan {
    n: u64,
    data: Vec<i64>,
}

impl Scan {
    /// Random instance of size `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self { n, data: gen::vec_in_range(n, -50, 50, seed) }
    }

    /// Instance from explicit data.
    pub fn from_data(data: Vec<i64>) -> Self {
        Self { n: data.len() as u64, data }
    }

    /// Host reference: running sums.
    pub fn host_reference(&self) -> Vec<i64> {
        self.data
            .iter()
            .scan(0i64, |acc, &x| {
                *acc += x;
                Some(*acc)
            })
            .collect()
    }

    /// Validates the sharded variant's machine constraint (shared with
    /// [`Workload::build`]) and returns `(k, b, steps, t2)`.
    fn check_sharded(&self, machine: &AtgpuMachine) -> Result<(u64, u64, u32, u64), AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        if !machine.b.is_power_of_two() || machine.b < 2 {
            return Err(AlgosError::InvalidMachine {
                reason: format!("scan needs b to be a power of two ≥ 2, got {}", machine.b),
            });
        }
        let b = machine.b;
        let k = machine.blocks_for(self.n);
        Ok((k, b, b.trailing_zeros(), k.div_ceil(b)))
    }

    /// Multi-pass cluster scan over an explicit shard plan of the
    /// round-1 block grid:
    ///
    /// 1. each shard stages its slice and block-scans it on its own
    ///    device;
    /// 2. every shard off device 0 sends its block totals to device 0
    ///    over the peer links (the **all-to-one gather**), where the
    ///    single-block carry scan runs;
    /// 3. device 0 scatters each shard's scanned predecessor totals
    ///    back (**one-to-all fix-up**), every shard adds its offset and
    ///    drains its slice.
    ///
    /// Bit-identical to the single-device three-round build: the carry
    /// scan sees exactly the same `dsums` words in the same order.
    pub fn build_sharded_with(
        &self,
        machine: &AtgpuMachine,
        shards: Vec<Shard>,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, b, steps, t2) = self.check_sharded(machine)?;
        check_shards_fit(&shards, k)?;
        let n = self.n;

        let mut pb = ProgramBuilder::new("scan-sharded");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Out", n);
        let din = pb.device_alloc("a", n);
        let dpart = pb.device_alloc("part", n);
        let dsums = pb.device_alloc("sums", k);
        let dout = pb.device_alloc("out", n);

        let slice = |s: &Shard| {
            let lo = s.start * b;
            (lo, (s.end * b).min(n) - lo)
        };

        // Round 1: stage slices, block-scan each shard on its device.
        pb.begin_round();
        for s in &shards {
            let (lo, words) = slice(s);
            pb.transfer_in_to(s.device, hin, lo, din, lo, words);
        }
        pb.launch_sharded(scan_blocks_kernel(k, b, steps, din, dpart, dsums), shards.clone());

        // Round 2: gather block totals to device 0, carry-scan there.
        pb.begin_round();
        for s in &shards {
            if s.device != 0 {
                pb.transfer_peer(s.device, 0, dsums, s.start, s.start, s.blocks());
            }
        }
        pb.launch_sharded(
            scan_sums_kernel(b, steps, t2, dsums),
            vec![Shard { device: 0, start: 0, end: 1 }],
        );

        // Round 3: scatter the scanned predecessor totals, add offsets,
        // drain each shard's slice.
        pb.begin_round();
        for s in &shards {
            if s.device == 0 {
                continue;
            }
            // Block `u > 0` reads `dsums[u − 1]`: the shard needs the
            // scanned totals `[start − 1, end − 1)` (clamped at 0).
            let lo = s.start.saturating_sub(1);
            let hi = s.end - 1;
            if hi > lo {
                pb.transfer_peer(0, s.device, dsums, lo, lo, hi - lo);
            }
        }
        pb.launch_sharded(scan_offsets_kernel(k, b, dpart, dsums, dout), shards.clone());
        for s in &shards {
            let (lo, words) = slice(s);
            pb.transfer_out_from(s.device, dout, lo, hout, lo, words);
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    /// [`Self::build_sharded_with`] over an even block split.
    pub fn build_sharded(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
    ) -> Result<BuiltProgram, AlgosError> {
        let k = machine.blocks_for(self.n);
        self.build_sharded_with(machine, atgpu_sim::even_shards(k, devices))
    }

    /// The per-block cost shape of the sharded scan: two `k`-block
    /// kernel rounds (block scan + offset fix-up; `time_ops` is their
    /// mean, the carry scan on device 0 is plan-invariant and left
    /// out), `b` words staged in and drained out per block, and one
    /// block total gathered to device 0 plus one scanned total
    /// scattered back per block — the all-to-one/one-to-all peer pair
    /// the planner now prices on the directed matrix.
    pub fn shard_profile(machine: &AtgpuMachine) -> ShardProfile {
        let b = machine.b.max(1);
        let steps = b.trailing_zeros() as u64;
        let hs = hillis_steele_ops(steps);
        let t1 = 1 + hs + 1 + 2; // round-1 kernel
        let t3 = 1 + 2 + 4 + 1; // round-3 kernel
        ShardProfile {
            time_ops: (t1 + t3).div_ceil(2),
            io_blocks_per_unit: 3,
            inward_words_per_unit: b,
            inward_txns: 1,
            outward_words_per_unit: b,
            outward_txns: 1,
            shared_words: b + 1,
            rounds: 2,
            peer: PeerProfile {
                merge_words_per_unit: 1,
                merge_txns: 1,
                scatter_words_per_unit: 1,
                scatter_txns: 1,
                owner: 0,
                ..PeerProfile::default()
            },
            ..ShardProfile::default()
        }
    }

    /// [`Self::build_sharded_with`] with the round-1 blocks apportioned
    /// by the **peer-aware cost-driven planner**: candidates are priced
    /// with [`Self::shard_profile`] — gather/scatter words per block on
    /// the directed peer matrix included — and the argmin is built.
    pub fn build_sharded_planned(
        &self,
        machine: &AtgpuMachine,
        cluster: &atgpu_model::ClusterSpec,
    ) -> Result<BuiltProgram, AlgosError> {
        let k = machine.blocks_for(self.n);
        let shards = atgpu_sim::planned_shards(k, cluster, machine, &Self::shard_profile(machine));
        self.build_sharded_with(machine, shards)
    }
}

/// Emits a Hillis–Steele inclusive scan over `_s[region + j]`; `steps`
/// iterations of `if s ≤ j then _s[j] += _s[j−s]` with `s = 2^t`.
fn emit_hillis_steele(kb: &mut KernelBuilder, region: i64, steps: u32) {
    kb.repeat(steps, |kb| {
        kb.alu(AluOp::Shl, 0, Operand::Imm(1), Operand::LoopVar(0));
        kb.when(PredExpr::Le(Operand::Reg(0), Operand::Lane), |kb| {
            kb.ld_shr(1, AddrExpr::lane() - AddrExpr::reg(0) + region);
            kb.ld_shr(2, AddrExpr::lane() + region);
            kb.alu(AluOp::Add, 1, Operand::Reg(1), Operand::Reg(2));
            kb.st_shr(AddrExpr::lane() + region, Operand::Reg(1));
        });
    });
}

/// Ops of one Hillis–Steele pass (used by the closed form).
fn hillis_steele_ops(steps: u64) -> u64 {
    steps * 6 // shl + pred + 4-op arm
}

/// Round-1 kernel: block-local scans into `dpart`, block totals into
/// `dsums`.
fn scan_blocks_kernel(
    k: u64,
    b: u64,
    steps: u32,
    din: atgpu_ir::DBuf,
    dpart: atgpu_ir::DBuf,
    dsums: atgpu_ir::DBuf,
) -> atgpu_ir::Kernel {
    let bi = b as i64;
    let mut kb = KernelBuilder::new("scan_blocks", k, b);
    kb.glb_to_shr(AddrExpr::lane(), din, AddrExpr::block() * bi + AddrExpr::lane());
    emit_hillis_steele(&mut kb, 0, steps);
    kb.shr_to_glb(dpart, AddrExpr::block() * bi + AddrExpr::lane(), AddrExpr::lane());
    kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(bi - 1)), |kb| {
        kb.shr_to_glb(dsums, AddrExpr::block(), AddrExpr::c(bi - 1));
    });
    kb.build()
}

/// Round-2 kernel: a single block scans the `k` block totals in chunks
/// of `b` with a sequential carry, rewriting `dsums` in place.
fn scan_sums_kernel(b: u64, steps: u32, t2: u64, dsums: atgpu_ir::DBuf) -> atgpu_ir::Kernel {
    let bi = b as i64;
    let mut kb = KernelBuilder::new("scan_sums", 1, b + 1);
    kb.repeat(t2 as u32, |kb| {
        kb.glb_to_shr(AddrExpr::lane(), dsums, AddrExpr::loop_var(0) * bi + AddrExpr::lane());
        // Inner Hillis–Steele: loop depth 1 inside this loop.
        kb.repeat(steps, |kb| {
            kb.alu(AluOp::Shl, 0, Operand::Imm(1), Operand::LoopVar(1));
            kb.when(PredExpr::Le(Operand::Reg(0), Operand::Lane), |kb| {
                kb.ld_shr(1, AddrExpr::lane() - AddrExpr::reg(0));
                kb.ld_shr(2, AddrExpr::lane());
                kb.alu(AluOp::Add, 1, Operand::Reg(1), Operand::Reg(2));
                kb.st_shr(AddrExpr::lane(), Operand::Reg(1));
            });
        });
        kb.ld_shr(3, AddrExpr::c(bi)); // carry
        kb.ld_shr(4, AddrExpr::lane());
        kb.alu(AluOp::Add, 4, Operand::Reg(4), Operand::Reg(3));
        kb.st_shr(AddrExpr::lane(), Operand::Reg(4));
        kb.shr_to_glb(dsums, AddrExpr::loop_var(0) * bi + AddrExpr::lane(), AddrExpr::lane());
        kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(bi - 1)), |kb| {
            kb.st_shr(AddrExpr::c(bi), Operand::Reg(4));
        });
    });
    kb.build()
}

/// Round-3 kernel: each block adds the scanned total of the preceding
/// blocks to its chunk.
fn scan_offsets_kernel(
    k: u64,
    b: u64,
    dpart: atgpu_ir::DBuf,
    dsums: atgpu_ir::DBuf,
    dout: atgpu_ir::DBuf,
) -> atgpu_ir::Kernel {
    let bi = b as i64;
    let mut kb = KernelBuilder::new("scan_offsets", k, b + 1);
    kb.glb_to_shr(AddrExpr::lane(), dpart, AddrExpr::block() * bi + AddrExpr::lane());
    kb.when(PredExpr::Lt(Operand::Imm(0), Operand::Block), |kb| {
        kb.glb_to_shr(AddrExpr::c(bi), dsums, AddrExpr::block() - 1);
    });
    kb.ld_shr(0, AddrExpr::lane());
    kb.ld_shr(1, AddrExpr::c(bi));
    kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(1));
    kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
    kb.shr_to_glb(dout, AddrExpr::block() * bi + AddrExpr::lane(), AddrExpr::lane());
    kb.build()
}

impl Workload for Scan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let (k, b, steps, t2) = self.check_sharded(machine)?;
        let n = self.n;

        let mut pb = ProgramBuilder::new("scan");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Out", n);
        let din = pb.device_alloc("a", n);
        let dpart = pb.device_alloc("part", n);
        let dsums = pb.device_alloc("sums", k);
        let dout = pb.device_alloc("out", n);

        // Round 1: block-local scans.
        pb.begin_round();
        pb.transfer_in(hin, din, n);
        pb.launch(scan_blocks_kernel(k, b, steps, din, dpart, dsums));

        // Round 2: scan the block sums with a sequential carry.
        pb.begin_round();
        pb.launch(scan_sums_kernel(b, steps, t2, dsums));

        // Round 3: add the preceding blocks' total.
        pb.begin_round();
        pb.launch(scan_offsets_kernel(k, b, dpart, dsums, dout));
        pb.transfer_out(dout, hout, n);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        let k = machine.blocks_for(n);
        let steps = b.trailing_zeros() as u64;
        let t2 = k.div_ceil(b);
        let pad = |w: u64| w.div_ceil(b) * b;
        let global_words = 3 * pad(n) + pad(k);
        let hs = hillis_steele_ops(steps);
        Some(AlgoMetrics::new(vec![
            RoundMetrics {
                time: 1 + hs + 1 + 2, // load + scan + store + guarded sums store
                io_blocks: 3 * k,     // load + partial store + sums store (full-lane count)
                global_words,
                shared_words: b,
                inward_words: n,
                inward_txns: 1,
                outward_words: 0,
                outward_txns: 0,
                blocks_launched: k,
            },
            RoundMetrics {
                time: t2 * (1 + hs + 4 + 1 + 2), // load + scan + carry-add + store + guarded carry
                io_blocks: 2 * t2,
                global_words,
                shared_words: b + 1,
                inward_words: 0,
                inward_txns: 0,
                outward_words: 0,
                outward_txns: 0,
                blocks_launched: 1,
            },
            RoundMetrics {
                time: 1 + 2 + 4 + 1, // load + guarded offset load + add chain + store
                io_blocks: 3 * k,    // offset load counted for all k blocks (conservative)
                global_words,
                shared_words: b + 1,
                inward_words: 0,
                inward_txns: 0,
                outward_words: n,
                outward_txns: 1,
                blocks_launched: k,
            },
        ]))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("rounds", Term::c(3.0)),
            BigO::new("io", Term::n().over(Term::b()).times(Term::c(8.0))),
            BigO::new("transfer", Term::n()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn analyzer_matches_closed_form() {
        let m = test_machine();
        for n in [32u64, 1000, 4096, 4099] {
            let w = Scan::new(n, 3);
            let built = w.build(&m).unwrap();
            assert_eq!(
                analyze_program(&built.program, &m).unwrap().metrics(),
                w.closed_form(&m).unwrap(),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn simulation_matches_host() {
        for n in [1u64, 31, 32, 33, 1000, 2048, 4099] {
            let w = Scan::new(n, n);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn all_ones_scan_is_identity_ramp() {
        let w = Scan::from_data(vec![1; 100]);
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        let out = r.output(atgpu_ir::HBuf(1));
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn empty_rejected() {
        assert!(Scan::from_data(vec![]).build(&test_machine()).is_err());
    }

    #[test]
    fn three_rounds() {
        let w = Scan::new(10_000, 0);
        let built = w.build(&test_machine()).unwrap();
        assert_eq!(built.program.num_rounds(), 3);
    }

    use crate::workload::verify_built_on_cluster;
    use atgpu_model::{ClusterSpec, LinkParams};

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, test_spec())
    }

    #[test]
    fn sharded_gather_scatter_matches_host() {
        let m = test_machine();
        for devices in [1u32, 2, 3, 4] {
            for n in [200u64, 2048, 4099] {
                let w = Scan::new(n, n + devices as u64);
                let built = w.build_sharded(&m, devices).unwrap();
                verify_built_on_cluster(
                    &built,
                    &[w.host_reference()],
                    &m,
                    &cluster(devices as usize),
                    &SimConfig::default(),
                )
                .unwrap_or_else(|e| panic!("devices={devices} n={n}: {e}"));
            }
        }
    }

    #[test]
    fn planned_sharding_verifies_on_asymmetric_peer_cluster() {
        let m = test_machine();
        let mut spec = cluster(3);
        // The gather/scatter hub is device 0: make its peer edges to
        // device 2 expensive so the planner reshuffles, and the built
        // plan must still verify bit-identically.
        spec.peer_links[0][2] = LinkParams { alpha_ms: 4.0, beta_ms_per_word: 0.25 };
        spec.peer_links[2][0] = LinkParams { alpha_ms: 4.0, beta_ms_per_word: 0.25 };
        let w = Scan::new(5000, 17);
        let built = w.build_sharded_planned(&m, &spec).unwrap();
        verify_built_on_cluster(&built, &[w.host_reference()], &m, &spec, &SimConfig::default())
            .unwrap();
    }

    #[test]
    fn explicit_uneven_plan_matches_host() {
        let m = test_machine();
        let w = Scan::new(3000, 5);
        let k = m.blocks_for(3000);
        let shards = vec![
            Shard { device: 1, start: 0, end: 10 },
            Shard { device: 0, start: 10, end: 11 },
            Shard { device: 2, start: 11, end: k },
        ];
        let built = w.build_sharded_with(&m, shards).unwrap();
        verify_built_on_cluster(
            &built,
            &[w.host_reference()],
            &m,
            &cluster(3),
            &SimConfig::default(),
        )
        .unwrap();
    }
}
