//! Tree reduction — the paper's §IV-B workload (Figure 4).
//!
//! "We implement a simple reduction kernel \[Harris\] using the addition
//! operator, to sum an array of `n` integers, using a tree-based method.
//! […] each round using the output from the previous round as input."
//!
//! The algorithm runs `R = ⌈log_b n⌉` rounds; round `i` launches
//! `kᵢ = ⌈nᵢ₋₁/b⌉` blocks, each reducing `b` words in shared memory and
//! writing one partial.  Data is transferred inward once (round 1) and a
//! single word outward (last round) — transfer complexity `O(α + βn)`.
//!
//! Two kernel variants are provided, mirroring Harris's optimisation
//! steps (and the paper's future-work call for "further investigation of
//! reduction algorithms on the ATGPU"):
//!
//! * [`ReduceVariant::InterleavedModulo`] — the basic kernel the paper
//!   cites: stride `s` doubles each step and the active-lane test is
//!   `j mod 2s = 0`, maximising divergence (3 extra ALU ops per step);
//! * [`ReduceVariant::SequentialAddressing`] — the refined kernel:
//!   stride halves from `b/2` and active lanes are the compact prefix
//!   `j < s`.

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{
    AddrExpr, AluOp, DBuf, HBuf, Kernel, KernelBuilder, Operand, PredExpr, ProgramBuilder,
};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, RoundMetrics};

/// Which reduction kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceVariant {
    /// Harris's basic interleaved kernel with the modulo test (the
    /// paper's choice).
    InterleavedModulo,
    /// The sequential-addressing refinement.
    SequentialAddressing,
}

impl ReduceVariant {
    /// Lockstep time ops of one round's kernel for machine width `b`.
    ///
    /// The tree steps are unrolled with immediate strides (the stride of
    /// step `t` is a compile-time constant), so the per-step cost is the
    /// active test plus the 4-op arm — no stride recomputation.
    pub fn round_time_ops(&self, b: u64) -> u64 {
        let steps = b.trailing_zeros() as u64; // log2(b)
        match self {
            // load + steps·(16-cycle rem + pred + 4-op arm)
            // + final pred + store
            ReduceVariant::InterleavedModulo => 1 + steps * 21 + 2,
            // load + steps·(pred + 4-op arm) + final pred + store
            ReduceVariant::SequentialAddressing => 1 + steps * 5 + 2,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ReduceVariant::InterleavedModulo => "interleaved-mod",
            ReduceVariant::SequentialAddressing => "sequential-addr",
        }
    }
}

/// Requires `b` to be a power of two ≥ 2 (the tree halves each step).
fn check_machine(machine: &AtgpuMachine) -> Result<(), AlgosError> {
    if !machine.b.is_power_of_two() || machine.b < 2 {
        return Err(AlgosError::InvalidMachine {
            reason: format!("tree reduction needs b to be a power of two ≥ 2, got {}", machine.b),
        });
    }
    Ok(())
}

/// Builds one reduction-round kernel: `k` blocks reduce `src` (the
/// previous level) into one partial per block in `dst`.
///
/// The `log₂ b` tree steps are **unrolled with immediate strides**: the
/// stride of step `t` is a compile-time constant, so every shared access
/// is static affine and every active-lane test folds to a constant mask
/// (the simulator's masked-affine shape).  The whole kernel then
/// compiles to the static timing path and qualifies for block-invariant
/// replay — the interleaved variant keeps its deliberately divergent
/// modulo test (and its 16-cycle `rem`), it just no longer recomputes
/// the stride at run time.
pub fn reduce_round_kernel(
    name: impl Into<String>,
    src: DBuf,
    dst: DBuf,
    k: u64,
    machine: &AtgpuMachine,
    variant: ReduceVariant,
) -> Kernel {
    let b = machine.b as i64;
    let steps = machine.b.trailing_zeros();
    let mut kb = KernelBuilder::new(name, k, machine.b);
    // _s[j] ⇐ src[i·b + j]
    kb.glb_to_shr(AddrExpr::lane(), src, AddrExpr::block() * b + AddrExpr::lane());
    match variant {
        ReduceVariant::InterleavedModulo => {
            for t in 0..steps {
                // s = 2^t; active iff j mod 2s = 0; _s[j] += _s[j+s]
                let s = 1i64 << t;
                kb.alu(AluOp::Rem, 2, Operand::Lane, Operand::Imm(2 * s));
                kb.when(PredExpr::Eq(Operand::Reg(2), Operand::Imm(0)), |kb| {
                    kb.ld_shr(3, AddrExpr::lane());
                    kb.ld_shr(4, AddrExpr::lane() + s);
                    kb.alu(AluOp::Add, 3, Operand::Reg(3), Operand::Reg(4));
                    kb.st_shr(AddrExpr::lane(), Operand::Reg(3));
                });
            }
        }
        ReduceVariant::SequentialAddressing => {
            for t in 0..steps {
                // s = (b/2) >> t; active iff j < s; _s[j] += _s[j+s]
                let s = (b / 2) >> t;
                kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(s)), |kb| {
                    kb.ld_shr(3, AddrExpr::lane());
                    kb.ld_shr(4, AddrExpr::lane() + s);
                    kb.alu(AluOp::Add, 3, Operand::Reg(3), Operand::Reg(4));
                    kb.st_shr(AddrExpr::lane(), Operand::Reg(3));
                });
            }
        }
    }
    // if j = 0 then dst[i] ⇐ _s[0]
    kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
        kb.shr_to_glb(dst, AddrExpr::block(), AddrExpr::c(0));
    });
    kb.build()
}

/// The level sizes `n = n₀ > n₁ > … > n_R = 1` of the reduction tree.
pub fn level_sizes(n: u64, b: u64) -> Vec<u64> {
    let mut out = vec![n.max(1)];
    let mut cur = n.max(1);
    while cur > 1 {
        cur = cur.div_ceil(b);
        out.push(cur);
    }
    out
}

/// Appends the reduction rounds for `src` (holding `n` words) to an open
/// program.  When `start_new_round` is false the first kernel joins the
/// currently open round (so it shares the round with the inward
/// transfer, as the paper's program does).  The final round transfers
/// the 1-word result to `out`.
pub fn append_reduce_rounds(
    pb: &mut ProgramBuilder,
    src: DBuf,
    n: u64,
    machine: &AtgpuMachine,
    variant: ReduceVariant,
    out: HBuf,
    start_new_round: bool,
) -> Result<(), AlgosError> {
    check_machine(machine)?;
    let levels = level_sizes(n, machine.b);
    let mut cur_buf = src;
    let mut first = true;
    for (depth, window) in levels.windows(2).enumerate() {
        let (cur_n, next_n) = (window[0], window[1]);
        debug_assert_eq!(next_n, cur_n.div_ceil(machine.b));
        let dst = pb.device_alloc(format!("partial{depth}"), next_n);
        if !first || start_new_round {
            pb.begin_round();
        }
        pb.launch(reduce_round_kernel(
            format!("reduce_level{depth}"),
            cur_buf,
            dst,
            next_n,
            machine,
            variant,
        ));
        cur_buf = dst;
        first = false;
    }
    pb.transfer_out(cur_buf, out, 1);
    Ok(())
}

/// Exact closed-form metrics for the reduction rounds (kernel part only;
/// callers add the transfer words of their own program shape).
pub fn reduce_round_shapes(
    n: u64,
    machine: &AtgpuMachine,
    variant: ReduceVariant,
) -> Vec<(u64, u64, u64)> {
    // (time, io, blocks) per kernel round.
    let levels = level_sizes(n, machine.b);
    levels
        .windows(2)
        .map(|w| {
            let k = w[1];
            (variant.round_time_ops(machine.b), 2 * k, k)
        })
        .collect()
}

/// A reduction instance: sum of `n` integers.
#[derive(Debug, Clone)]
pub struct Reduce {
    n: u64,
    data: Vec<i64>,
    variant: ReduceVariant,
}

impl Reduce {
    /// Random 0/1 instance of size `n` (the paper's input distribution).
    pub fn new(n: u64, seed: u64) -> Self {
        Self::with_variant(n, seed, ReduceVariant::InterleavedModulo)
    }

    /// Random instance with an explicit kernel variant.
    pub fn with_variant(n: u64, seed: u64, variant: ReduceVariant) -> Self {
        Self { n, data: gen::zero_ones(n, seed), variant }
    }

    /// Instance from explicit data.
    pub fn from_data(data: Vec<i64>, variant: ReduceVariant) -> Self {
        Self { n: data.len() as u64, data, variant }
    }

    /// Host reference: the sum.
    pub fn host_reference(&self) -> i64 {
        self.data.iter().sum()
    }

    /// The kernel variant in use.
    pub fn variant(&self) -> ReduceVariant {
        self.variant
    }

    /// Builds a **multi-device** reduction: round 1 shards the first tree
    /// level across devices (each device receives its block-aligned input
    /// slice and reduces it to one partial per block), then the partials
    /// are gathered onto device 0 over the peer links — one
    /// `TransferPeer` transaction per contributing device, the
    /// "device-finish" communication scheme — and the remaining
    /// `⌈log_b n⌉ − 1` levels finish on device 0 alone.
    pub fn build_sharded(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
    ) -> Result<BuiltProgram, AlgosError> {
        let k1 = self.n.div_ceil(machine.b.max(1));
        self.build_sharded_with(machine, atgpu_sim::even_shards(k1, devices))
    }

    /// The per-block cost shape of the sharded first level: `b` input
    /// words in per block, one partial out per block — gathered to
    /// device 0 over peer links, which the profile now declares as a
    /// merge (`merge_words_per_unit: 1` to owner 0), so the planner
    /// prices the gather on the directed peer matrix instead of
    /// ignoring it.
    pub fn shard_profile(&self, machine: &AtgpuMachine) -> atgpu_model::ShardProfile {
        let b = machine.b.max(1);
        let shapes = reduce_round_shapes(self.n, machine, self.variant);
        let (time, io, k1) = shapes.first().copied().unwrap_or((0, 0, 1));
        atgpu_model::ShardProfile {
            time_ops: time,
            io_blocks_per_unit: io / k1.max(1),
            inward_words_per_unit: b,
            inward_txns: 1,
            shared_words: b,
            peer: atgpu_model::PeerProfile {
                merge_words_per_unit: 1,
                merge_txns: 1,
                owner: 0,
                ..atgpu_model::PeerProfile::default()
            },
            ..atgpu_model::ShardProfile::default()
        }
    }

    /// [`Self::build_sharded`] with the first level apportioned by the
    /// **cost-driven planner**: candidate plans priced with
    /// [`Self::shard_profile`] through the cluster cost function, so a
    /// slow host link costs its device first-level blocks and the peer
    /// gather of partials to device 0 is priced per unit on the
    /// directed peer matrix.
    pub fn build_sharded_planned(
        &self,
        machine: &AtgpuMachine,
        cluster: &atgpu_model::ClusterSpec,
    ) -> Result<BuiltProgram, AlgosError> {
        let k1 = self.n.div_ceil(machine.b.max(1));
        let shards = atgpu_sim::planned_shards(k1, cluster, machine, &self.shard_profile(machine));
        self.build_sharded_with(machine, shards)
    }

    fn build_sharded_with(
        &self,
        machine: &AtgpuMachine,
        shards: Vec<atgpu_ir::Shard>,
    ) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        check_machine(machine)?;
        let n = self.n;
        let b = machine.b;
        let mut pb = ProgramBuilder::new("reduce_sharded");
        let ha = pb.host_input("A", n);
        let hout = pb.host_output("Ans", 1);
        let d0 = pb.device_alloc("a", n);

        if n == 1 {
            // Degenerate: one word in, one word out, no kernel.
            pb.begin_round();
            pb.transfer_in(ha, d0, 1);
            pb.transfer_out(d0, hout, 1);
        } else {
            // Round 1: sharded first level.
            let k1 = n.div_ceil(b);
            crate::vecadd::check_shards_fit(&shards, k1)?;
            let dpart = pb.device_alloc("partial0", k1);
            pb.begin_round();
            for s in &shards {
                let off = s.start * b;
                let words = (s.end * b).min(n) - off;
                pb.transfer_in_to(s.device, ha, off, d0, off, words);
            }
            pb.launch_sharded(
                reduce_round_kernel("reduce_level0", d0, dpart, k1, machine, self.variant),
                shards.clone(),
            );
            // Gather every device's partials onto device 0.
            for s in shards.iter().filter(|s| s.device != 0) {
                pb.transfer_peer(s.device, 0, dpart, s.start, s.start, s.blocks());
            }
            // Remaining levels on device 0.
            append_reduce_rounds(&mut pb, dpart, k1, machine, self.variant, hout, true)?;
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }
}

impl Workload for Reduce {
    fn name(&self) -> &'static str {
        "reduce"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        check_machine(machine)?;
        let n = self.n;
        let mut pb = ProgramBuilder::new("reduce");
        let ha = pb.host_input("A", n);
        let hout = pb.host_output("Ans", 1);
        let d0 = pb.device_alloc("a", n);
        pb.begin_round();
        pb.transfer_in(ha, d0, n); // a W A
        append_reduce_rounds(&mut pb, d0, n, machine, self.variant, hout, false)?;
        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![vec![self.host_reference()]]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let b = machine.b;
        let pad = |w: u64| w.div_ceil(b) * b;
        let levels = level_sizes(self.n, b);
        let global_words: u64 = levels.iter().map(|&w| pad(w)).sum();
        let shapes = reduce_round_shapes(self.n, machine, self.variant);
        let r = shapes.len();
        let mut rounds: Vec<RoundMetrics> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(time, io, k))| RoundMetrics {
                time,
                io_blocks: io,
                global_words,
                shared_words: b,
                inward_words: if i == 0 { self.n } else { 0 },
                inward_txns: u64::from(i == 0),
                outward_words: if i + 1 == r { 1 } else { 0 },
                outward_txns: u64::from(i + 1 == r),
                blocks_launched: k,
            })
            .collect();
        if rounds.is_empty() {
            // n = 1: a single transfer-only round.
            rounds.push(RoundMetrics {
                global_words,
                shared_words: 0,
                inward_words: 1,
                inward_txns: 1,
                outward_words: 1,
                outward_txns: 1,
                ..RoundMetrics::default()
            });
        }
        Some(AlgoMetrics::new(rounds))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        // Paper: R = O(log n); time O(log b · log n); I/O O((n/b)·(1−1/b)⁻¹…);
        // transfer O(α + βn); global space O(n); shared O(b).
        vec![
            BigO::new("rounds", Term::n().log_b()),
            BigO::new("time", Term::b().log2().times(Term::n().log_b())),
            BigO::new("io", Term::n().over(Term::b()).times(Term::c(2.2))),
            BigO::new("global_space", Term::n().times(Term::c(1.2))),
            BigO::new("shared_space", Term::b()),
            BigO::new("transfer", Term::n().plus(Term::c(1.0))),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn level_sizes_shrink_by_b() {
        assert_eq!(level_sizes(32 * 32, 32), vec![1024, 32, 1]);
        assert_eq!(level_sizes(1025, 32), vec![1025, 33, 2, 1]);
        assert_eq!(level_sizes(1, 32), vec![1]);
        assert_eq!(level_sizes(31, 32), vec![31, 1]);
    }

    #[test]
    fn analyzer_matches_closed_form_both_variants() {
        let m = test_machine();
        for variant in [ReduceVariant::InterleavedModulo, ReduceVariant::SequentialAddressing] {
            for n in [32u64, 1000, 1 << 12, (1 << 12) + 17] {
                let w = Reduce::with_variant(n, 1, variant);
                let built = w.build(&m).unwrap();
                let analysis = analyze_program(&built.program, &m).unwrap();
                assert_eq!(
                    analysis.metrics(),
                    w.closed_form(&m).unwrap(),
                    "mismatch at n={n} variant={variant:?}"
                );
            }
        }
    }

    #[test]
    fn rounds_count_is_ceil_log_b() {
        let m = test_machine();
        let w = Reduce::new(1 << 20, 1); // 32^4 = 2^20: exactly 4 rounds
        let built = w.build(&m).unwrap();
        assert_eq!(built.program.num_rounds(), 4);
    }

    #[test]
    fn simulation_sums_correctly_interleaved() {
        for n in [1u64, 5, 32, 100, 2048, 4099] {
            let w = Reduce::with_variant(n, n, ReduceVariant::InterleavedModulo);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn simulation_sums_correctly_sequential() {
        for n in [32u64, 1000, 4099] {
            let w = Reduce::with_variant(n, n, ReduceVariant::SequentialAddressing);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn negative_values_sum_correctly() {
        let w = Reduce::from_data(vec![-5, 3, -2, 10, 0, 1], ReduceVariant::InterleavedModulo);
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        assert_eq!(r.output(atgpu_ir::HBuf(1)), &[7]);
    }

    #[test]
    fn reduce_kernels_compile_to_the_static_masked_path() {
        // Regression for the ROADMAP item "engine-accelerated reduce":
        // both variants' strided partial-mask phases must compile to the
        // masked-affine static path — every site static affine with a
        // compile-time mask and a baked degree — and the whole kernel
        // must qualify for block-invariant timing replay (the engine's
        // fastest path).
        use atgpu_sim::uop::{CompiledKernel, SiteAddr};
        let m = test_machine();
        for variant in [ReduceVariant::InterleavedModulo, ReduceVariant::SequentialAddressing] {
            let k = reduce_round_kernel("r", DBuf(0), DBuf(1), 8, &m, variant);
            let nregs = k.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
            let c = CompiledKernel::compile(&k, &[0, 1024], m.b as u32, nregs);
            assert!(c.replayable, "{variant:?} must be replayable");
            for (i, site) in c.sites.iter().enumerate() {
                assert!(
                    matches!(site.addr, SiteAddr::Affine(a) if a.is_static()),
                    "{variant:?} site {i} not static affine"
                );
                assert!(site.mask.is_some(), "{variant:?} site {i} lacks a compile-time mask");
            }
            // Every shared site has an exact baked degree; every global
            // site has a transaction table.
            let (shared, global): (Vec<_>, Vec<_>) =
                c.sites.iter().partition(|s| s.txn_table.is_none());
            assert!(shared.iter().all(|s| s.masked_degree.is_some() || s.full_degree == Some(1)));
            assert!(!global.is_empty());
        }
    }

    #[test]
    fn interleaved_kernel_is_slower_than_sequential() {
        // The divergent modulo kernel does more lockstep work per round.
        let b = test_machine().b;
        assert!(
            ReduceVariant::InterleavedModulo.round_time_ops(b)
                > ReduceVariant::SequentialAddressing.round_time_ops(b)
        );
    }

    #[test]
    fn non_power_of_two_b_rejected() {
        let m = AtgpuMachine::new(48 * 4, 48, 1024, 1 << 20).unwrap();
        assert!(Reduce::new(100, 1).build(&m).is_err());
    }

    #[test]
    fn transfer_share_moderate_like_paper() {
        // Paper: reduction transfer ≈ 35% of total — much lower than
        // vector addition's 84%.  Check we reproduce the *ordering*.
        let spec = atgpu_model::GpuSpec::gtx650_like();
        let m = test_machine();
        let cfg = SimConfig::default();
        let red = verify_on_sim(&Reduce::new(1 << 16, 3), &m, &spec, &cfg).unwrap();
        let va = verify_on_sim(&crate::vecadd::VecAdd::new(1 << 16, 3), &m, &spec, &cfg).unwrap();
        assert!(
            red.transfer_proportion() < va.transfer_proportion(),
            "reduce ΔE {} should be below vecadd ΔE {}",
            red.transfer_proportion(),
            va.transfer_proportion()
        );
    }

    #[test]
    fn sharded_build_verifies_on_clusters() {
        use crate::workload::verify_built_on_cluster;
        let m = test_machine();
        for devices in [1u32, 2, 3, 4] {
            for n in [1u64, 32, 1000, 4099] {
                let w = Reduce::with_variant(n, n, ReduceVariant::SequentialAddressing);
                let built = w.build_sharded(&m, devices).unwrap();
                let cluster = atgpu_model::ClusterSpec::homogeneous(devices as usize, test_spec());
                let report = verify_built_on_cluster(
                    &built,
                    &w.expected(),
                    &m,
                    &cluster,
                    &SimConfig::default(),
                )
                .unwrap_or_else(|e| panic!("devices={devices} n={n}: {e}"));
                // With several devices the gather crosses peer links.
                if devices > 1 && n > 32 {
                    let r0 = &report.rounds[0];
                    assert!(r0.devices[0].peer_ms > 0.0, "devices={devices} n={n}");
                }
            }
        }
    }

    /// The cost-driven planner on an asymmetric-link cluster: the
    /// slow-link device reduces fewer first-level blocks, and the result
    /// still verifies.
    #[test]
    fn planned_sharding_verifies_on_asymmetric_links() {
        use crate::workload::verify_built_on_cluster;
        let m = test_machine();
        let w = Reduce::new(8192, 9);
        let mut cluster = atgpu_model::ClusterSpec::homogeneous(2, test_spec());
        cluster.host_links[1] = atgpu_model::LinkParams {
            alpha_ms: cluster.host_links[1].alpha_ms * 8.0,
            beta_ms_per_word: cluster.host_links[1].beta_ms_per_word * 8.0,
        };
        let built = w.build_sharded_planned(&m, &cluster).unwrap();
        let report =
            verify_built_on_cluster(&built, &w.expected(), &m, &cluster, &SimConfig::default())
                .unwrap();
        let blocks: Vec<u64> =
            report.rounds[0].devices.iter().map(|d| d.kernel_stats.blocks).collect();
        assert!(blocks[1] < blocks[0], "slow-link device over-assigned: {blocks:?}");
    }

    #[test]
    fn parallel_mode_agrees() {
        let w = Reduce::new(4096, 5);
        let cfg = SimConfig {
            mode: atgpu_sim::ExecMode::Parallel { threads: 2 },
            ..SimConfig::default()
        };
        verify_on_sim(&w, &test_machine(), &test_spec(), &cfg).unwrap();
    }
}
