//! Dot product — extension workload combining an elementwise round with
//! the reduction tree.
//!
//! Round 1 transfers both vectors and launches an elementwise multiply;
//! rounds 2…R run the tree reduction over the products (no further
//! transfer until the final scalar comes back).  A natural "other
//! computational problem" for the paper's future-work programme and a
//! nice exercise of multi-round composition.

use crate::error::AlgosError;
use crate::gen;
use crate::reduce::{append_reduce_rounds, level_sizes, reduce_round_shapes, ReduceVariant};
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, RoundMetrics};

/// A dot-product instance `x · y`.
#[derive(Debug, Clone)]
pub struct Dot {
    n: u64,
    x: Vec<i64>,
    y: Vec<i64>,
    variant: ReduceVariant,
}

impl Dot {
    /// Random instance of size `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self {
            n,
            x: gen::vec_in_range(n, -30, 30, seed),
            y: gen::vec_in_range(n, -30, 30, seed.wrapping_add(1)),
            variant: ReduceVariant::SequentialAddressing,
        }
    }

    /// Host reference.
    pub fn host_reference(&self) -> i64 {
        self.x.iter().zip(&self.y).map(|(a, b)| a * b).sum()
    }
}

impl Workload for Dot {
    fn name(&self) -> &'static str {
        "dot"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty vectors".into() });
        }
        let b = machine.b as i64;
        let n = self.n;
        let k = machine.blocks_for(n);

        let mut pb = ProgramBuilder::new("dot");
        let hx = pb.host_input("X", n);
        let hy = pb.host_input("Y", n);
        let hout = pb.host_output("Ans", 1);
        let dx = pb.device_alloc("x", n);
        let dy = pb.device_alloc("y", n);
        let dp = pb.device_alloc("prod", n);

        // Round 1: elementwise multiply into prod.
        let mut kb = KernelBuilder::new("dot_mul_kernel", k, 3 * machine.b);
        let g = AddrExpr::block() * b + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), dx, g.clone());
        kb.glb_to_shr(AddrExpr::lane() + b, dy, g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + b);
        kb.alu(AluOp::Mul, 2, Operand::Reg(0), Operand::Reg(1));
        kb.st_shr(AddrExpr::lane() + 2 * b, Operand::Reg(2));
        kb.shr_to_glb(dp, g, AddrExpr::lane() + 2 * b);

        pb.begin_round();
        pb.transfer_in(hx, dx, n);
        pb.transfer_in(hy, dy, n);
        pb.launch(kb.build());

        // Rounds 2…R: reduce the products.
        append_reduce_rounds(&mut pb, dp, n, machine, self.variant, hout, true)?;

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.x.clone(), self.y.clone()],
            outputs: vec![hout],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![vec![self.host_reference()]]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        let k = machine.blocks_for(n);
        let pad = |w: u64| w.div_ceil(b) * b;
        // Buffers: x, y, prod, then the reduction chain below prod.
        let chain: u64 = level_sizes(n, b).iter().skip(1).map(|&w| pad(w)).sum();
        let global_words = 3 * pad(n) + chain;

        let mut rounds = vec![RoundMetrics {
            time: 7,
            io_blocks: 3 * k,
            global_words,
            shared_words: 3 * b,
            inward_words: 2 * n,
            inward_txns: 2,
            outward_words: 0,
            outward_txns: 0,
            blocks_launched: k,
        }];
        let shapes = reduce_round_shapes(n, machine, self.variant);
        let r = shapes.len();
        for (i, (time, io, blocks)) in shapes.into_iter().enumerate() {
            rounds.push(RoundMetrics {
                time,
                io_blocks: io,
                global_words,
                shared_words: b,
                inward_words: 0,
                inward_txns: 0,
                outward_words: if i + 1 == r { 1 } else { 0 },
                outward_txns: u64::from(i + 1 == r),
                blocks_launched: blocks,
            });
        }
        if r == 0 {
            // n = 1: the multiply round also carries the outward word.
            rounds[0].outward_words = 1;
            rounds[0].outward_txns = 1;
        }
        Some(AlgoMetrics::new(rounds))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("rounds", Term::n().log_b().plus(Term::c(1.0))),
            BigO::new("io", Term::n().over(Term::b()).times(Term::c(5.2))),
            BigO::new("transfer", Term::n()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn analyzer_matches_closed_form() {
        let m = test_machine();
        for n in [1u64, 32, 1000, 4099] {
            let w = Dot::new(n, 3);
            let built = w.build(&m).unwrap();
            assert_eq!(
                analyze_program(&built.program, &m).unwrap().metrics(),
                w.closed_form(&m).unwrap(),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn simulation_matches_host() {
        for n in [1u64, 7, 32, 500, 2048] {
            let w = Dot::new(n, n + 1);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn orthogonal_vectors_give_zero() {
        let w = Dot {
            n: 4,
            x: vec![1, 0, -1, 0],
            y: vec![0, 5, 0, 9],
            variant: ReduceVariant::SequentialAddressing,
        };
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        assert_eq!(r.output(atgpu_ir::HBuf(2)), &[0]);
    }
}
