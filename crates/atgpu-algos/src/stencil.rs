//! 1-D three-point stencil — extension workload with halo loads.
//!
//! `out[i] = in[i−1] + in[i] + in[i+1]` with zero boundaries.  The input
//! is staged into a device buffer at offset 1 so the halo cells are the
//! zero-initialised words on either side; each block loads its `b`-word
//! chunk plus a two-word halo (a guarded, partially-masked global access).
//! One round, transfer-dominated like vector addition but with a slightly
//! richer access pattern.
//!
//! The **iterated** variants ([`Stencil::build_iterated`] and the
//! sharded family around [`Stencil::build_sharded_with`]) apply the
//! stencil `rounds` times, ping-ponging between two padded buffers.  On
//! a cluster each device owns a contiguous slab of cells and, before
//! every round after the first, exchanges its single boundary cell with
//! each slab neighbour over the **directed peer links** — the canonical
//! halo-exchange pattern, and the workload whose peer traffic the
//! cost-driven planner prices through [`Stencil::shard_profile`].

use crate::error::AlgosError;
use crate::gen;
use crate::vecadd::check_shards_fit;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{
    AddrExpr, AluOp, DBuf, Kernel, KernelBuilder, Operand, PredExpr, ProgramBuilder, Shard,
};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, PeerProfile, RoundMetrics, ShardProfile};

/// A stencil instance.
#[derive(Debug, Clone)]
pub struct Stencil {
    n: u64,
    data: Vec<i64>,
}

impl Stencil {
    /// Random instance of size `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self { n, data: gen::small_ints(n, seed) }
    }

    /// Instance from explicit data.
    pub fn from_data(data: Vec<i64>) -> Self {
        Self { n: data.len() as u64, data }
    }

    /// Host reference with zero boundaries.
    pub fn host_reference(&self) -> Vec<i64> {
        Self::step(&self.data)
    }

    /// One stencil application with zero boundaries.
    fn step(data: &[i64]) -> Vec<i64> {
        let n = data.len();
        (0..n)
            .map(|i| {
                let left = if i == 0 { 0 } else { data[i - 1] };
                let right = if i + 1 == n { 0 } else { data[i + 1] };
                left.wrapping_add(data[i]).wrapping_add(right)
            })
            .collect()
    }

    /// Host reference of the stencil applied `rounds` times (zero
    /// boundaries every round) — the truth the iterated and sharded
    /// builders are verified against.
    pub fn iterated_reference(&self, rounds: u64) -> Vec<i64> {
        let mut cur = self.data.clone();
        for _ in 0..rounds {
            cur = Self::step(&cur);
        }
        cur
    }

    /// Validates the iterated variants' size constraint: `n` must be a
    /// positive multiple of `b`, so every lane's store lands on a live
    /// cell and the zero halo cells are never overwritten — with a
    /// ragged tail the unguarded store would seed garbage into the pad
    /// region that the next round's halo loads would read back.
    fn check_iterated(
        &self,
        machine: &AtgpuMachine,
        rounds: u64,
    ) -> Result<(u64, u64), AlgosError> {
        let b = machine.b.max(1);
        if self.n == 0 || !self.n.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!(
                    "iterated stencil needs n a positive multiple of b = {b}, got {}",
                    self.n
                ),
            });
        }
        if rounds == 0 {
            return Err(AlgosError::InvalidSize { reason: "rounds must be at least 1".into() });
        }
        Ok((self.n / b, b))
    }

    /// The step kernel: read the `b + 2`-word window of `src` (one-cell
    /// halo each side), sum the three neighbours, store the block's `b`
    /// results into `dst` at pad offset 1 — so cell `i` always lives at
    /// index `i + 1` of whichever buffer holds the current generation,
    /// and the two halo words at the ends stay zero forever.
    fn step_kernel(k: u64, b: u64, src: DBuf, dst: DBuf) -> Kernel {
        let bi = b as i64;
        // Shared layout: window [0, b+2), staging [b+2, 2b+2).
        let mut kb = KernelBuilder::new("stencil_step", k, 2 * b + 2);
        kb.glb_to_shr(AddrExpr::lane(), src, AddrExpr::block() * bi + AddrExpr::lane());
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(2)), |kb| {
            kb.glb_to_shr(
                AddrExpr::lane() + bi,
                src,
                AddrExpr::block() * bi + AddrExpr::lane() + bi,
            );
        });
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + 1);
        kb.ld_shr(2, AddrExpr::lane() + 2);
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(1));
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(2));
        kb.st_shr(AddrExpr::lane() + bi + 2, Operand::Reg(0));
        kb.shr_to_glb(
            dst,
            AddrExpr::block() * bi + AddrExpr::lane() + 1,
            AddrExpr::lane() + bi + 2,
        );
        kb.build()
    }

    /// Single-device iterated stencil: `rounds` applications ping-pong
    /// between two padded buffers, one program round per application —
    /// the baseline the sharded halo-exchange variants are differentially
    /// tested against.  Requires `n` to be a positive multiple of `b`.
    pub fn build_iterated(
        &self,
        machine: &AtgpuMachine,
        rounds: u64,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, b) = self.check_iterated(machine, rounds)?;
        let n = self.n;
        let mut pb = ProgramBuilder::new("stencil-iterated");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Out", n);
        let pads = [pb.device_alloc("pad0", k * b + 2), pb.device_alloc("pad1", k * b + 2)];
        for r in 0..rounds {
            let (src, dst) = (pads[(r % 2) as usize], pads[((r + 1) % 2) as usize]);
            pb.begin_round();
            if r == 0 {
                pb.transfer_in_at(hin, 0, src, 1, n);
            }
            pb.launch(Self::step_kernel(k, b, src, dst));
            if r + 1 == rounds {
                pb.transfer_out_at(dst, 1, hout, 0, n);
            }
        }
        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    /// Iterated stencil over an explicit contiguous shard plan: each
    /// shard stages its slab (widened by one host word each side, the
    /// initial halo), runs the step kernel on its own device's replica,
    /// and — before every round after the first — trades one boundary
    /// cell with each slab neighbour on a *different* device over the
    /// directed peer links (`TransferPeer`, both directions per
    /// boundary).  The last round drains each shard's slab to the host.
    ///
    /// The plan must be a contiguous partition of the `n / b`-block
    /// grid sorted by start (what every planner here emits); adjacent
    /// shards on the *same* device share a replica and need no halo
    /// copies.
    pub fn build_sharded_with(
        &self,
        machine: &AtgpuMachine,
        shards: Vec<Shard>,
        rounds: u64,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, b) = self.check_iterated(machine, rounds)?;
        check_shards_fit(&shards, k)?;
        // Boundary detection walks slabs in cell order regardless of the
        // order the plan lists them in.
        let mut ordered = shards.clone();
        ordered.sort_by_key(|s| s.start);
        let n = self.n;
        let mut pb = ProgramBuilder::new("stencil-sharded");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Out", n);
        let pads = [pb.device_alloc("pad0", k * b + 2), pb.device_alloc("pad1", k * b + 2)];
        for r in 0..rounds {
            let (src, dst) = (pads[(r % 2) as usize], pads[((r + 1) % 2) as usize]);
            pb.begin_round();
            if r == 0 {
                // Stage each slab widened by one word per side: the
                // initial halo comes from the host, later halos over
                // peer links.
                for s in &shards {
                    let lo = (s.start * b).saturating_sub(1);
                    let hi = (s.end * b + 1).min(n);
                    pb.transfer_in_to(s.device, hin, lo, src, lo + 1, hi - lo);
                }
            } else {
                // Halo exchange on the current generation: one cell each
                // way across every shard boundary that crosses devices.
                for w in ordered.windows(2) {
                    if w[0].device == w[1].device {
                        continue;
                    }
                    let c = w[0].end * b;
                    pb.transfer_peer(w[0].device, w[1].device, src, c, c, 1);
                    pb.transfer_peer(w[1].device, w[0].device, src, c + 1, c + 1, 1);
                }
            }
            pb.launch_sharded(Self::step_kernel(k, b, src, dst), shards.clone());
            if r + 1 == rounds {
                for s in &shards {
                    pb.transfer_out_from(
                        s.device,
                        dst,
                        s.start * b + 1,
                        hout,
                        s.start * b,
                        s.blocks() * b,
                    );
                }
            }
        }
        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    /// [`Self::build_sharded_with`] over an even block split.
    pub fn build_sharded(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
        rounds: u64,
    ) -> Result<BuiltProgram, AlgosError> {
        let k = self.n / machine.b.max(1);
        self.build_sharded_with(machine, atgpu_sim::even_shards(k, devices), rounds)
    }

    /// The per-block cost shape of the iterated sharded stencil — the
    /// profile that makes the planner **peer-aware**: `rounds` kernel
    /// rounds, `b` words staged in and drained out per block, and one
    /// boundary cell exchanged with each slab neighbour per direction
    /// per halo round (`halo_words: 1`, one transaction per copy — the
    /// sim's `TransferPeer` accounting).
    pub fn shard_profile(machine: &AtgpuMachine, rounds: u64) -> ShardProfile {
        let b = machine.b.max(1);
        ShardProfile {
            // load + guarded halo (1+1) + 3 loads + 2 adds + stage + store
            time_ops: 10,
            // window load (1) + halo load (1) + off-by-one store (2)
            io_blocks_per_unit: 4,
            inward_words_per_unit: b,
            inward_txns: 1,
            outward_words_per_unit: b,
            outward_txns: 1,
            shared_words: 2 * b + 2,
            rounds,
            peer: PeerProfile { halo_words: 1, halo_txns: 1, ..PeerProfile::default() },
            ..ShardProfile::default()
        }
    }

    /// [`Self::build_sharded_with`] with the slabs chosen by the
    /// **peer-aware cost-driven planner**: candidate plans — including
    /// the drop-device candidates that idle a device with expensive
    /// peer edges — are priced with [`Self::shard_profile`] through the
    /// streamed cluster objective, halo rows and all, and the argmin is
    /// built.  On an asymmetric peer matrix this is where the argmin
    /// flips away from every peer-blind plan (see experiment E13).
    pub fn build_sharded_planned(
        &self,
        machine: &AtgpuMachine,
        cluster: &atgpu_model::ClusterSpec,
        rounds: u64,
    ) -> Result<BuiltProgram, AlgosError> {
        let k = self.n / machine.b.max(1);
        let shards =
            atgpu_sim::planned_shards(k, cluster, machine, &Self::shard_profile(machine, rounds));
        self.build_sharded_with(machine, shards, rounds)
    }
}

impl Workload for Stencil {
    fn name(&self) -> &'static str {
        "stencil"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        let n = self.n;
        let b = machine.b;
        let bi = b as i64;
        let k = machine.blocks_for(n);

        let mut pb = ProgramBuilder::new("stencil");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Out", n);
        // Input staged at offset 1; both halo words are zero-initialised.
        // Sized k·b + 2 so the last block's halo load stays in bounds even
        // when n is not a multiple of b.
        let din = pb.device_alloc("a_pad", k * b + 2);
        let dout = pb.device_alloc("out", n);

        // Shared layout: window [0, b+2), staging [b+2, 2b+2).
        let mut kb = KernelBuilder::new("stencil_kernel", k, 2 * b + 2);
        kb.glb_to_shr(AddrExpr::lane(), din, AddrExpr::block() * bi + AddrExpr::lane());
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(2)), |kb| {
            kb.glb_to_shr(
                AddrExpr::lane() + bi,
                din,
                AddrExpr::block() * bi + AddrExpr::lane() + bi,
            );
        });
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + 1);
        kb.ld_shr(2, AddrExpr::lane() + 2);
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(1));
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(2));
        kb.st_shr(AddrExpr::lane() + bi + 2, Operand::Reg(0));
        kb.shr_to_glb(dout, AddrExpr::block() * bi + AddrExpr::lane(), AddrExpr::lane() + bi + 2);

        pb.begin_round();
        pb.transfer_in_at(hin, 0, din, 1, n);
        pb.launch(kb.build());
        pb.transfer_out(dout, hout, n);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        let k = machine.blocks_for(n);
        let pad = |w: u64| w.div_ceil(b) * b;
        Some(AlgoMetrics::new(vec![RoundMetrics {
            // load + guarded halo (1+1) + 3 loads + 2 adds + stage + store
            time: 1 + 2 + 3 + 2 + 1 + 1,
            // chunk load (1/block) + halo (1/block: both words in the next
            // memory block) + store (1/block)
            io_blocks: 3 * k,
            global_words: pad(k * b + 2) + pad(n),
            shared_words: 2 * b + 2,
            inward_words: n,
            inward_txns: 1,
            outward_words: n,
            outward_txns: 1,
            blocks_launched: k,
        }]))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("time", Term::c(1.0)),
            BigO::new("io", Term::n().over(Term::b()).times(Term::c(3.5))),
            BigO::new("transfer", Term::n()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn analyzer_matches_closed_form() {
        let m = test_machine();
        for n in [32u64, 1000, 4099] {
            let w = Stencil::new(n, 3);
            let built = w.build(&m).unwrap();
            assert_eq!(
                analyze_program(&built.program, &m).unwrap().metrics(),
                w.closed_form(&m).unwrap(),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn simulation_matches_host() {
        for n in [1u64, 2, 31, 32, 33, 1000] {
            let w = Stencil::new(n, n + 5);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn constant_input_gives_triples_inside() {
        let w = Stencil::from_data(vec![5; 64]);
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        let out = r.output(atgpu_ir::HBuf(1));
        assert_eq!(out[0], 10); // boundary
        assert_eq!(out[1], 15);
        assert_eq!(out[62], 15);
        assert_eq!(out[63], 10); // boundary
    }

    use crate::workload::verify_built_on_cluster;
    use atgpu_model::{ClusterSpec, LinkParams};

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, test_spec())
    }

    #[test]
    fn iterated_reference_composes_single_steps() {
        let w = Stencil::new(96, 7);
        assert_eq!(w.iterated_reference(1), w.host_reference());
        let twice = Stencil::from_data(w.host_reference()).host_reference();
        assert_eq!(w.iterated_reference(2), twice);
    }

    #[test]
    fn iterated_build_matches_reference_on_sim() {
        let m = test_machine();
        for rounds in [1u64, 2, 5] {
            let w = Stencil::new(128, rounds + 11);
            let built = w.build_iterated(&m, rounds).unwrap();
            verify_built_on_cluster(
                &built,
                &[w.iterated_reference(rounds)],
                &m,
                &cluster(1),
                &SimConfig::default(),
            )
            .unwrap_or_else(|e| panic!("rounds={rounds}: {e}"));
        }
    }

    #[test]
    fn sharded_halo_exchange_matches_reference() {
        let m = test_machine();
        for devices in [1u32, 2, 3, 4] {
            let w = Stencil::new(256, devices as u64);
            let built = w.build_sharded(&m, devices, 6).unwrap();
            verify_built_on_cluster(
                &built,
                &[w.iterated_reference(6)],
                &m,
                &cluster(devices as usize),
                &SimConfig::default(),
            )
            .unwrap_or_else(|e| panic!("devices={devices}: {e}"));
        }
    }

    #[test]
    fn planned_sharding_verifies_on_asymmetric_peer_cluster() {
        let m = test_machine();
        let mut spec = cluster(3);
        // Make every peer edge touching device 2 expensive: the planner
        // may idle it, and the built plan must still verify.
        for d in 0..3 {
            if d != 2 {
                spec.peer_links[d][2] = LinkParams { alpha_ms: 5.0, beta_ms_per_word: 0.5 };
                spec.peer_links[2][d] = LinkParams { alpha_ms: 5.0, beta_ms_per_word: 0.5 };
            }
        }
        let w = Stencil::new(320, 9);
        let built = w.build_sharded_planned(&m, &spec, 8).unwrap();
        verify_built_on_cluster(
            &built,
            &[w.iterated_reference(8)],
            &m,
            &spec,
            &SimConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn step_kernel_matches_shard_profile_shape() {
        // The profile the planner prices must describe the kernel the
        // builder emits: per-round time and per-block I/O from the
        // analyzer, staged words from the round metrics.
        let m = test_machine();
        let w = Stencil::new(256, 3);
        let built = w.build_iterated(&m, 3).unwrap();
        let a = analyze_program(&built.program, &m).unwrap();
        let profile = Stencil::shard_profile(&m, 3);
        let k = 256 / m.b;
        for round in &a.metrics().rounds {
            assert_eq!(round.time, profile.time_ops);
            assert_eq!(round.io_blocks, profile.io_blocks_per_unit * k);
        }
    }

    #[test]
    fn iterated_rejects_ragged_sizes() {
        let m = test_machine();
        assert!(Stencil::new(33, 0).build_iterated(&m, 2).is_err());
        assert!(Stencil::new(64, 0).build_iterated(&m, 0).is_err());
    }
}
