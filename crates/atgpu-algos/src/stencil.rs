//! 1-D three-point stencil — extension workload with halo loads.
//!
//! `out[i] = in[i−1] + in[i] + in[i+1]` with zero boundaries.  The input
//! is staged into a device buffer at offset 1 so the halo cells are the
//! zero-initialised words on either side; each block loads its `b`-word
//! chunk plus a two-word halo (a guarded, partially-masked global access).
//! One round, transfer-dominated like vector addition but with a slightly
//! richer access pattern.

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, PredExpr, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, RoundMetrics};

/// A stencil instance.
#[derive(Debug, Clone)]
pub struct Stencil {
    n: u64,
    data: Vec<i64>,
}

impl Stencil {
    /// Random instance of size `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self { n, data: gen::small_ints(n, seed) }
    }

    /// Instance from explicit data.
    pub fn from_data(data: Vec<i64>) -> Self {
        Self { n: data.len() as u64, data }
    }

    /// Host reference with zero boundaries.
    pub fn host_reference(&self) -> Vec<i64> {
        let n = self.data.len();
        (0..n)
            .map(|i| {
                let left = if i == 0 { 0 } else { self.data[i - 1] };
                let right = if i + 1 == n { 0 } else { self.data[i + 1] };
                left + self.data[i] + right
            })
            .collect()
    }
}

impl Workload for Stencil {
    fn name(&self) -> &'static str {
        "stencil"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        let n = self.n;
        let b = machine.b;
        let bi = b as i64;
        let k = machine.blocks_for(n);

        let mut pb = ProgramBuilder::new("stencil");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Out", n);
        // Input staged at offset 1; both halo words are zero-initialised.
        // Sized k·b + 2 so the last block's halo load stays in bounds even
        // when n is not a multiple of b.
        let din = pb.device_alloc("a_pad", k * b + 2);
        let dout = pb.device_alloc("out", n);

        // Shared layout: window [0, b+2), staging [b+2, 2b+2).
        let mut kb = KernelBuilder::new("stencil_kernel", k, 2 * b + 2);
        kb.glb_to_shr(AddrExpr::lane(), din, AddrExpr::block() * bi + AddrExpr::lane());
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(2)), |kb| {
            kb.glb_to_shr(
                AddrExpr::lane() + bi,
                din,
                AddrExpr::block() * bi + AddrExpr::lane() + bi,
            );
        });
        kb.ld_shr(0, AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane() + 1);
        kb.ld_shr(2, AddrExpr::lane() + 2);
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(1));
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(2));
        kb.st_shr(AddrExpr::lane() + bi + 2, Operand::Reg(0));
        kb.shr_to_glb(dout, AddrExpr::block() * bi + AddrExpr::lane(), AddrExpr::lane() + bi + 2);

        pb.begin_round();
        pb.transfer_in_at(hin, 0, din, 1, n);
        pb.launch(kb.build());
        pb.transfer_out(dout, hout, n);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        let k = machine.blocks_for(n);
        let pad = |w: u64| w.div_ceil(b) * b;
        Some(AlgoMetrics::new(vec![RoundMetrics {
            // load + guarded halo (1+1) + 3 loads + 2 adds + stage + store
            time: 1 + 2 + 3 + 2 + 1 + 1,
            // chunk load (1/block) + halo (1/block: both words in the next
            // memory block) + store (1/block)
            io_blocks: 3 * k,
            global_words: pad(k * b + 2) + pad(n),
            shared_words: 2 * b + 2,
            inward_words: n,
            inward_txns: 1,
            outward_words: n,
            outward_txns: 1,
            blocks_launched: k,
        }]))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("time", Term::c(1.0)),
            BigO::new("io", Term::n().over(Term::b()).times(Term::c(3.5))),
            BigO::new("transfer", Term::n()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn analyzer_matches_closed_form() {
        let m = test_machine();
        for n in [32u64, 1000, 4099] {
            let w = Stencil::new(n, 3);
            let built = w.build(&m).unwrap();
            assert_eq!(
                analyze_program(&built.program, &m).unwrap().metrics(),
                w.closed_form(&m).unwrap(),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn simulation_matches_host() {
        for n in [1u64, 2, 31, 32, 33, 1000] {
            let w = Stencil::new(n, n + 5);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn constant_input_gives_triples_inside() {
        let w = Stencil::from_data(vec![5; 64]);
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        let out = r.output(atgpu_ir::HBuf(1));
        assert_eq!(out[0], 10); // boundary
        assert_eq!(out[1], 15);
        assert_eq!(out[62], 15);
        assert_eq!(out[63], 10); // boundary
    }
}
