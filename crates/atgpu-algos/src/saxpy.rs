//! SAXPY (`y ← a·x + y`) — extension workload.
//!
//! Same shape as vector addition (one round, embarrassingly parallel,
//! transfer-dominated) with a scalar broadcast: the constant `a` is baked
//! into the kernel as an immediate, as a CUDA kernel would receive it via
//! a launch parameter.

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, RoundMetrics};

/// A SAXPY instance `out = a·x + y`.
#[derive(Debug, Clone)]
pub struct Saxpy {
    n: u64,
    a: i64,
    x: Vec<i64>,
    y: Vec<i64>,
}

impl Saxpy {
    /// Random instance of size `n` with scalar `a`.
    pub fn new(n: u64, a: i64, seed: u64) -> Self {
        Self { n, a, x: gen::small_ints(n, seed), y: gen::small_ints(n, seed.wrapping_add(1)) }
    }

    /// Host reference.
    pub fn host_reference(&self) -> Vec<i64> {
        self.x.iter().zip(&self.y).map(|(x, y)| self.a * x + y).collect()
    }
}

impl Workload for Saxpy {
    fn name(&self) -> &'static str {
        "saxpy"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty vectors".into() });
        }
        let b = machine.b as i64;
        let k = machine.blocks_for(self.n);
        let n = self.n;

        let mut pb = ProgramBuilder::new("saxpy");
        let hx = pb.host_input("X", n);
        let hy = pb.host_input("Y", n);
        let ho = pb.host_output("Out", n);
        let dx = pb.device_alloc("x", n);
        let dy = pb.device_alloc("y", n);
        let dout = pb.device_alloc("out", n);

        let mut kb = KernelBuilder::new("saxpy_kernel", k, 3 * machine.b);
        let g = AddrExpr::block() * b + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), dx, g.clone());
        kb.glb_to_shr(AddrExpr::lane() + b, dy, g.clone());
        kb.ld_shr(0, AddrExpr::lane());
        kb.alu(AluOp::Mul, 0, Operand::Reg(0), Operand::Imm(self.a)); // a·x
        kb.ld_shr(1, AddrExpr::lane() + b);
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(1)); // + y
        kb.st_shr(AddrExpr::lane() + 2 * b, Operand::Reg(0));
        kb.shr_to_glb(dout, g, AddrExpr::lane() + 2 * b);

        pb.begin_round();
        pb.transfer_in(hx, dx, n);
        pb.transfer_in(hy, dy, n);
        pb.launch(kb.build());
        pb.transfer_out(dout, ho, n);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.x.clone(), self.y.clone()],
            outputs: vec![ho],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        let k = machine.blocks_for(n);
        let pad = |w: u64| w.div_ceil(b) * b;
        Some(AlgoMetrics::new(vec![RoundMetrics {
            time: 8,
            io_blocks: 3 * k,
            global_words: 3 * pad(n),
            shared_words: 3 * b,
            inward_words: 2 * n,
            inward_txns: 2,
            outward_words: n,
            outward_txns: 1,
            blocks_launched: k,
        }]))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("time", Term::c(1.0)),
            BigO::new("io", Term::n().over(Term::b()).ceil()),
            BigO::new("transfer", Term::n()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn analyzer_matches_closed_form() {
        let m = test_machine();
        let w = Saxpy::new(1000, 3, 1);
        let built = w.build(&m).unwrap();
        assert_eq!(
            analyze_program(&built.program, &m).unwrap().metrics(),
            w.closed_form(&m).unwrap()
        );
    }

    #[test]
    fn simulation_matches_host() {
        for a in [-2i64, 0, 1, 7] {
            let w = Saxpy::new(500, a, 9);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        }
    }

    #[test]
    fn empty_rejected() {
        assert!(Saxpy::new(0, 1, 0).build(&test_machine()).is_err());
    }
}
