//! Deterministic input generation for workload instances.
//!
//! All workloads generate inputs from a seed so that every run — host
//! reference, sequential simulation, parallel simulation, benchmarks — is
//! reproducible.  Values are kept small enough that the largest
//! accumulations (matrix products of 10⁹ terms, reductions of 10⁸
//! elements) stay far from `i64` overflow.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform values in `[lo, hi]`.
pub fn vec_in_range(n: u64, lo: i64, hi: i64, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// The paper's vector inputs: random small integers.
pub fn small_ints(n: u64, seed: u64) -> Vec<i64> {
    vec_in_range(n, -1000, 1000, seed)
}

/// The paper's reduction inputs: "randomly generated vectors of 0/1
/// values".
pub fn zero_ones(n: u64, seed: u64) -> Vec<i64> {
    vec_in_range(n, 0, 1, seed)
}

/// Histogram inputs: values in `[0, bins)`.
pub fn bin_values(n: u64, bins: u64, seed: u64) -> Vec<i64> {
    vec_in_range(n, 0, bins as i64 - 1, seed)
}

/// Matrix entries kept tiny so `n³`-term products stay in range.
pub fn matrix_entries(n_sq: u64, seed: u64) -> Vec<i64> {
    vec_in_range(n_sq, -4, 4, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        assert_eq!(small_ints(100, 7), small_ints(100, 7));
        assert_ne!(small_ints(100, 7), small_ints(100, 8));
    }

    #[test]
    fn ranges_respected() {
        for &v in &zero_ones(1000, 1) {
            assert!(v == 0 || v == 1);
        }
        for &v in &bin_values(1000, 16, 2) {
            assert!((0..16).contains(&v));
        }
        for &v in &matrix_entries(1000, 3) {
            assert!((-4..=4).contains(&v));
        }
    }

    #[test]
    fn length_matches() {
        assert_eq!(small_ints(17, 0).len(), 17);
        assert!(small_ints(0, 0).is_empty());
    }
}
