//! The uniform workload interface: build an IR program, supply inputs,
//! state expectations.

use crate::error::AlgosError;
use atgpu_ir::{HBuf, Program};
use atgpu_model::asymptotics::BigO;
use atgpu_model::{AlgoMetrics, AtgpuMachine, ClusterSpec, GpuSpec};
use atgpu_sim::{run_cluster_program, run_program, ClusterSimReport, SimConfig, SimReport};

/// A workload compiled for a particular machine.
#[derive(Debug, Clone)]
pub struct BuiltProgram {
    /// The IR program.
    pub program: Program,
    /// Input host buffers, in declaration order.
    pub inputs: Vec<Vec<i64>>,
    /// Output host buffers whose contents the workload predicts.
    pub outputs: Vec<HBuf>,
}

/// A computational problem instance: data plus the recipe for its ATGPU
/// program, host reference and model analysis.
pub trait Workload {
    /// Workload name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// The problem size `n` the paper sweeps.
    fn size(&self) -> u64;

    /// Builds the IR program and input data for `machine`.
    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError>;

    /// Host-reference contents of each output buffer, in the same order
    /// as [`BuiltProgram::outputs`].
    fn expected(&self) -> Vec<Vec<i64>>;

    /// The paper's closed-form model metrics for this instance (exact for
    /// our IR encoding), if stated.  Tests assert `atgpu-analyze` derives
    /// exactly these.
    fn closed_form(&self, _machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        None
    }

    /// The paper's asymptotic bounds for this workload.
    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        Vec::new()
    }
}

/// Builds, simulates and verifies a workload; returns the report.
///
/// Any output word differing from the host reference is an error — this
/// is the library's end-to-end correctness gate.
pub fn verify_on_sim(
    w: &dyn Workload,
    machine: &AtgpuMachine,
    spec: &GpuSpec,
    config: &SimConfig,
) -> Result<SimReport, AlgosError> {
    let built = w.build(machine)?;
    let report = run_program(&built.program, built.inputs, machine, spec, config)?;
    let expected = w.expected();
    for (out_idx, (hbuf, exp)) in built.outputs.iter().zip(expected.iter()).enumerate() {
        let got = report.output(*hbuf);
        let name = built
            .program
            .host_bufs
            .get(hbuf.0 as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("output{out_idx}"));
        if got.len() != exp.len() {
            return Err(AlgosError::Mismatch {
                buffer: name,
                index: exp.len().min(got.len()),
                expected: exp.get(got.len()).copied().unwrap_or(0),
                actual: got.get(exp.len()).copied().unwrap_or(0),
            });
        }
        for (i, (&g, &e)) in got.iter().zip(exp.iter()).enumerate() {
            if g != e {
                return Err(AlgosError::Mismatch {
                    buffer: name,
                    index: i,
                    expected: e,
                    actual: g,
                });
            }
        }
    }
    Ok(report)
}

/// Simulates an already-built (typically sharded) program on a cluster
/// and verifies the outputs against `expected`, in declaration order of
/// `outputs`.
pub fn verify_built_on_cluster(
    built: &BuiltProgram,
    expected: &[Vec<i64>],
    machine: &AtgpuMachine,
    cluster: &ClusterSpec,
    config: &SimConfig,
) -> Result<ClusterSimReport, AlgosError> {
    let report =
        run_cluster_program(&built.program, built.inputs.clone(), machine, cluster, config)?;
    for (out_idx, (hbuf, exp)) in built.outputs.iter().zip(expected.iter()).enumerate() {
        let got = report.output(*hbuf);
        let name = built
            .program
            .host_bufs
            .get(hbuf.0 as usize)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("output{out_idx}"));
        for (i, (&g, &e)) in got.iter().zip(exp.iter()).enumerate() {
            if g != e {
                return Err(AlgosError::Mismatch {
                    buffer: name,
                    index: i,
                    expected: e,
                    actual: g,
                });
            }
        }
    }
    Ok(report)
}

/// Standard machine used by workload unit tests: `b = 32`, GTX 650-like
/// shared/global sizes, enough MPs for a perfect analysis.
pub fn test_machine() -> AtgpuMachine {
    AtgpuMachine::new(1 << 20, 32, 12_288, 1 << 26).expect("valid test machine")
}

/// Standard small GPU spec for workload unit tests (fast to simulate).
pub fn test_spec() -> GpuSpec {
    GpuSpec { k_prime: 2, h_limit: 8, ..GpuSpec::gtx650_like() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_fixtures_are_valid() {
        test_machine();
        test_spec().validate().unwrap();
    }
}
