//! Sparse matrix–vector multiplication (ELL format) — extension workload
//! with the canonical GPU gather pattern.
//!
//! The matrix is stored in ELLPACK layout, column-major: for slot
//! `t ∈ [0, K)` and row `r`, `cols[t·n + r]` and `vals[t·n + r]` hold the
//! row's `t`-th nonzero (padded rows repeat column `r` with value 0).
//! Slot arrays are read coalesced; the operand vector `x` is **gathered**
//! through data-dependent addresses — exactly analysable traffic for the
//! matrix, conservatively bounded traffic for the gather, both measured
//! precisely by the simulator.

use crate::error::AlgosError;
use crate::vecadd::check_shards_fit;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, Kernel, KernelBuilder, Operand, ProgramBuilder, Shard};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AtgpuMachine, ShardProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse matrix in ELL format with its dense operand.
#[derive(Debug, Clone)]
pub struct SpmvEll {
    n: u64,
    k_slots: u64,
    /// Column indices, column-major `[t·n + r]`.
    cols: Vec<i64>,
    /// Values, column-major `[t·n + r]`.
    vals: Vec<i64>,
    x: Vec<i64>,
}

impl SpmvEll {
    /// Random instance: `n` rows, up to `k_slots` nonzeros per row.
    pub fn new(n: u64, k_slots: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cols = vec![0i64; (n * k_slots) as usize];
        let mut vals = vec![0i64; (n * k_slots) as usize];
        for r in 0..n as usize {
            // Each row gets a random number of nonzeros; padding slots
            // self-reference with value zero (an in-range, harmless gather).
            let nnz = rng.gen_range(0..=k_slots) as usize;
            for t in 0..k_slots as usize {
                let idx = t * n as usize + r;
                if t < nnz {
                    cols[idx] = rng.gen_range(0..n as i64);
                    vals[idx] = rng.gen_range(-9..=9);
                } else {
                    cols[idx] = r as i64;
                    vals[idx] = 0;
                }
            }
        }
        let x: Vec<i64> = (0..n).map(|_| rng.gen_range(-9..=9)).collect();
        Self { n, k_slots, cols, vals, x }
    }

    /// Host reference.
    pub fn host_reference(&self) -> Vec<i64> {
        let n = self.n as usize;
        (0..n)
            .map(|r| {
                (0..self.k_slots as usize)
                    .map(|t| {
                        let idx = t * n + r;
                        self.vals[idx] * self.x[self.cols[idx] as usize]
                    })
                    .sum()
            })
            .collect()
    }

    fn check(&self, machine: &AtgpuMachine) -> Result<(u64, u64), AlgosError> {
        let n = self.n;
        let b = machine.b;
        if n == 0 || !n.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("row count {n} must be a positive multiple of b = {b}"),
            });
        }
        if self.k_slots == 0 {
            return Err(AlgosError::InvalidSize { reason: "K must be at least 1".into() });
        }
        Ok((n / b, b))
    }

    /// Effective slot count of each `b`-row band: the highest occupied
    /// slot across the band's rows, where a slot is occupied unless it
    /// holds the self-referencing zero pad `(col = r, val = 0)`.  Slots
    /// past the band's count contribute `0·x[r]` and need not be staged
    /// — the per-unit imbalance the sharded build and its profile feed
    /// to the planner.
    pub fn band_slots(&self, machine: &AtgpuMachine) -> Result<Vec<u64>, AlgosError> {
        let (k, b) = self.check(machine)?;
        Ok((0..k)
            .map(|u| {
                (u * b..(u + 1) * b)
                    .map(|r| {
                        (0..self.k_slots)
                            .rev()
                            .find(|&t| {
                                let idx = (t * self.n + r) as usize;
                                self.cols[idx] != r as i64 || self.vals[idx] != 0
                            })
                            .map_or(0, |t| t + 1)
                    })
                    .max()
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Single-round cluster SpMV over an explicit shard plan of the row
    /// bands: every shard's device receives the **full operand vector**
    /// (the gather may touch any of it), but the ELL slot arrays are
    /// staged only up to the shard's effective slot count — unstaged
    /// slots read the device's zero-initialised memory and contribute
    /// nothing, exactly like the host padding.  Each shard drains its
    /// own `y` slice.
    pub fn build_sharded_with(
        &self,
        machine: &AtgpuMachine,
        shards: Vec<Shard>,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, b) = self.check(machine)?;
        check_shards_fit(&shards, k)?;
        let n = self.n;
        let bands = self.band_slots(machine)?;

        let mut pb = ProgramBuilder::new("spmv-ell-sharded");
        let hc = pb.host_input("Cols", n * self.k_slots);
        let hv = pb.host_input("Vals", n * self.k_slots);
        let hx = pb.host_input("X", n);
        let hy = pb.host_output("Y", n);
        let dc = pb.device_alloc("cols", n * self.k_slots);
        let dv = pb.device_alloc("vals", n * self.k_slots);
        let dx = pb.device_alloc("x", n);
        let dy = pb.device_alloc("y", n);

        pb.begin_round();
        let mut x_staged: Vec<u32> = Vec::new();
        for s in &shards {
            if !x_staged.contains(&s.device) {
                pb.transfer_in_to(s.device, hx, 0, dx, 0, n);
                x_staged.push(s.device);
            }
            let lo = s.start * b;
            let words = s.blocks() * b;
            let k_s = bands[s.start as usize..s.end as usize].iter().copied().max().unwrap_or(0);
            for t in 0..k_s {
                pb.transfer_in_to(s.device, hc, t * n + lo, dc, t * n + lo, words);
                pb.transfer_in_to(s.device, hv, t * n + lo, dv, t * n + lo, words);
            }
        }
        pb.launch_sharded(spmv_kernel(k, b, self.k_slots, dc, dv, dx, dy), shards.clone());
        for s in &shards {
            let lo = s.start * b;
            pb.transfer_out_from(s.device, dy, lo, hy, lo, s.blocks() * b);
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.cols.clone(), self.vals.clone(), self.x.clone()],
            outputs: vec![hy],
        })
    }

    /// [`Self::build_sharded_with`] over an even band split.
    pub fn build_sharded(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, _) = self.check(machine)?;
        self.build_sharded_with(machine, atgpu_sim::even_shards(k, devices))
    }

    /// The **row-imbalanced** cost shape of this instance: staging words
    /// vary per band (`2·b·K_u` for the band's effective slot count),
    /// the operand vector is broadcast to every participating device,
    /// and kernel time/IO follow the uniform `K`-slot loop.  The
    /// non-empty [`ShardProfile::unit_inward_words`] routes the planner
    /// onto its contiguous greedy-pack path.
    pub fn shard_profile(&self, machine: &AtgpuMachine) -> Result<ShardProfile, AlgosError> {
        let (_, b) = self.check(machine)?;
        let bands = self.band_slots(machine)?;
        Ok(ShardProfile {
            time_ops: 3 + 8 * self.k_slots,
            io_blocks_per_unit: 3 * self.k_slots + 1,
            inward_txns: 2,
            outward_words_per_unit: b,
            outward_txns: 1,
            broadcast_words: self.n,
            broadcast_txns: 1,
            shared_words: 4 * b,
            unit_inward_words: bands.iter().map(|&k_u| 2 * b * k_u).collect(),
            ..ShardProfile::default()
        })
    }

    /// [`Self::build_sharded_with`] with the row bands apportioned by
    /// the cost-driven planner pricing this instance's per-band staging
    /// profile — heavy bands cost more to feed, so devices behind slow
    /// host links receive lighter spans, not just fewer rows.
    pub fn build_sharded_planned(
        &self,
        machine: &AtgpuMachine,
        cluster: &atgpu_model::ClusterSpec,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, _) = self.check(machine)?;
        let shards = atgpu_sim::planned_shards(k, cluster, machine, &self.shard_profile(machine)?);
        self.build_sharded_with(machine, shards)
    }
}

/// The shared ELL kernel: slot-major loop staging `cols`/`vals`
/// coalesced, gathering `x` through the column register, accumulating in
/// a register.  Shared layout: col `[0,b)`, val `[b,2b)`, gathered x
/// `[2b,3b)`, y `[3b,4b)`.
fn spmv_kernel(
    k: u64,
    b: u64,
    k_slots: u64,
    dc: atgpu_ir::DBuf,
    dv: atgpu_ir::DBuf,
    dx: atgpu_ir::DBuf,
    dy: atgpu_ir::DBuf,
) -> Kernel {
    let bi = b as i64;
    let ni = (k * b) as i64;
    let mut kb = KernelBuilder::new("spmv_kernel", k, 4 * b);
    kb.mov(0, Operand::Imm(0));
    kb.repeat(k_slots as u32, |kb| {
        let slot = AddrExpr::loop_var(0) * ni + AddrExpr::block() * bi + AddrExpr::lane();
        kb.glb_to_shr(AddrExpr::lane(), dc, slot.clone());
        kb.glb_to_shr(AddrExpr::lane() + bi, dv, slot);
        kb.ld_shr(1, AddrExpr::lane()); // column index
        kb.glb_to_shr(AddrExpr::lane() + 2 * bi, dx, AddrExpr::reg(1)); // gather
        kb.ld_shr(2, AddrExpr::lane() + 2 * bi);
        kb.ld_shr(3, AddrExpr::lane() + bi);
        kb.alu(AluOp::Mul, 4, Operand::Reg(2), Operand::Reg(3));
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(4));
    });
    kb.st_shr(AddrExpr::lane() + 3 * bi, Operand::Reg(0));
    kb.shr_to_glb(dy, AddrExpr::block() * bi + AddrExpr::lane(), AddrExpr::lane() + 3 * bi);
    kb.build()
}

impl Workload for SpmvEll {
    fn name(&self) -> &'static str {
        "spmv-ell"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let (k, b) = self.check(machine)?;
        let n = self.n;

        let mut pb = ProgramBuilder::new("spmv-ell");
        let hc = pb.host_input("Cols", n * self.k_slots);
        let hv = pb.host_input("Vals", n * self.k_slots);
        let hx = pb.host_input("X", n);
        let hy = pb.host_output("Y", n);
        let dc = pb.device_alloc("cols", n * self.k_slots);
        let dv = pb.device_alloc("vals", n * self.k_slots);
        let dx = pb.device_alloc("x", n);
        let dy = pb.device_alloc("y", n);

        pb.begin_round();
        pb.transfer_in(hc, dc, n * self.k_slots);
        pb.transfer_in(hv, dv, n * self.k_slots);
        pb.transfer_in(hx, dx, n);
        pb.launch(spmv_kernel(k, b, self.k_slots, dc, dv, dx, dy));
        pb.transfer_out(dy, hy, n);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.cols.clone(), self.vals.clone(), self.x.clone()],
            outputs: vec![hy],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("time", Term::n().over(Term::b()).times(Term::c(16.0))),
            BigO::new("transfer", Term::n().times(Term::c(8.0))),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn simulation_matches_host() {
        for (n, k) in [(32u64, 1u64), (128, 4), (1024, 8)] {
            let w = SpmvEll::new(n, k, n + k);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n} K={k}: {e}"));
        }
    }

    #[test]
    fn diagonal_matrix_scales_x() {
        let n = 64u64;
        let cols: Vec<i64> = (0..n as i64).collect();
        let vals = vec![3i64; n as usize];
        let x: Vec<i64> = (0..n as i64).collect();
        let w = SpmvEll { n, k_slots: 1, cols, vals, x: x.clone() };
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        let y = r.output(atgpu_ir::HBuf(3));
        for (i, &v) in y.iter().enumerate() {
            assert_eq!(v, 3 * i as i64);
        }
    }

    #[test]
    fn gather_makes_analysis_inexact_but_slot_traffic_exact() {
        let m = test_machine();
        let w = SpmvEll::new(256, 4, 1);
        let built = w.build(&m).unwrap();
        let a = analyze_program(&built.program, &m).unwrap();
        assert!(!a.io_exact, "the x gather is data-dependent");
        // The conservative bound still dominates the simulator's count.
        let q_model = a.metrics().total_io_blocks();
        let r = verify_on_sim(&w, &m, &test_spec(), &SimConfig::default()).unwrap();
        let q_sim: u64 = r.rounds.iter().map(|x| x.kernel_stats.global_txns).sum();
        assert!(q_model >= q_sim, "bound {q_model} must dominate measured {q_sim}");
    }

    #[test]
    fn invalid_sizes_rejected() {
        assert!(SpmvEll::new(33, 2, 0).build(&test_machine()).is_err());
        assert!(SpmvEll::new(32, 0, 0).build(&test_machine()).is_err());
    }

    use crate::workload::verify_built_on_cluster;
    use atgpu_model::{ClusterSpec, LinkParams};

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, test_spec())
    }

    /// An instance whose first half is dense (all `K` slots real) and
    /// second half is empty — maximal band imbalance.
    fn lopsided(n: u64, k_slots: u64) -> SpmvEll {
        let mut w = SpmvEll::new(n, k_slots, 9);
        for r in 0..n as usize {
            for t in 0..k_slots as usize {
                let idx = t * n as usize + r;
                if r < n as usize / 2 {
                    w.cols[idx] = ((r + t) % n as usize) as i64;
                    w.vals[idx] = 1 + (t as i64 % 5);
                } else {
                    w.cols[idx] = r as i64;
                    w.vals[idx] = 0;
                }
            }
        }
        w
    }

    #[test]
    fn band_slots_sees_imbalance() {
        let m = test_machine();
        let w = lopsided(256, 4);
        let bands = w.band_slots(&m).unwrap();
        let k = bands.len();
        assert!(bands[..k / 2].iter().all(|&s| s == 4));
        assert!(bands[k / 2..].iter().all(|&s| s == 0));
        let p = w.shard_profile(&m).unwrap();
        assert_eq!(p.unit_inward_words.len(), k);
        assert_eq!(p.unit_inward_words[0], 2 * m.b * 4);
        assert_eq!(p.unit_inward_words[k - 1], 0);
    }

    #[test]
    fn sharded_matches_host() {
        let m = test_machine();
        for devices in [1u32, 2, 3, 4] {
            for w in [SpmvEll::new(256, 4, devices as u64), lopsided(256, 3)] {
                let built = w.build_sharded(&m, devices).unwrap();
                verify_built_on_cluster(
                    &built,
                    &[w.host_reference()],
                    &m,
                    &cluster(devices as usize),
                    &SimConfig::default(),
                )
                .unwrap_or_else(|e| panic!("devices={devices}: {e}"));
            }
        }
    }

    #[test]
    fn planned_sharding_packs_heavy_bands_off_slow_links() {
        let m = test_machine();
        let mut spec = cluster(2);
        // Device 1's host link is 8x slower: the greedy pack should hand
        // it a lighter span of the lopsided matrix, and the built plan
        // must still verify.
        spec.host_links[1] = LinkParams {
            alpha_ms: spec.host_links[1].alpha_ms * 8.0,
            beta_ms_per_word: spec.host_links[1].beta_ms_per_word * 8.0,
        };
        let w = lopsided(512, 6);
        let k = m.blocks_for(512);
        let shards = atgpu_sim::planned_shards(k, &spec, &m, &w.shard_profile(&m).unwrap());
        let slow_words: u64 = shards
            .iter()
            .filter(|s| s.device == 1)
            .map(|s| {
                w.band_slots(&m).unwrap()[s.start as usize..s.end as usize]
                    .iter()
                    .map(|&ku| 2 * m.b * ku)
                    .sum::<u64>()
            })
            .sum();
        let total: u64 = w.band_slots(&m).unwrap().iter().map(|&ku| 2 * m.b * ku).sum();
        assert!(
            slow_words <= total / 2,
            "slow-link device staged {slow_words} of {total} matrix words"
        );
        let built = w.build_sharded_planned(&m, &spec).unwrap();
        verify_built_on_cluster(&built, &[w.host_reference()], &m, &spec, &SimConfig::default())
            .unwrap();
    }
}
