//! Sparse matrix–vector multiplication (ELL format) — extension workload
//! with the canonical GPU gather pattern.
//!
//! The matrix is stored in ELLPACK layout, column-major: for slot
//! `t ∈ [0, K)` and row `r`, `cols[t·n + r]` and `vals[t·n + r]` hold the
//! row's `t`-th nonzero (padded rows repeat column `r` with value 0).
//! Slot arrays are read coalesced; the operand vector `x` is **gathered**
//! through data-dependent addresses — exactly analysable traffic for the
//! matrix, conservatively bounded traffic for the gather, both measured
//! precisely by the simulator.

use crate::error::AlgosError;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::AtgpuMachine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse matrix in ELL format with its dense operand.
#[derive(Debug, Clone)]
pub struct SpmvEll {
    n: u64,
    k_slots: u64,
    /// Column indices, column-major `[t·n + r]`.
    cols: Vec<i64>,
    /// Values, column-major `[t·n + r]`.
    vals: Vec<i64>,
    x: Vec<i64>,
}

impl SpmvEll {
    /// Random instance: `n` rows, up to `k_slots` nonzeros per row.
    pub fn new(n: u64, k_slots: u64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cols = vec![0i64; (n * k_slots) as usize];
        let mut vals = vec![0i64; (n * k_slots) as usize];
        for r in 0..n as usize {
            // Each row gets a random number of nonzeros; padding slots
            // self-reference with value zero (an in-range, harmless gather).
            let nnz = rng.gen_range(0..=k_slots) as usize;
            for t in 0..k_slots as usize {
                let idx = t * n as usize + r;
                if t < nnz {
                    cols[idx] = rng.gen_range(0..n as i64);
                    vals[idx] = rng.gen_range(-9..=9);
                } else {
                    cols[idx] = r as i64;
                    vals[idx] = 0;
                }
            }
        }
        let x: Vec<i64> = (0..n).map(|_| rng.gen_range(-9..=9)).collect();
        Self { n, k_slots, cols, vals, x }
    }

    /// Host reference.
    pub fn host_reference(&self) -> Vec<i64> {
        let n = self.n as usize;
        (0..n)
            .map(|r| {
                (0..self.k_slots as usize)
                    .map(|t| {
                        let idx = t * n + r;
                        self.vals[idx] * self.x[self.cols[idx] as usize]
                    })
                    .sum()
            })
            .collect()
    }
}

impl Workload for SpmvEll {
    fn name(&self) -> &'static str {
        "spmv-ell"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let n = self.n;
        let b = machine.b;
        if n == 0 || !n.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("row count {n} must be a positive multiple of b = {b}"),
            });
        }
        if self.k_slots == 0 {
            return Err(AlgosError::InvalidSize { reason: "K must be at least 1".into() });
        }
        let bi = b as i64;
        let ni = n as i64;
        let blocks = n / b;

        let mut pb = ProgramBuilder::new("spmv-ell");
        let hc = pb.host_input("Cols", n * self.k_slots);
        let hv = pb.host_input("Vals", n * self.k_slots);
        let hx = pb.host_input("X", n);
        let hy = pb.host_output("Y", n);
        let dc = pb.device_alloc("cols", n * self.k_slots);
        let dv = pb.device_alloc("vals", n * self.k_slots);
        let dx = pb.device_alloc("x", n);
        let dy = pb.device_alloc("y", n);

        // Shared layout: col [0,b), val [b,2b), gathered x [2b,3b), y [3b,4b).
        let mut kb = KernelBuilder::new("spmv_kernel", blocks, 4 * b);
        kb.mov(0, Operand::Imm(0));
        kb.repeat(self.k_slots as u32, |kb| {
            let slot = AddrExpr::loop_var(0) * ni + AddrExpr::block() * bi + AddrExpr::lane();
            kb.glb_to_shr(AddrExpr::lane(), dc, slot.clone());
            kb.glb_to_shr(AddrExpr::lane() + bi, dv, slot);
            kb.ld_shr(1, AddrExpr::lane()); // column index
            kb.glb_to_shr(AddrExpr::lane() + 2 * bi, dx, AddrExpr::reg(1)); // gather
            kb.ld_shr(2, AddrExpr::lane() + 2 * bi);
            kb.ld_shr(3, AddrExpr::lane() + bi);
            kb.alu(AluOp::Mul, 4, Operand::Reg(2), Operand::Reg(3));
            kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(4));
        });
        kb.st_shr(AddrExpr::lane() + 3 * bi, Operand::Reg(0));
        kb.shr_to_glb(dy, AddrExpr::block() * bi + AddrExpr::lane(), AddrExpr::lane() + 3 * bi);

        pb.begin_round();
        pb.transfer_in(hc, dc, n * self.k_slots);
        pb.transfer_in(hv, dv, n * self.k_slots);
        pb.transfer_in(hx, dx, n);
        pb.launch(kb.build());
        pb.transfer_out(dy, hy, n);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.cols.clone(), self.vals.clone(), self.x.clone()],
            outputs: vec![hy],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("time", Term::n().over(Term::b()).times(Term::c(16.0))),
            BigO::new("transfer", Term::n().times(Term::c(8.0))),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn simulation_matches_host() {
        for (n, k) in [(32u64, 1u64), (128, 4), (1024, 8)] {
            let w = SpmvEll::new(n, k, n + k);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n} K={k}: {e}"));
        }
    }

    #[test]
    fn diagonal_matrix_scales_x() {
        let n = 64u64;
        let cols: Vec<i64> = (0..n as i64).collect();
        let vals = vec![3i64; n as usize];
        let x: Vec<i64> = (0..n as i64).collect();
        let w = SpmvEll { n, k_slots: 1, cols, vals, x: x.clone() };
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        let y = r.output(atgpu_ir::HBuf(3));
        for (i, &v) in y.iter().enumerate() {
            assert_eq!(v, 3 * i as i64);
        }
    }

    #[test]
    fn gather_makes_analysis_inexact_but_slot_traffic_exact() {
        let m = test_machine();
        let w = SpmvEll::new(256, 4, 1);
        let built = w.build(&m).unwrap();
        let a = analyze_program(&built.program, &m).unwrap();
        assert!(!a.io_exact, "the x gather is data-dependent");
        // The conservative bound still dominates the simulator's count.
        let q_model = a.metrics().total_io_blocks();
        let r = verify_on_sim(&w, &m, &test_spec(), &SimConfig::default()).unwrap();
        let q_sim: u64 = r.rounds.iter().map(|x| x.kernel_stats.global_txns).sum();
        assert!(q_model >= q_sim, "bound {q_model} must dominate measured {q_sim}");
    }

    #[test]
    fn invalid_sizes_rejected() {
        assert!(SpmvEll::new(33, 2, 0).build(&test_machine()).is_err());
        assert!(SpmvEll::new(32, 0, 0).build(&test_machine()).is_err());
    }
}
