//! # atgpu-algos — the workload library
//!
//! Every computational problem the paper evaluates, plus the extension
//! workloads its future-work section calls for, each packaged uniformly:
//!
//! * an **IR program** (kernels + transfers) built for a given machine;
//! * a **host reference** implementation the simulator's results are
//!   checked against;
//! * the **closed-form model metrics** from the paper's hand analysis
//!   (tests assert the `atgpu-analyze` derivation matches them exactly);
//! * the **stated asymptotic bounds** (`O(·)` terms) from the paper.
//!
//! ## Paper workloads (§IV)
//!
//! * [`vecadd`] — vector addition (Fig. 3): one round, embarrassingly
//!   parallel, transfer-dominated;
//! * [`reduce`] — tree reduction (Fig. 4): `⌈log_b n⌉` rounds, moderate
//!   transfer share, with both the divergent interleaved-modulo kernel
//!   (Harris's first kernel, which the paper cites) and the
//!   sequential-addressing refinement;
//! * [`matmul`] — tiled matrix multiplication (Fig. 5): compute-dominated,
//!   transfer negligible.
//!
//! ## Extension workloads
//!
//! * [`saxpy`], [`dot`], [`gemv`], [`scan`], [`stencil`] — further computational
//!   problems (paper §V: "carry out further experiments on other
//!   computational problems");
//! * [`bitonic`] — bitonic sort: `Θ(log² n)` kernel rounds, the regime
//!   where the per-round synchronisation charge `σ` dominates, with
//!   data-dependent gather/scatter addressing;
//! * [`transpose`] — three variants (naive / tiled / tiled+padded)
//!   exhibiting uncoalesced access and bank conflicts;
//! * [`spmv`] — ELL sparse matrix–vector multiplication (the canonical
//!   GPU gather: exact slot traffic, conservatively-bounded gather);
//! * [`histogram`] — data-dependent addressing with measured bank
//!   conflicts (the case the model's conflict-free assumption excludes);
//! * [`ooc`] — out-of-core variants that partition data exceeding global
//!   memory `G` across rounds with different communication schemes
//!   (paper §V: "data does not fit on the global memory, thereby
//!   requiring some sort of partitioning").
//!
//! ## Clusters and peer traffic — the irregular quartet
//!
//! The regular workloads shard trivially (independent slabs, no
//! cross-device traffic).  Four irregular ones also run on clusters,
//! each exercising a different peer-communication shape, and each in
//! three forms: an explicit-plan `build_sharded_with` (the differential
//! suites feed it random plans), an even-split `build_sharded`, and a
//! `shard_profile` whose [`atgpu_model::PeerProfile`] makes the
//! `atgpu-sim` planner's plan pricing **peer-aware**:
//!
//! * [`stencil`] — iterated halo exchange: one boundary cell per
//!   direction over peer links every round;
//! * [`scan`] — multi-pass gather/scatter: per-device local scans,
//!   block sums gathered to an owner, prefix offsets scattered back;
//! * [`spmv`] — row-imbalanced shards: per-unit work and words vary by
//!   row weight, feeding the profile's per-unit vectors;
//! * [`histogram`] — all-to-one merge: per-device partial bins
//!   peer-merged on an owner device.
//!
//! All four are bit-identical to their single-device runs under any
//! shard plan (`tests/cluster_quartet_differential.rs`), including
//! mid-program device loss.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitonic;
pub mod dot;
pub mod error;
pub mod gemv;
pub mod gen;
pub mod histogram;
pub mod matmul;
pub mod ooc;
pub mod reduce;
pub mod saxpy;
pub mod scan;
pub mod spmv;
pub mod stencil;
pub mod transpose;
pub mod vecadd;
pub mod workload;

pub use error::AlgosError;
pub use workload::{verify_on_sim, BuiltProgram, Workload};
