//! Matrix transpose — three kernel variants exposing coalescing and bank
//! conflicts, the access-pattern phenomena the ATGPU model (and its
//! conflict-free assumption) is about.
//!
//! * [`TransposeVariant::Naive`] — reads rows coalesced, writes columns
//!   directly: every warp write scatters over `b` memory blocks
//!   (`q = k·b·(1+b)` instead of `2k·b`);
//! * [`TransposeVariant::Tiled`] — stages a `b×b` tile in shared memory;
//!   global traffic is fully coalesced but the transposed shared read has
//!   stride `b` — a maximal `b`-way bank conflict;
//! * [`TransposeVariant::TiledPadded`] — the classic fix: a `b+1`-word
//!   row pitch makes the strided read conflict-free.
//!
//! All three compute the same function; the experiments compare their
//! I/O counts, conflict reports and simulated times (extension E3).

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, KernelBuilder, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, RoundMetrics};

/// Which transpose kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransposeVariant {
    /// Direct column writes (uncoalesced).
    Naive,
    /// Shared-memory tile, stride-`b` shared reads (bank conflicts).
    Tiled,
    /// Shared-memory tile with padded pitch (conflict-free).
    TiledPadded,
}

impl TransposeVariant {
    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TransposeVariant::Naive => "naive",
            TransposeVariant::Tiled => "tiled",
            TransposeVariant::TiledPadded => "tiled-padded",
        }
    }
}

/// An `n×n` transpose instance.
#[derive(Debug, Clone)]
pub struct Transpose {
    n: u64,
    data: Vec<i64>,
    variant: TransposeVariant,
}

impl Transpose {
    /// Random instance with side `n`.
    pub fn new(n: u64, seed: u64, variant: TransposeVariant) -> Self {
        Self { n, data: gen::small_ints(n * n, seed), variant }
    }

    /// Host reference.
    pub fn host_reference(&self) -> Vec<i64> {
        let n = self.n as usize;
        let mut out = vec![0i64; n * n];
        for r in 0..n {
            for c in 0..n {
                out[c * n + r] = self.data[r * n + c];
            }
        }
        out
    }

    /// The variant in use.
    pub fn variant(&self) -> TransposeVariant {
        self.variant
    }
}

impl Workload for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let n = self.n;
        let b = machine.b;
        if n == 0 || !n.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("matrix side {n} must be a positive multiple of b = {b}"),
            });
        }
        let t = n / b;
        let nn = n * n;
        let bi = b as i64;
        let ni = n as i64;

        let mut pb = ProgramBuilder::new("transpose");
        let hin = pb.host_input("A", nn);
        let hout = pb.host_output("At", nn);
        let din = pb.device_alloc("a", nn);
        let dout = pb.device_alloc("at", nn);

        let kernel = match self.variant {
            TransposeVariant::Naive => {
                let mut kb = KernelBuilder::new_2d("transpose_naive", (t, t), b);
                kb.repeat(b as u32, |kb| {
                    // Row t0 of tile (ix, iy), read coalesced …
                    kb.glb_to_shr(
                        AddrExpr::lane(),
                        din,
                        (AddrExpr::block_y() * bi + AddrExpr::loop_var(0)) * ni
                            + AddrExpr::block() * bi
                            + AddrExpr::lane(),
                    );
                    // … written as a column: stride-n scatter, b txns.
                    kb.shr_to_glb(
                        dout,
                        (AddrExpr::block() * bi + AddrExpr::lane()) * ni
                            + AddrExpr::block_y() * bi
                            + AddrExpr::loop_var(0),
                        AddrExpr::lane(),
                    );
                });
                kb.build()
            }
            TransposeVariant::Tiled | TransposeVariant::TiledPadded => {
                let pitch = if self.variant == TransposeVariant::TiledPadded { bi + 1 } else { bi };
                let shared = b * (pitch as u64);
                let mut kb = KernelBuilder::new_2d(
                    if self.variant == TransposeVariant::TiledPadded {
                        "transpose_tiled_padded"
                    } else {
                        "transpose_tiled"
                    },
                    (t, t),
                    shared,
                );
                kb.repeat(b as u32, |kb| {
                    kb.glb_to_shr(
                        AddrExpr::loop_var(0) * pitch + AddrExpr::lane(),
                        din,
                        (AddrExpr::block_y() * bi + AddrExpr::loop_var(0)) * ni
                            + AddrExpr::block() * bi
                            + AddrExpr::lane(),
                    );
                });
                kb.repeat(b as u32, |kb| {
                    // Write row t0 of the transposed tile: coalesced
                    // global store, strided shared read.
                    kb.shr_to_glb(
                        dout,
                        (AddrExpr::block() * bi + AddrExpr::loop_var(0)) * ni
                            + AddrExpr::block_y() * bi
                            + AddrExpr::lane(),
                        AddrExpr::lane() * pitch + AddrExpr::loop_var(0),
                    );
                });
                kb.build()
            }
        };

        pb.begin_round();
        pb.transfer_in(hin, din, nn);
        pb.launch(kernel);
        pb.transfer_out(dout, hout, nn);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        if !n.is_multiple_of(b) {
            return None;
        }
        let k = (n / b) * (n / b);
        let (time, io, shared) = match self.variant {
            TransposeVariant::Naive => (2 * b, k * b * (1 + b), b),
            TransposeVariant::Tiled => (2 * b, k * 2 * b, b * b),
            TransposeVariant::TiledPadded => (2 * b, k * 2 * b, b * (b + 1)),
        };
        Some(AlgoMetrics::new(vec![RoundMetrics {
            time,
            io_blocks: io,
            global_words: 2 * n * n,
            shared_words: shared,
            inward_words: n * n,
            inward_txns: 1,
            outward_words: n * n,
            outward_txns: 1,
            blocks_launched: k,
        }]))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        let io = match self.variant {
            TransposeVariant::Naive => Term::n().pow(2), // b× blow-up
            _ => Term::n().pow(2).over(Term::b()).times(Term::c(2.0)),
        };
        vec![BigO::new("io", io), BigO::new("transfer", Term::n().pow(2))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::{analyze_program, ConflictDegree};
    use atgpu_sim::SimConfig;

    const VARIANTS: [TransposeVariant; 3] =
        [TransposeVariant::Naive, TransposeVariant::Tiled, TransposeVariant::TiledPadded];

    #[test]
    fn analyzer_matches_closed_form_all_variants() {
        let m = test_machine();
        for v in VARIANTS {
            let w = Transpose::new(64, 3, v);
            let built = w.build(&m).unwrap();
            assert_eq!(
                analyze_program(&built.program, &m).unwrap().metrics(),
                w.closed_form(&m).unwrap(),
                "mismatch for {v:?}"
            );
        }
    }

    #[test]
    fn simulation_matches_host_all_variants() {
        for v in VARIANTS {
            let w = Transpose::new(64, 9, v);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("{v:?}: {e}"));
        }
    }

    #[test]
    fn naive_variant_blows_up_io() {
        let m = test_machine();
        let naive = Transpose::new(64, 1, TransposeVariant::Naive);
        let tiled = Transpose::new(64, 1, TransposeVariant::Tiled);
        let q_naive = analyze_program(&naive.build(&m).unwrap().program, &m)
            .unwrap()
            .metrics()
            .total_io_blocks();
        let q_tiled = analyze_program(&tiled.build(&m).unwrap().program, &m)
            .unwrap()
            .metrics()
            .total_io_blocks();
        // (1+b)/2 ≈ b/2 blow-up.
        assert!(q_naive > q_tiled * (m.b / 2));
    }

    #[test]
    fn tiled_variant_has_b_way_conflicts_padded_has_none() {
        let m = test_machine();
        let tiled = Transpose::new(64, 1, TransposeVariant::Tiled);
        let a = analyze_program(&tiled.build(&m).unwrap().program, &m).unwrap();
        assert!(!a.conflict_free);
        let worst = a.rounds[0].kernel.as_ref().unwrap().bank.worst;
        assert_eq!(worst, ConflictDegree::Exact(m.b));

        let padded = Transpose::new(64, 1, TransposeVariant::TiledPadded);
        let a = analyze_program(&padded.build(&m).unwrap().program, &m).unwrap();
        assert!(a.conflict_free);
    }

    #[test]
    fn simulated_times_order_padded_fastest_naive_slowest() {
        let m = test_machine();
        // On the GTX650-like memory system all variants are DRAM-bound and
        // conflicts hide under the memory bottleneck (just like on real
        // hardware).  A fast-DRAM device exposes the issue-side cost.
        let spec = atgpu_model::GpuSpec {
            k_prime: 2,
            h_limit: 8,
            dram_issue_cycles: 1,
            dram_latency_cycles: 100,
            ..atgpu_model::GpuSpec::gtx650_like()
        };
        let cfg = SimConfig::default();
        let mut cycles = Vec::new();
        let mut conflicts = Vec::new();
        for v in VARIANTS {
            let w = Transpose::new(128, 2, v);
            let r = verify_on_sim(&w, &m, &spec, &cfg).unwrap();
            cycles.push((v, r.rounds[0].kernel_stats.cycles));
            conflicts.push(r.rounds[0].kernel_stats.bank_conflict_cycles);
        }
        let naive = cycles[0].1;
        let tiled = cycles[1].1;
        let padded = cycles[2].1;
        assert!(padded < tiled, "padded {padded} should beat tiled {tiled}");
        assert!(padded < naive, "padded {padded} should beat naive {naive}");
        // Conflict accounting: only the tiled (unpadded) variant serialises.
        assert_eq!(conflicts[2], 0, "padded variant must be conflict-free");
        assert!(conflicts[1] > 0, "tiled variant must show measured conflicts");
    }

    #[test]
    fn non_multiple_side_rejected() {
        assert!(Transpose::new(33, 0, TransposeVariant::Tiled).build(&test_machine()).is_err());
    }
}
