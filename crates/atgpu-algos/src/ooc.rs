//! Out-of-core workloads — the paper's future-work scenario:
//!
//! > "it would be interesting to analyse different approaches where the
//! > data does not fit on the global memory, thereby requiring some sort
//! > of partitioning, and it is hoped that differences could be
//! > illustrated in approaches with differing host device communication
//! > requirements."
//!
//! Both workloads partition the input into chunks of `chunk` words and
//! process one chunk per round, so device memory holds only `O(chunk)`
//! words regardless of `n` — at the price of `R = ⌈n/chunk⌉` rounds, each
//! paying the transfer setup `α` and the synchronisation `σ`.  The chunk
//! size is the communication-scheme knob the cost function reasons about:
//! small chunks fit small `G` but multiply the fixed per-round costs.
//!
//! The out-of-core reduction additionally offers two finishing schemes
//! with *different host–device communication requirements*:
//!
//! * [`OocScheme::HostFinish`] — each round ships its `⌈len/b⌉` partials
//!   back to the host, which finishes the sum: `O(n/b)` outward words;
//! * [`OocScheme::DeviceFinish`] — partials accumulate in a resident
//!   device buffer and a final reduction tree runs on-device: one
//!   outward word, but extra rounds at the end.

use crate::error::AlgosError;
use crate::gen;
use crate::reduce::{append_reduce_rounds, reduce_round_kernel, ReduceVariant};
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::AtgpuMachine;

/// Out-of-core vector addition: `C = A + B` processed in chunks.
#[derive(Debug, Clone)]
pub struct OocVecAdd {
    n: u64,
    chunk: u64,
    a: Vec<i64>,
    b: Vec<i64>,
}

impl OocVecAdd {
    /// Random instance of size `n` processed in `chunk`-word pieces.
    pub fn new(n: u64, chunk: u64, seed: u64) -> Self {
        Self { n, chunk, a: gen::small_ints(n, seed), b: gen::small_ints(n, seed.wrapping_add(1)) }
    }

    /// Host reference.
    pub fn host_reference(&self) -> Vec<i64> {
        self.a.iter().zip(&self.b).map(|(x, y)| x + y).collect()
    }

    /// Rounds this instance needs.
    pub fn rounds(&self) -> u64 {
        self.n.div_ceil(self.chunk)
    }

    /// Shared size validation of every builder: non-empty input, chunk a
    /// positive multiple of the machine's warp width.
    fn check_chunking(&self, b: u64) -> Result<(), AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty vectors".into() });
        }
        if self.chunk == 0 || !self.chunk.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("chunk {} must be a positive multiple of b = {b}", self.chunk),
            });
        }
        Ok(())
    }

    /// Builds the **double-buffered streamed** out-of-core addition: two
    /// ping-pong buffer sets, with chunk `r`'s host→device copies
    /// enqueued on **stream 1** in the same round that runs chunk
    /// `r − 1`'s kernel and device→host copy on **stream 0** — so the
    /// next chunk's upload hides behind the current chunk's compute and
    /// download (the CrystalGPU overlap pattern).  Functionally the
    /// program is bit-identical to [`Workload::build`]'s serial form
    /// (streams only affect timing, and the two chunks touch disjoint
    /// buffer sets); its modelled/observed time is what improves.
    ///
    /// Costs one extra round (`R + 1` total): round 0 only uploads chunk
    /// 0, round `R` only drains chunk `R − 1`.
    ///
    /// A thin wrapper over the shared ping-pong emission with this
    /// instance's hand-chosen `chunk`; [`Self::build_planned`] derives
    /// the chunk from the cost model instead.
    pub fn build_streamed(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        self.build_streamed_with_chunk(machine, self.chunk)
    }

    /// The per-block cost shape of the chunk-addition kernel (identical
    /// to plain vecadd): what the chunk-size solver prices.
    pub fn shard_profile(machine: &AtgpuMachine) -> atgpu_model::ShardProfile {
        crate::vecadd::VecAdd::shard_profile(machine)
    }

    /// Builds the double-buffered streamed program with an
    /// **automatically solved** chunk size: candidate chunks (powers of
    /// two up to the largest that fits the ping-pong buffers in `G`) are
    /// priced through [`atgpu_model::plan::solve_chunk_units`] — the
    /// ping-pong schedule run through the same `StreamTimeline`-based
    /// cost the simulator times rounds with — and the cheapest modeled
    /// pipeline wins.  The argmin lands where `T_I ≈ kernel + T_O` per
    /// round (the double-buffering balance), so any chunked workload
    /// gets the hand-tuned overlap of [`Self::build_streamed`] for free.
    pub fn build_planned(
        &self,
        machine: &AtgpuMachine,
        spec: &atgpu_model::GpuSpec,
    ) -> Result<BuiltProgram, AlgosError> {
        let b = machine.b;
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty vectors".into() });
        }
        let total_blocks = self.n.div_ceil(b);
        // Two buffer sets × three buffers of `chunk` words must fit G.
        let max_chunk_blocks = (machine.g / (6 * b)).max(1).min(total_blocks);
        let mut candidates: Vec<u64> = Vec::new();
        let mut c = 1u64;
        while c < max_chunk_blocks {
            candidates.push(c);
            c *= 2;
        }
        candidates.push(max_chunk_blocks);
        let cluster = atgpu_model::ClusterSpec::homogeneous(1, *spec);
        let chunk_blocks = atgpu_model::plan::solve_chunk_units(
            &cluster,
            machine,
            &Self::shard_profile(machine),
            &[total_blocks],
            &candidates,
        );
        self.build_streamed_with_chunk(machine, chunk_blocks * b)
    }

    /// The shared double-buffered emission at an explicit `chunk`.
    fn build_streamed_with_chunk(
        &self,
        machine: &AtgpuMachine,
        chunk: u64,
    ) -> Result<BuiltProgram, AlgosError> {
        let b = machine.b;
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty vectors".into() });
        }
        if chunk == 0 || !chunk.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("chunk {chunk} must be a positive multiple of b = {b}"),
            });
        }
        let n = self.n;
        let rounds = n.div_ceil(chunk);

        let mut pb = ProgramBuilder::new("ooc-vecadd-streamed");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        // Ping-pong buffer sets: chunk r lives in set r mod 2, so the
        // upload of chunk r never touches what chunk r − 1's kernel reads.
        let bufs = [
            (
                pb.device_alloc("a_ping", chunk),
                pb.device_alloc("b_ping", chunk),
                pb.device_alloc("c_ping", chunk),
            ),
            (
                pb.device_alloc("a_pong", chunk),
                pb.device_alloc("b_pong", chunk),
                pb.device_alloc("c_pong", chunk),
            ),
        ];

        let chunk_at = |r: u64| {
            let off = r * chunk;
            (off, chunk.min(n - off))
        };
        for r in 0..=rounds {
            pb.begin_round();
            if r < rounds {
                // Upload chunk r on the copy stream.
                let (off, len) = chunk_at(r);
                let (da, db, _) = bufs[(r % 2) as usize];
                pb.transfer_in_streamed(0, 1, ha, off, da, 0, len);
                pb.transfer_in_streamed(0, 1, hb, off, db, 0, len);
            }
            if r > 0 {
                // Compute and drain chunk r − 1 on the default stream.
                let (off, len) = chunk_at(r - 1);
                let (da, db, dc) = bufs[((r - 1) % 2) as usize];
                pb.launch(chunk_add_kernel(r - 1, len.div_ceil(b), b, da, db, dc));
                pb.transfer_out_streamed(0, 0, dc, 0, hc, off, len);
            }
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }

    /// Builds the **multi-device** out-of-core addition: chunks are dealt
    /// round-robin across devices, so round `r` streams its chunk over
    /// device `r mod N`'s host link and runs the whole chunk grid there
    /// (a one-shard plan).  Every device still only ever holds one
    /// chunk's working set — the out-of-core property is preserved per
    /// device, while the cluster's aggregate link bandwidth grows with
    /// `N`.
    pub fn build_sharded(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
    ) -> Result<BuiltProgram, AlgosError> {
        let b = machine.b;
        self.check_chunking(b)?;
        let devices = devices.max(1);
        let n = self.n;
        let chunk = self.chunk;

        let mut pb = ProgramBuilder::new("ooc-vecadd-sharded");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        let da = pb.device_alloc("a_chunk", chunk);
        let db = pb.device_alloc("b_chunk", chunk);
        let dc = pb.device_alloc("c_chunk", chunk);

        let mut off = 0u64;
        let mut round = 0u64;
        while off < n {
            let len = chunk.min(n - off);
            let k = len.div_ceil(b);
            let dev = (round % u64::from(devices)) as u32;
            pb.begin_round();
            pb.transfer_in_to(dev, ha, off, da, 0, len);
            pb.transfer_in_to(dev, hb, off, db, 0, len);
            pb.launch_sharded(
                chunk_add_kernel(round, k, b, da, db, dc),
                vec![atgpu_ir::Shard { device: dev, start: 0, end: k }],
            );
            pb.transfer_out_from(dev, dc, 0, hc, off, len);
            off += len;
            round += 1;
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }
}

/// Builds one round's chunk-addition kernel: `k` blocks add `len`-word
/// chunk slices staged through `3b` shared words.
fn chunk_add_kernel(
    round: u64,
    k: u64,
    b: u64,
    da: atgpu_ir::DBuf,
    db: atgpu_ir::DBuf,
    dc: atgpu_ir::DBuf,
) -> atgpu_ir::Kernel {
    let bi = b as i64;
    let mut kb = KernelBuilder::new(format!("ooc_vecadd_r{round}"), k, 3 * b);
    let g = AddrExpr::block() * bi + AddrExpr::lane();
    kb.glb_to_shr(AddrExpr::lane(), da, g.clone());
    kb.glb_to_shr(AddrExpr::lane() + bi, db, g.clone());
    kb.ld_shr(0, AddrExpr::lane());
    kb.ld_shr(1, AddrExpr::lane() + bi);
    kb.alu(AluOp::Add, 2, Operand::Reg(0), Operand::Reg(1));
    kb.st_shr(AddrExpr::lane() + 2 * bi, Operand::Reg(2));
    kb.shr_to_glb(dc, g, AddrExpr::lane() + 2 * bi);
    kb.build()
}

impl Workload for OocVecAdd {
    fn name(&self) -> &'static str {
        "ooc-vecadd"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let b = machine.b;
        self.check_chunking(b)?;
        let n = self.n;
        let chunk = self.chunk;

        let mut pb = ProgramBuilder::new("ooc-vecadd");
        let ha = pb.host_input("A", n);
        let hb = pb.host_input("B", n);
        let hc = pb.host_output("C", n);
        // Device holds only one chunk of each operand: 3·chunk words.
        let da = pb.device_alloc("a_chunk", chunk);
        let db = pb.device_alloc("b_chunk", chunk);
        let dc = pb.device_alloc("c_chunk", chunk);

        let mut off = 0u64;
        let mut round = 0u64;
        while off < n {
            let len = chunk.min(n - off);
            let k = len.div_ceil(b);
            pb.begin_round();
            pb.transfer_in_at(ha, off, da, 0, len);
            pb.transfer_in_at(hb, off, db, 0, len);
            pb.launch(chunk_add_kernel(round, k, b, da, db, dc));
            pb.transfer_out_at(dc, 0, hc, off, len);
            off += len;
            round += 1;
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("rounds", Term::n().over(Term::c(1.0)).times(Term::c(1.0))),
            BigO::new("transfer", Term::n()),
        ]
    }
}

/// Finishing scheme for the out-of-core reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OocScheme {
    /// Ship every chunk's partials to the host; the host finishes.
    HostFinish,
    /// Accumulate partials on the device; finish with an on-device tree.
    DeviceFinish,
}

/// Out-of-core reduction (sum) processed in chunks.
#[derive(Debug, Clone)]
pub struct OocReduce {
    n: u64,
    chunk: u64,
    scheme: OocScheme,
    data: Vec<i64>,
}

impl OocReduce {
    /// Random 0/1 instance.
    pub fn new(n: u64, chunk: u64, scheme: OocScheme, seed: u64) -> Self {
        Self { n, chunk, scheme, data: gen::zero_ones(n, seed) }
    }

    /// Host reference sum.
    pub fn host_reference(&self) -> i64 {
        self.data.iter().sum()
    }

    /// The finishing scheme.
    pub fn scheme(&self) -> OocScheme {
        self.scheme
    }

    /// Per-chunk partial counts (used to size host buffers).
    fn partials_per_chunk(&self, b: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut off = 0;
        while off < self.n {
            let len = self.chunk.min(self.n - off);
            out.push(len.div_ceil(b));
            off += len;
        }
        out
    }
}

impl Workload for OocReduce {
    fn name(&self) -> &'static str {
        "ooc-reduce"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let b = machine.b;
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        if self.chunk == 0 || !self.chunk.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("chunk {} must be a positive multiple of b = {b}", self.chunk),
            });
        }
        let n = self.n;
        let chunk = self.chunk;
        let partials = self.partials_per_chunk(b);
        let total_partials: u64 = partials.iter().sum();

        let mut pb = ProgramBuilder::new("ooc-reduce");
        let hin = pb.host_input("A", n);

        match self.scheme {
            OocScheme::HostFinish => {
                let hpart = pb.host_output("Partials", total_partials);
                let din = pb.device_alloc("chunk", chunk);
                let dpart = pb.device_alloc("partials", chunk.div_ceil(b));
                let mut off = 0u64;
                let mut part_off = 0u64;
                for (round, &kparts) in partials.iter().enumerate() {
                    let len = chunk.min(n - off);
                    pb.begin_round();
                    pb.transfer_in_at(hin, off, din, 0, len);
                    pb.launch(reduce_round_kernel(
                        format!("ooc_reduce_r{round}"),
                        din,
                        dpart,
                        kparts,
                        machine,
                        ReduceVariant::SequentialAddressing,
                    ));
                    pb.transfer_out_at(dpart, 0, hpart, part_off, kparts);
                    off += len;
                    part_off += kparts;
                }
                Ok(BuiltProgram {
                    program: pb.build()?,
                    inputs: vec![self.data.clone()],
                    outputs: vec![hpart],
                })
            }
            OocScheme::DeviceFinish => {
                let hout = pb.host_output("Ans", 1);
                let din = pb.device_alloc("chunk", chunk);
                let dacc = pb.device_alloc("acc", total_partials);
                let mut off = 0u64;
                let mut part_off = 0u64;
                for (round, &kparts) in partials.iter().enumerate() {
                    let len = chunk.min(n - off);
                    pb.begin_round();
                    pb.transfer_in_at(hin, off, din, 0, len);
                    // Like reduce_round_kernel but writing at an offset in
                    // the resident accumulator buffer.
                    let bi = b as i64;
                    let steps = b.trailing_zeros();
                    let mut kb = KernelBuilder::new(format!("ooc_reduce_r{round}"), kparts, b);
                    kb.glb_to_shr(AddrExpr::lane(), din, AddrExpr::block() * bi + AddrExpr::lane());
                    kb.repeat(steps, |kb| {
                        kb.alu(AluOp::Shr, 0, Operand::Imm(bi / 2), Operand::LoopVar(0));
                        kb.when(atgpu_ir::PredExpr::Lt(Operand::Lane, Operand::Reg(0)), |kb| {
                            kb.ld_shr(3, AddrExpr::lane());
                            kb.ld_shr(4, AddrExpr::lane() + AddrExpr::reg(0));
                            kb.alu(AluOp::Add, 3, Operand::Reg(3), Operand::Reg(4));
                            kb.st_shr(AddrExpr::lane(), Operand::Reg(3));
                        });
                    });
                    kb.when(atgpu_ir::PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
                        kb.shr_to_glb(dacc, AddrExpr::block() + part_off as i64, AddrExpr::c(0));
                    });
                    pb.launch(kb.build());
                    off += len;
                    part_off += kparts;
                }
                // Finish on-device.
                append_reduce_rounds(
                    &mut pb,
                    dacc,
                    total_partials,
                    machine,
                    ReduceVariant::SequentialAddressing,
                    hout,
                    true,
                )?;
                Ok(BuiltProgram {
                    program: pb.build()?,
                    inputs: vec![self.data.clone()],
                    outputs: vec![hout],
                })
            }
        }
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        match self.scheme {
            OocScheme::HostFinish => {
                // Per-block partial sums, concatenated chunk by chunk.
                let b = 32u64; // test machine width; recomputed in tests
                vec![self.expected_partials(b)]
            }
            OocScheme::DeviceFinish => vec![vec![self.host_reference()]],
        }
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![BigO::new("transfer", Term::n().plus(Term::n().over(Term::b())))]
    }
}

impl OocReduce {
    /// The HostFinish scheme's expected partials for warp width `b`.
    pub fn expected_partials(&self, b: u64) -> Vec<i64> {
        let mut out = Vec::new();
        let mut off = 0usize;
        let n = self.n as usize;
        while off < n {
            let len = (self.chunk as usize).min(n - off);
            let chunk = &self.data[off..off + len];
            for blk in chunk.chunks(b as usize) {
                out.push(blk.iter().sum());
            }
            off += len;
        }
        out
    }

    /// Host-side finish for the HostFinish scheme.
    pub fn finish_on_host(partials: &[i64]) -> i64 {
        partials.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    /// A machine whose global memory is far too small for the whole
    /// problem: the out-of-core point.
    fn small_g_machine() -> AtgpuMachine {
        AtgpuMachine::new(1 << 16, 32, 12_288, 2048).unwrap()
    }

    #[test]
    fn ooc_vecadd_matches_host_with_tiny_g() {
        // n = 8192 words per operand (3n = 24576 ≫ G = 2048).
        let w = OocVecAdd::new(8192, 512, 3);
        assert_eq!(w.rounds(), 16);
        verify_on_sim(&w, &small_g_machine(), &test_spec(), &SimConfig::default()).unwrap();
    }

    #[test]
    fn ooc_vecadd_partial_last_chunk() {
        let w = OocVecAdd::new(1000, 256, 5);
        verify_on_sim(&w, &small_g_machine(), &test_spec(), &SimConfig::default()).unwrap();
    }

    #[test]
    fn in_core_vecadd_rejected_by_small_machine() {
        // The ordinary in-core workload cannot run: G is too small —
        // exactly the situation the paper's future work poses.
        let w = crate::vecadd::VecAdd::new(8192, 3);
        let built = w.build(&small_g_machine()).unwrap();
        assert!(analyze_program(&built.program, &small_g_machine()).is_err());
    }

    #[test]
    fn ooc_reduce_device_finish_sums_correctly() {
        let w = OocReduce::new(8192, 1024, OocScheme::DeviceFinish, 7);
        verify_on_sim(&w, &small_g_machine(), &test_spec(), &SimConfig::default()).unwrap();
    }

    #[test]
    fn ooc_reduce_host_finish_partials_correct() {
        let w = OocReduce::new(8192, 1024, OocScheme::HostFinish, 7);
        let r = verify_on_sim(&w, &small_g_machine(), &test_spec(), &SimConfig::default()).unwrap();
        let partials = r.output(atgpu_ir::HBuf(1));
        assert_eq!(OocReduce::finish_on_host(partials), w.host_reference());
    }

    #[test]
    fn schemes_have_different_communication() {
        let m = small_g_machine();
        let host = OocReduce::new(8192, 1024, OocScheme::HostFinish, 1);
        let dev = OocReduce::new(8192, 1024, OocScheme::DeviceFinish, 1);
        let a_host = analyze_program(&host.build(&m).unwrap().program, &m).unwrap();
        let a_dev = analyze_program(&dev.build(&m).unwrap().program, &m).unwrap();
        let out_host: u64 = a_host.metrics().rounds.iter().map(|r| r.outward_words).sum();
        let out_dev: u64 = a_dev.metrics().rounds.iter().map(|r| r.outward_words).sum();
        assert!(out_host > out_dev * 50, "HostFinish {out_host} vs DeviceFinish {out_dev}");
    }

    #[test]
    fn streamed_ooc_vecadd_matches_serial_bit_for_bit() {
        use crate::workload::{test_machine, test_spec};
        use atgpu_sim::run_program;
        let m = test_machine();
        let spec = test_spec();
        let w = OocVecAdd::new(65_536, 16_384, 11);
        let streamed = w.build_streamed(&m).unwrap();
        assert!(streamed.program.uses_streams());
        assert_eq!(streamed.program.num_rounds(), w.rounds() + 1);

        let cfg = SimConfig::default();
        let r_streamed =
            run_program(&streamed.program, streamed.inputs.clone(), &m, &spec, &cfg).unwrap();
        assert_eq!(r_streamed.output(streamed.outputs[0]), w.host_reference().as_slice());

        // The de-streamed form produces the same outputs…
        let destreamed = streamed.program.destreamed();
        let r_serial = run_program(&destreamed, streamed.inputs.clone(), &m, &spec, &cfg).unwrap();
        assert_eq!(r_serial.output(streamed.outputs[0]), r_streamed.output(streamed.outputs[0]));
        // …and the same serial component times, but a larger total: the
        // double-buffered schedule hides the next chunk's upload.
        assert!((r_streamed.serial_ms() - r_serial.total_ms()).abs() < 1e-9);
        assert!(
            r_streamed.total_ms() < r_serial.total_ms(),
            "streamed {} vs serial {}",
            r_streamed.total_ms(),
            r_serial.total_ms()
        );

        // It also beats the plain R-round serial build.
        let plain = w.build(&m).unwrap();
        let r_plain = run_program(&plain.program, plain.inputs.clone(), &m, &spec, &cfg).unwrap();
        assert_eq!(r_plain.output(plain.outputs[0]), r_streamed.output(streamed.outputs[0]));
        assert!(r_streamed.total_ms() < r_plain.total_ms());
    }

    #[test]
    fn streamed_ooc_vecadd_partial_last_chunk() {
        use crate::workload::{test_machine, test_spec};
        use atgpu_sim::run_program;
        let m = test_machine();
        let w = OocVecAdd::new(1000 * 32, 256 * 32, 5);
        let built = w.build_streamed(&m).unwrap();
        let r = run_program(
            &built.program,
            built.inputs.clone(),
            &m,
            &test_spec(),
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.output(built.outputs[0]), w.host_reference().as_slice());
    }

    /// The auto-chunked planned build: no hand-tuned chunk size, yet the
    /// solver-derived ping-pong schedule reproduces the hand-written
    /// overlap — ≥ 1.5x over its serial de-streamed form at paper scale
    /// — and stays bit-identical functionally.
    #[test]
    fn planned_chunking_matches_handwritten_overlap() {
        use crate::workload::test_machine;
        use atgpu_sim::run_program;
        let m = test_machine();
        let spec = atgpu_model::GpuSpec::gtx650_like();
        // The instance's own chunk field is deliberately terrible (one
        // warp per round); build_planned must ignore it.
        let w = OocVecAdd::new(1 << 20, m.b, 11);
        let planned = w.build_planned(&m, &spec).unwrap();
        assert!(planned.program.uses_streams());

        let cfg = SimConfig::default();
        let r = run_program(&planned.program, planned.inputs.clone(), &m, &spec, &cfg).unwrap();
        assert_eq!(r.output(planned.outputs[0]), w.host_reference().as_slice());
        let serial =
            run_program(&planned.program.destreamed(), planned.inputs.clone(), &m, &spec, &cfg)
                .unwrap();
        assert_eq!(serial.output(planned.outputs[0]), r.output(planned.outputs[0]));
        let speedup = serial.total_ms() / r.total_ms();
        assert!(speedup >= 1.5, "auto-chunk overlap {speedup:.2}x < 1.5x");

        // The solver's chunk prices no worse than the hand-written
        // 2^16-word chunk the E8 experiment uses.
        let hand = OocVecAdd::new(1 << 20, 1 << 16, 11).build_streamed(&m).unwrap();
        let r_hand = run_program(&hand.program, hand.inputs.clone(), &m, &spec, &cfg).unwrap();
        assert!(
            r.total_ms() <= r_hand.total_ms() * 1.02,
            "planned {} vs hand-tuned {}",
            r.total_ms(),
            r_hand.total_ms()
        );
    }

    #[test]
    fn chunk_must_be_block_multiple() {
        assert!(OocVecAdd::new(100, 33, 0).build(&small_g_machine()).is_err());
        assert!(OocVecAdd::new(100, 33, 0).build_streamed(&small_g_machine()).is_err());
        assert!(OocReduce::new(100, 0, OocScheme::HostFinish, 0)
            .build(&small_g_machine())
            .is_err());
    }

    #[test]
    fn sharded_chunks_round_robin_across_devices() {
        use crate::workload::verify_built_on_cluster;
        let m = small_g_machine();
        let w = OocVecAdd::new(4096, 512, 7);
        for devices in [1u32, 2, 3] {
            let built = w.build_sharded(&m, devices).unwrap();
            assert_eq!(built.program.num_rounds(), 8);
            assert_eq!(built.program.max_device() + 1, devices.min(8));
            let cluster = atgpu_model::ClusterSpec::homogeneous(
                devices as usize,
                crate::workload::test_spec(),
            );
            let report = verify_built_on_cluster(
                &built,
                &[w.host_reference()],
                &m,
                &cluster,
                &atgpu_sim::SimConfig::default(),
            )
            .unwrap_or_else(|e| panic!("devices={devices}: {e}"));
            // Round r runs on device r mod N alone.
            for (r, round) in report.rounds.iter().enumerate() {
                for (d, obs) in round.devices.iter().enumerate() {
                    let expect_busy = d == r % devices as usize;
                    assert_eq!(obs.kernel_ms > 0.0, expect_busy, "round {r} device {d}");
                }
            }
        }
    }

    #[test]
    fn smaller_chunks_mean_more_rounds() {
        let m = small_g_machine();
        let fine = OocVecAdd::new(4096, 128, 0).build(&m).unwrap();
        let coarse = OocVecAdd::new(4096, 512, 0).build(&m).unwrap();
        assert_eq!(fine.program.num_rounds(), 32);
        assert_eq!(coarse.program.num_rounds(), 8);
        // Fine-grained chunking pays more transfer transactions.
        let txns = |p: &atgpu_ir::Program| -> u64 {
            p.rounds.iter().map(|r| r.inward().1 + r.outward().1).sum()
        };
        assert!(txns(&fine.program) > txns(&coarse.program));
    }
}
