//! Histogram — data-dependent addressing, the case the model's
//! bank-conflict-free assumption cannot cover.
//!
//! `bins = b` values are counted.  Round 1 gives every lane a private
//! bin row in shared memory (`_h[j·b + bin]`), so increments are
//! race-free without atomics (which the model lacks, like early CUDA);
//! lanes hitting the same *bin* still collide on the same *bank* — a
//! genuine, input-dependent bank conflict the simulator measures and the
//! static analyser can only bound as `ConflictDegree::DataDependent`
//! (atgpu-analyze).  Each block then column-reduces its `b×b`
//! sub-histogram and writes a `b`-bin partial; round 2 sums the
//! partials on a single block.

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, PredExpr, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::AtgpuMachine;

/// A histogram instance over `b` bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    n: u64,
    data: Vec<i64>,
}

impl Histogram {
    /// Random instance of size `n`; values are drawn in `[0, b)` for the
    /// machine the workload is built on (use 32-bin data for `b = 32`).
    pub fn new(n: u64, bins: u64, seed: u64) -> Self {
        Self { n, data: gen::bin_values(n, bins, seed) }
    }

    /// Instance from explicit data (caller guarantees values in `[0, b)`).
    pub fn from_data(data: Vec<i64>) -> Self {
        Self { n: data.len() as u64, data }
    }

    /// Host reference for `bins` bins.
    pub fn host_reference(&self, bins: u64) -> Vec<i64> {
        let mut h = vec![0i64; bins as usize];
        for &v in &self.data {
            h[v as usize] += 1;
        }
        h
    }
}

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        let b = machine.b;
        let bi = b as i64;
        if !b.is_power_of_two() || b < 2 {
            return Err(AlgosError::InvalidMachine {
                reason: format!("histogram needs b a power of two ≥ 2, got {b}"),
            });
        }
        if self.data.iter().any(|&v| v < 0 || v >= bi) {
            return Err(AlgosError::InvalidSize {
                reason: format!("values must lie in [0, b) = [0, {b})"),
            });
        }
        let n = self.n;
        let k = machine.blocks_for(n);
        let steps = b.trailing_zeros();

        let mut pb = ProgramBuilder::new("histogram");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Hist", b);
        let din = pb.device_alloc("a", n);
        let dpart = pb.device_alloc("partial", k * b);
        let dhist = pb.device_alloc("hist", b);

        // Round 1: per-block sub-histograms + column reduction.
        // Shared: sub-hist [0, b²), scratch [b², b² + b).
        let scratch = (b * b) as i64;
        let mut kb = KernelBuilder::new("hist_blocks", k, b * b + b);
        // Value into scratch then a register.
        kb.glb_to_shr(AddrExpr::lane() + scratch, din, AddrExpr::block() * bi + AddrExpr::lane());
        kb.ld_shr(0, AddrExpr::lane() + scratch);
        // Guard padded lanes: treat out-of-range (padded-zero) values as
        // bin 0 — they are zeros already, so no guard is needed for the
        // value itself, but padded lanes of the last block must not count.
        // We mask them by the global index bound: idx = i·b + j < n.
        kb.alu(AluOp::Mul, 1, Operand::Block, Operand::Imm(bi));
        kb.alu(AluOp::Add, 1, Operand::Reg(1), Operand::Lane);
        kb.when(PredExpr::Lt(Operand::Reg(1), Operand::Imm(n as i64)), |kb| {
            // _h[j·b + value] += 1  (private row: race-free)
            kb.ld_shr(2, AddrExpr::lane() * bi + AddrExpr::reg(0));
            kb.alu(AluOp::Add, 2, Operand::Reg(2), Operand::Imm(1));
            kb.st_shr(AddrExpr::lane() * bi + AddrExpr::reg(0), Operand::Reg(2));
        });
        // Column-reduce each bin across lanes.
        kb.repeat(b as u32, |kb| {
            // scratch[j] ← _h[j·b + bin]   (stride-b read: full conflict)
            kb.ld_shr(3, AddrExpr::lane() * bi + AddrExpr::loop_var(0));
            kb.st_shr(AddrExpr::lane() + scratch, Operand::Reg(3));
            kb.repeat(steps, |kb| {
                kb.alu(AluOp::Shr, 4, Operand::Imm(bi / 2), Operand::LoopVar(1));
                kb.when(PredExpr::Lt(Operand::Lane, Operand::Reg(4)), |kb| {
                    kb.ld_shr(5, AddrExpr::lane() + scratch);
                    kb.ld_shr(6, AddrExpr::lane() + AddrExpr::reg(4) + scratch);
                    kb.alu(AluOp::Add, 5, Operand::Reg(5), Operand::Reg(6));
                    kb.st_shr(AddrExpr::lane() + scratch, Operand::Reg(5));
                });
            });
            kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
                kb.shr_to_glb(
                    dpart,
                    AddrExpr::block() * bi + AddrExpr::loop_var(0),
                    AddrExpr::c(scratch),
                );
            });
        });
        pb.begin_round();
        pb.transfer_in(hin, din, n);
        pb.launch(kb.build());

        // Round 2: sum the k partial rows.
        let mut kb = KernelBuilder::new("hist_merge", 1, b);
        kb.mov(0, Operand::Imm(0));
        kb.repeat(k as u32, |kb| {
            kb.glb_to_shr(AddrExpr::lane(), dpart, AddrExpr::loop_var(0) * bi + AddrExpr::lane());
            kb.ld_shr(1, AddrExpr::lane());
            kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(1));
        });
        kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
        kb.shr_to_glb(dhist, AddrExpr::lane(), AddrExpr::lane());
        pb.begin_round();
        pb.launch(kb.build());
        pb.transfer_out(dhist, hout, b);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        // Built for b-bin machines; the standard test machine has b = 32.
        vec![self.host_reference(32)]
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("rounds", Term::c(2.0)),
            BigO::new("time", Term::b().times(Term::b().log2())),
            BigO::new("io", Term::n().over(Term::b()).times(Term::b().plus(Term::c(2.0)))),
            BigO::new("transfer", Term::n().plus(Term::b())),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::{analyze_program, ConflictDegree};
    use atgpu_sim::SimConfig;

    #[test]
    fn simulation_matches_host() {
        for n in [32u64, 100, 1000, 1027] {
            let w = Histogram::new(n, 32, n);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn skewed_data_counts_correctly() {
        // All values identical: the worst bank-conflict case.
        let w = Histogram::from_data(vec![7; 256]);
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        let hist = r.output(atgpu_ir::HBuf(1));
        assert_eq!(hist[7], 256);
        assert_eq!(hist.iter().sum::<i64>(), 256);
    }

    #[test]
    fn analyzer_reports_data_dependent_conflicts() {
        let m = test_machine();
        let w = Histogram::new(256, 32, 1);
        let built = w.build(&m).unwrap();
        let a = analyze_program(&built.program, &m).unwrap();
        assert!(!a.conflict_free);
        let worst = a.rounds[0].kernel.as_ref().unwrap().bank.worst;
        assert_eq!(worst, ConflictDegree::DataDependent);
        // Global addressing is still affine: I/O stays exact.
        assert!(a.io_exact);
    }

    #[test]
    fn simulator_measures_real_conflicts() {
        let m = test_machine();
        let spec = test_spec();
        // Uniform values: each lane a distinct bin — every increment hits
        // bank (j·b + v) mod b = v: all lanes SAME bank when values equal.
        let skew = Histogram::from_data(vec![3; 1024]);
        let r1 = verify_on_sim(&skew, &m, &spec, &SimConfig::default()).unwrap();
        // Distinct values per lane: lane j gets value j → banks all
        // distinct → fewer conflict cycles.
        let spread: Vec<i64> = (0..1024).map(|i| (i % 32) as i64).collect();
        let spread = Histogram::from_data(spread);
        let r2 = verify_on_sim(&spread, &m, &spec, &SimConfig::default()).unwrap();
        let c1 = r1.rounds[0].kernel_stats.bank_conflict_cycles;
        let c2 = r2.rounds[0].kernel_stats.bank_conflict_cycles;
        assert!(c1 > c2, "skewed data should conflict more: {c1} vs {c2}");
    }

    #[test]
    fn out_of_range_values_rejected() {
        let w = Histogram::from_data(vec![99]);
        assert!(w.build(&test_machine()).is_err());
    }

    #[test]
    fn two_rounds() {
        let w = Histogram::new(1000, 32, 0);
        assert_eq!(w.build(&test_machine()).unwrap().program.num_rounds(), 2);
    }
}
