//! Histogram — data-dependent addressing, the case the model's
//! bank-conflict-free assumption cannot cover.
//!
//! `bins = b` values are counted.  Round 1 gives every lane a private
//! bin row in shared memory (`_h[j·b + bin]`), so increments are
//! race-free without atomics (which the model lacks, like early CUDA);
//! lanes hitting the same *bin* still collide on the same *bank* — a
//! genuine, input-dependent bank conflict the simulator measures and the
//! static analyser can only bound as `ConflictDegree::DataDependent`
//! (atgpu-analyze).  Each block then column-reduces its `b×b`
//! sub-histogram and writes a `b`-bin partial; round 2 sums the
//! partials on a single block.
//!
//! The cluster variant shards round 1's blocks across devices and
//! **peer-merges the partial bin rows to an owner device** (device 0),
//! which runs the summation and drains the result — the all-to-one
//! merge shape [`PeerProfile`] prices via
//! `merge_words_per_unit`, since every block contributes a `b`-word
//! partial row that must cross a peer link unless it already lives on
//! the owner.

use crate::error::AlgosError;
use crate::gen;
use crate::vecadd::check_shards_fit;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, Kernel, KernelBuilder, Operand, PredExpr, ProgramBuilder, Shard};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AtgpuMachine, PeerProfile, ShardProfile};

/// A histogram instance; `bins` is carried by the instance so host
/// references and expected outputs never need it re-supplied.
#[derive(Debug, Clone)]
pub struct Histogram {
    n: u64,
    bins: u64,
    data: Vec<i64>,
}

impl Histogram {
    /// Random instance of size `n` over `bins` bins; values are drawn in
    /// `[0, bins)`.  The kernel counts `b` bins, so build on a machine
    /// with `b = bins`.
    pub fn new(n: u64, bins: u64, seed: u64) -> Self {
        Self { n, bins, data: gen::bin_values(n, bins, seed) }
    }

    /// Instance from explicit data (caller guarantees values in
    /// `[0, bins)`; violations are rejected at build).
    pub fn from_data(data: Vec<i64>, bins: u64) -> Self {
        Self { n: data.len() as u64, bins, data }
    }

    /// Bin count this instance was generated for.
    pub fn bins(&self) -> u64 {
        self.bins
    }

    /// Host reference over [`Self::bins`] bins.
    pub fn host_reference(&self) -> Vec<i64> {
        let mut h = vec![0i64; self.bins as usize];
        for &v in &self.data {
            h[v as usize] += 1;
        }
        h
    }

    /// Shared validation: sizes, the power-of-two warp constraint, the
    /// machine/instance bin agreement, and value range.  Returns
    /// `(k, b, steps)`.
    fn check(&self, machine: &AtgpuMachine) -> Result<(u64, u64, u32), AlgosError> {
        if self.n == 0 {
            return Err(AlgosError::InvalidSize { reason: "empty input".into() });
        }
        let b = machine.b;
        if !b.is_power_of_two() || b < 2 {
            return Err(AlgosError::InvalidMachine {
                reason: format!("histogram needs b a power of two ≥ 2, got {b}"),
            });
        }
        if self.bins != b {
            return Err(AlgosError::InvalidMachine {
                reason: format!("instance counts {} bins but the kernel counts b = {b}", self.bins),
            });
        }
        if self.data.iter().any(|&v| v < 0 || v >= b as i64) {
            return Err(AlgosError::InvalidSize {
                reason: format!("values must lie in [0, bins) = [0, {b})"),
            });
        }
        Ok((machine.blocks_for(self.n), b, b.trailing_zeros()))
    }

    /// Two-round cluster histogram over an explicit shard plan of the
    /// block grid: each shard stages its input slice and builds per-block
    /// partial bin rows on its own device; every shard off the owner
    /// (device 0) then **peer-merges its partial rows to the owner**,
    /// which sums all `k` rows in block order — bit-identical to the
    /// single-device build — and drains the `b`-bin result.
    pub fn build_sharded_with(
        &self,
        machine: &AtgpuMachine,
        shards: Vec<Shard>,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, b, steps) = self.check(machine)?;
        check_shards_fit(&shards, k)?;
        let n = self.n;

        let mut pb = ProgramBuilder::new("histogram-sharded");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Hist", b);
        let din = pb.device_alloc("a", n);
        let dpart = pb.device_alloc("partial", k * b);
        let dhist = pb.device_alloc("hist", b);

        // Round 1: stage slices, per-block sub-histograms per shard.
        pb.begin_round();
        for s in &shards {
            let lo = s.start * b;
            pb.transfer_in_to(s.device, hin, lo, din, lo, (s.end * b).min(n) - lo);
        }
        pb.launch_sharded(hist_blocks_kernel(n, k, b, steps, din, dpart), shards.clone());

        // Round 2: merge partial rows to the owner, sum, drain.
        pb.begin_round();
        for s in &shards {
            if s.device != 0 {
                pb.transfer_peer(s.device, 0, dpart, s.start * b, s.start * b, s.blocks() * b);
            }
        }
        pb.launch_sharded(
            hist_merge_kernel(k, b, dpart, dhist),
            vec![Shard { device: 0, start: 0, end: 1 }],
        );
        pb.transfer_out_from(0, dhist, 0, hout, 0, b);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    /// [`Self::build_sharded_with`] over an even block split.
    pub fn build_sharded(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, _, _) = self.check(machine)?;
        self.build_sharded_with(machine, atgpu_sim::even_shards(k, devices))
    }

    /// The cost shape of the sharded histogram: a heavy bin-loop kernel
    /// round plus a merge round (`time_ops` is their mean; the owner's
    /// `k`-row summation is plan-invariant and left out), `b` input
    /// words staged per block, and a `b`-word partial row peer-merged
    /// to the owner per block — the all-to-one traffic the planner
    /// prices on the directed matrix, steering blocks toward the owner
    /// when links to it are slow.
    pub fn shard_profile(machine: &AtgpuMachine) -> ShardProfile {
        let b = machine.b.max(2);
        let steps = b.trailing_zeros() as u64;
        let t1 = 8 + b * (3 + 6 * steps); // prelude + per-bin reduce loop
        ShardProfile {
            time_ops: t1.div_ceil(2),
            io_blocks_per_unit: b + 1,
            inward_words_per_unit: b,
            inward_txns: 1,
            shared_words: b * b + b,
            rounds: 2,
            peer: PeerProfile {
                merge_words_per_unit: b,
                merge_txns: 1,
                owner: 0,
                ..PeerProfile::default()
            },
            ..ShardProfile::default()
        }
    }

    /// [`Self::build_sharded_with`] with blocks apportioned by the
    /// peer-aware planner pricing [`Self::shard_profile`] — including
    /// dropping devices whose merge path to the owner costs more than
    /// their compute saves.
    pub fn build_sharded_planned(
        &self,
        machine: &AtgpuMachine,
        cluster: &atgpu_model::ClusterSpec,
    ) -> Result<BuiltProgram, AlgosError> {
        let (k, _, _) = self.check(machine)?;
        let shards = atgpu_sim::planned_shards(k, cluster, machine, &Self::shard_profile(machine));
        self.build_sharded_with(machine, shards)
    }
}

/// Round-1 kernel: per-block `b×b` sub-histogram in shared memory
/// (private row per lane, race-free without atomics), then a per-bin
/// column reduction writing a `b`-bin partial row to `dpart`.
/// Shared: sub-hist `[0, b²)`, scratch `[b², b² + b)`.
fn hist_blocks_kernel(
    n: u64,
    k: u64,
    b: u64,
    steps: u32,
    din: atgpu_ir::DBuf,
    dpart: atgpu_ir::DBuf,
) -> Kernel {
    let bi = b as i64;
    let scratch = (b * b) as i64;
    let mut kb = KernelBuilder::new("hist_blocks", k, b * b + b);
    // Value into scratch then a register.
    kb.glb_to_shr(AddrExpr::lane() + scratch, din, AddrExpr::block() * bi + AddrExpr::lane());
    kb.ld_shr(0, AddrExpr::lane() + scratch);
    // Guard padded lanes: treat out-of-range (padded-zero) values as
    // bin 0 — they are zeros already, so no guard is needed for the
    // value itself, but padded lanes of the last block must not count.
    // We mask them by the global index bound: idx = i·b + j < n.
    kb.alu(AluOp::Mul, 1, Operand::Block, Operand::Imm(bi));
    kb.alu(AluOp::Add, 1, Operand::Reg(1), Operand::Lane);
    kb.when(PredExpr::Lt(Operand::Reg(1), Operand::Imm(n as i64)), |kb| {
        // _h[j·b + value] += 1  (private row: race-free)
        kb.ld_shr(2, AddrExpr::lane() * bi + AddrExpr::reg(0));
        kb.alu(AluOp::Add, 2, Operand::Reg(2), Operand::Imm(1));
        kb.st_shr(AddrExpr::lane() * bi + AddrExpr::reg(0), Operand::Reg(2));
    });
    // Column-reduce each bin across lanes.
    kb.repeat(b as u32, |kb| {
        // scratch[j] ← _h[j·b + bin]   (stride-b read: full conflict)
        kb.ld_shr(3, AddrExpr::lane() * bi + AddrExpr::loop_var(0));
        kb.st_shr(AddrExpr::lane() + scratch, Operand::Reg(3));
        kb.repeat(steps, |kb| {
            kb.alu(AluOp::Shr, 4, Operand::Imm(bi / 2), Operand::LoopVar(1));
            kb.when(PredExpr::Lt(Operand::Lane, Operand::Reg(4)), |kb| {
                kb.ld_shr(5, AddrExpr::lane() + scratch);
                kb.ld_shr(6, AddrExpr::lane() + AddrExpr::reg(4) + scratch);
                kb.alu(AluOp::Add, 5, Operand::Reg(5), Operand::Reg(6));
                kb.st_shr(AddrExpr::lane() + scratch, Operand::Reg(5));
            });
        });
        kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
            kb.shr_to_glb(
                dpart,
                AddrExpr::block() * bi + AddrExpr::loop_var(0),
                AddrExpr::c(scratch),
            );
        });
    });
    kb.build()
}

/// Round-2 kernel: a single block sums the `k` partial rows into the
/// final `b`-bin histogram.
fn hist_merge_kernel(k: u64, b: u64, dpart: atgpu_ir::DBuf, dhist: atgpu_ir::DBuf) -> Kernel {
    let bi = b as i64;
    let mut kb = KernelBuilder::new("hist_merge", 1, b);
    kb.mov(0, Operand::Imm(0));
    kb.repeat(k as u32, |kb| {
        kb.glb_to_shr(AddrExpr::lane(), dpart, AddrExpr::loop_var(0) * bi + AddrExpr::lane());
        kb.ld_shr(1, AddrExpr::lane());
        kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(1));
    });
    kb.st_shr(AddrExpr::lane(), Operand::Reg(0));
    kb.shr_to_glb(dhist, AddrExpr::lane(), AddrExpr::lane());
    kb.build()
}

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "histogram"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let (k, b, steps) = self.check(machine)?;
        let n = self.n;

        let mut pb = ProgramBuilder::new("histogram");
        let hin = pb.host_input("A", n);
        let hout = pb.host_output("Hist", b);
        let din = pb.device_alloc("a", n);
        let dpart = pb.device_alloc("partial", k * b);
        let dhist = pb.device_alloc("hist", b);

        // Round 1: per-block sub-histograms + column reduction.
        pb.begin_round();
        pb.transfer_in(hin, din, n);
        pb.launch(hist_blocks_kernel(n, k, b, steps, din, dpart));

        // Round 2: sum the k partial rows.
        pb.begin_round();
        pb.launch(hist_merge_kernel(k, b, dpart, dhist));
        pb.transfer_out(dhist, hout, b);

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.data.clone()],
            outputs: vec![hout],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("rounds", Term::c(2.0)),
            BigO::new("time", Term::b().times(Term::b().log2())),
            BigO::new("io", Term::n().over(Term::b()).times(Term::b().plus(Term::c(2.0)))),
            BigO::new("transfer", Term::n().plus(Term::b())),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::{analyze_program, ConflictDegree};
    use atgpu_sim::SimConfig;

    #[test]
    fn simulation_matches_host() {
        for n in [32u64, 100, 1000, 1027] {
            let w = Histogram::new(n, 32, n);
            verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default())
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn skewed_data_counts_correctly() {
        // All values identical: the worst bank-conflict case.
        let w = Histogram::from_data(vec![7; 256], 32);
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        let hist = r.output(atgpu_ir::HBuf(1));
        assert_eq!(hist[7], 256);
        assert_eq!(hist.iter().sum::<i64>(), 256);
    }

    #[test]
    fn analyzer_reports_data_dependent_conflicts() {
        let m = test_machine();
        let w = Histogram::new(256, 32, 1);
        let built = w.build(&m).unwrap();
        let a = analyze_program(&built.program, &m).unwrap();
        assert!(!a.conflict_free);
        let worst = a.rounds[0].kernel.as_ref().unwrap().bank.worst;
        assert_eq!(worst, ConflictDegree::DataDependent);
        // Global addressing is still affine: I/O stays exact.
        assert!(a.io_exact);
    }

    #[test]
    fn simulator_measures_real_conflicts() {
        let m = test_machine();
        let spec = test_spec();
        // Uniform values: each lane a distinct bin — every increment hits
        // bank (j·b + v) mod b = v: all lanes SAME bank when values equal.
        let skew = Histogram::from_data(vec![3; 1024], 32);
        let r1 = verify_on_sim(&skew, &m, &spec, &SimConfig::default()).unwrap();
        // Distinct values per lane: lane j gets value j → banks all
        // distinct → fewer conflict cycles.
        let spread: Vec<i64> = (0..1024).map(|i| (i % 32) as i64).collect();
        let spread = Histogram::from_data(spread, 32);
        let r2 = verify_on_sim(&spread, &m, &spec, &SimConfig::default()).unwrap();
        let c1 = r1.rounds[0].kernel_stats.bank_conflict_cycles;
        let c2 = r2.rounds[0].kernel_stats.bank_conflict_cycles;
        assert!(c1 > c2, "skewed data should conflict more: {c1} vs {c2}");
    }

    #[test]
    fn out_of_range_values_rejected() {
        let w = Histogram::from_data(vec![99], 32);
        assert!(w.build(&test_machine()).is_err());
    }

    #[test]
    fn mismatched_bins_rejected() {
        // The instance carries its bin count: building 8-bin data on a
        // 32-bin machine must fail loudly, not quietly widen.
        let w = Histogram::new(256, 8, 0);
        assert!(w.build(&test_machine()).is_err());
    }

    #[test]
    fn two_rounds() {
        let w = Histogram::new(1000, 32, 0);
        assert_eq!(w.build(&test_machine()).unwrap().program.num_rounds(), 2);
    }

    use crate::workload::verify_built_on_cluster;
    use atgpu_model::{ClusterSpec, LinkParams};

    fn cluster(n: usize) -> ClusterSpec {
        ClusterSpec::homogeneous(n, test_spec())
    }

    #[test]
    fn sharded_peer_merge_matches_host() {
        let m = test_machine();
        for devices in [1u32, 2, 3, 4] {
            for n in [200u64, 1027, 4096] {
                let w = Histogram::new(n, 32, n + devices as u64);
                let built = w.build_sharded(&m, devices).unwrap();
                verify_built_on_cluster(
                    &built,
                    &[w.host_reference()],
                    &m,
                    &cluster(devices as usize),
                    &SimConfig::default(),
                )
                .unwrap_or_else(|e| panic!("devices={devices} n={n}: {e}"));
            }
        }
    }

    #[test]
    fn planned_sharding_avoids_expensive_merge_path() {
        let m = test_machine();
        let mut spec = cluster(3);
        // Device 2's directed link *to the owner* is very expensive; its
        // merge rows would dominate the round, so the planner should
        // starve it, and the plan must still verify bit-identically.
        spec.peer_links[2][0] = LinkParams { alpha_ms: 20.0, beta_ms_per_word: 1.0 };
        let w = Histogram::new(4096, 32, 5);
        let built = w.build_sharded_planned(&m, &spec).unwrap();
        let blocks_on_2: u64 = built.program.rounds[0]
            .shards()
            .unwrap()
            .iter()
            .filter(|s| s.device == 2)
            .map(Shard::blocks)
            .sum();
        let k = m.blocks_for(4096);
        assert!(
            blocks_on_2 < k / 3,
            "device 2 should get a below-even share, got {blocks_on_2} of {k}"
        );
        verify_built_on_cluster(&built, &[w.host_reference()], &m, &spec, &SimConfig::default())
            .unwrap();
    }
}
