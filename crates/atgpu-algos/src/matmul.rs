//! Tiled matrix multiplication — the paper's §IV-C workload (Figure 5).
//!
//! "We use a well known GPU method for matrix multiplication in shared
//! memory (introduced in the CUDA Programming Guide), modified for the
//! single warp per multiprocessor of our model."
//!
//! Launch geometry: a 2-D grid of `(n/b) × (n/b)` thread blocks; block
//! `(ix, iy)` computes the `b×b` output tile at tile-row `iy`, tile-column
//! `ix`.  Each of the `n/b` tile steps stages one `A` tile and one `B`
//! tile into shared memory (`b` coalesced row loads each), then each lane
//! `j` accumulates column `j` of the tile across all `b` rows.  The
//! accumulator strip lives in shared memory (`3b²` words total), relying
//! on the machine's zero-initialised shared memory.
//!
//! Paper analysis: 1 round, time `O(nb)`, I/O `O((n/b)²(n+b))`, global
//! `O(n²)`, shared `O(b²)`, transfer `O(α + βn²)` — compute dominates and
//! data transfer is negligible, the case where SWGPU already predicts
//! well.

use crate::error::AlgosError;
use crate::gen;
use crate::workload::{BuiltProgram, Workload};
use atgpu_ir::{AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
use atgpu_model::asymptotics::{BigO, Term};
use atgpu_model::{AlgoMetrics, AtgpuMachine, RoundMetrics};

/// An `n×n` matrix-multiplication instance `C = A×B` (row-major).
#[derive(Debug, Clone)]
pub struct MatMul {
    n: u64,
    a: Vec<i64>,
    b: Vec<i64>,
}

impl MatMul {
    /// Random instance with side length `n`.
    pub fn new(n: u64, seed: u64) -> Self {
        Self {
            n,
            a: gen::matrix_entries(n * n, seed),
            b: gen::matrix_entries(n * n, seed.wrapping_add(1)),
        }
    }

    /// Instance from explicit row-major data.
    pub fn from_data(n: u64, a: Vec<i64>, b: Vec<i64>) -> Result<Self, AlgosError> {
        if a.len() as u64 != n * n || b.len() as u64 != n * n {
            return Err(AlgosError::InvalidSize { reason: format!("matrices must be {n}×{n}") });
        }
        Ok(Self { n, a, b })
    }

    /// Host reference: classic triple loop.
    pub fn host_reference(&self) -> Vec<i64> {
        let n = self.n as usize;
        let mut c = vec![0i64; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = self.a[i * n + k];
                if aik == 0 {
                    continue;
                }
                for j in 0..n {
                    c[i * n + j] += aik * self.b[k * n + j];
                }
            }
        }
        c
    }

    /// Builds a **multi-device** matrix multiplication sharded by tile
    /// row: device `d` computes a contiguous band of C's tile rows.  `B`
    /// is broadcast to every participating device; each device receives
    /// only its band of `A` and returns its band of `C` (both contiguous
    /// in row-major order, so one transfer transaction each).  Because a
    /// tile row is a contiguous range of linear block indices
    /// (`id = iy·t + ix`), the band maps to one [`atgpu_ir::Shard`].
    pub fn build_sharded(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
    ) -> Result<BuiltProgram, AlgosError> {
        let t = self.n / machine.b.max(1);
        self.build_sharded_rows(machine, atgpu_sim::even_shards(t, devices))
    }

    /// The per-tile-row cost shape of the sharded multiplication — the
    /// planning unit is one tile row (`t = n/b` thread blocks, `b·n`
    /// words of `A` in, `b·n` words of `C` out) with `B` broadcast to
    /// every participating device regardless of its share.
    pub fn row_profile(&self, machine: &AtgpuMachine) -> atgpu_model::ShardProfile {
        let n = self.n;
        let b = machine.b.max(1);
        let t = n / b;
        atgpu_model::ShardProfile {
            time_ops: Self::time_ops(n, b),
            io_blocks_per_unit: t * (2 * n + b),
            inward_words_per_unit: b * n,
            inward_txns: 1,
            outward_words_per_unit: b * n,
            outward_txns: 1,
            broadcast_words: n * n,
            broadcast_txns: 1,
            shared_words: 3 * b * b,
            blocks_per_unit: t,
            ..atgpu_model::ShardProfile::default()
        }
    }

    /// [`Self::build_sharded`] with the tile rows split by the
    /// **cost-driven planner** ([`atgpu_sim::planned_shards`]): candidate
    /// row apportionments (even, compute-weighted, transfer-balanced)
    /// are priced with [`Self::row_profile`] through the cluster cost
    /// function, so a mixed-generation cluster's fast devices get
    /// proportionally larger bands *and* a slow host link costs its
    /// device rows — both effects in one objective, where the old
    /// `k′·clock` weighting saw only the first.
    pub fn build_sharded_planned(
        &self,
        machine: &AtgpuMachine,
        cluster: &atgpu_model::ClusterSpec,
    ) -> Result<BuiltProgram, AlgosError> {
        let t = self.n / machine.b.max(1);
        let shards = atgpu_sim::planned_shards(t, cluster, machine, &self.row_profile(machine));
        self.build_sharded_rows(machine, shards)
    }

    /// [`Self::build_sharded`] with an explicit **tile-row** shard plan
    /// (a contiguous partition of the `n/b` rows) — what the experiment
    /// harness uses to compare planners on the same program shape.
    pub fn build_sharded_rows(
        &self,
        machine: &AtgpuMachine,
        row_shards: Vec<atgpu_ir::Shard>,
    ) -> Result<BuiltProgram, AlgosError> {
        let n = self.n;
        let b = machine.b;
        if n == 0 || !n.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("matrix side {n} must be a positive multiple of b = {b}"),
            });
        }
        if machine.m < 3 * b * b {
            return Err(AlgosError::InvalidMachine {
                reason: format!(
                    "tiled matmul needs 3b² = {} shared words, machine has M = {}",
                    3 * b * b,
                    machine.m
                ),
            });
        }
        let t = n / b;
        crate::vecadd::check_shards_fit(&row_shards, t)?;
        let nn = n * n;

        let mut pb = ProgramBuilder::new("matmul_sharded");
        let ha = pb.host_input("A", nn);
        let hb = pb.host_input("B", nn);
        let hc = pb.host_output("C", nn);
        let da = pb.device_alloc("a", nn);
        let db = pb.device_alloc("b", nn);
        let dc = pb.device_alloc("c", nn);

        // Row band [y0, y1) is the linear block range [y0·t, y1·t) and
        // the word range [y0·b·n, y1·b·n).
        let shards: Vec<atgpu_ir::Shard> = row_shards
            .iter()
            .map(|s| atgpu_ir::Shard { device: s.device, start: s.start * t, end: s.end * t })
            .collect();

        pb.begin_round();
        for s in &row_shards {
            let off = s.start * b * n;
            let words = s.blocks() * b * n;
            pb.transfer_in_to(s.device, ha, off, da, off, words);
            pb.transfer_in_to(s.device, hb, 0, db, 0, nn); // broadcast B
        }
        pb.launch_sharded(tiled_kernel(n, b, da, db, dc), shards);
        for s in &row_shards {
            let off = s.start * b * n;
            let words = s.blocks() * b * n;
            pb.transfer_out_from(s.device, dc, off, hc, off, words);
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }

    /// Builds the **double-buffered streamed** sharded multiplication:
    /// C's tile rows are processed slab by slab — each round launches one
    /// slab of `devices · chunk_rows` tile rows, sharded contiguously
    /// over the devices — and every device uploads its share of slab
    /// `k + 1`'s `A` rows on **stream 1** while slab `k`'s kernel and `C`
    /// download run on **stream 0** (the classic copy/compute-overlap
    /// pipeline, on every device at once).  `B` is broadcast once in a
    /// prologue round.  Outputs are bit-identical to [`Self::build_sharded`]
    /// and to the serial de-streamed form.  The tile rows need **not**
    /// divide evenly: the final slab may be ragged (fewer than
    /// `devices · chunk_rows` rows), in which case its rows are
    /// re-apportioned evenly over the devices, so a device can even sit
    /// the ragged slab out entirely.
    pub fn build_sharded_streamed(
        &self,
        machine: &AtgpuMachine,
        devices: u32,
        chunk_rows: u64,
    ) -> Result<BuiltProgram, AlgosError> {
        let n = self.n;
        let b = machine.b;
        if n == 0 || !n.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("matrix side {n} must be a positive multiple of b = {b}"),
            });
        }
        if machine.m < 3 * b * b {
            return Err(AlgosError::InvalidMachine {
                reason: format!(
                    "tiled matmul needs 3b² = {} shared words, machine has M = {}",
                    3 * b * b,
                    machine.m
                ),
            });
        }
        let t = n / b;
        let devices = devices.max(1);
        let slab = u64::from(devices) * chunk_rows; // tile rows per full slab
        if chunk_rows == 0 {
            return Err(AlgosError::InvalidSize { reason: "chunk_rows must be positive".into() });
        }
        let slabs = t.div_ceil(slab);
        let nn = n * n;

        let mut pb = ProgramBuilder::new("matmul_sharded_streamed");
        let ha = pb.host_input("A", nn);
        let hb = pb.host_input("B", nn);
        let hc = pb.host_output("C", nn);
        let da = pb.device_alloc("a", nn);
        let db = pb.device_alloc("b", nn);
        let dc = pb.device_alloc("c", nn);

        // Slab k covers tile rows [k·slab, k·slab + slab_rows(k)); the
        // last slab may be ragged, and its rows are re-apportioned
        // evenly so no device is handed a phantom share.
        let slab_rows = |k: u64| slab.min(t - k * slab);
        let shares = |k: u64| atgpu_sim::even_shards(slab_rows(k), devices);
        let upload = |pb: &mut ProgramBuilder, k: u64, stream: u32| {
            for s in shares(k) {
                let off = (k * slab + s.start) * b * n;
                pb.transfer_in_streamed(s.device, stream, ha, off, da, off, s.blocks() * b * n);
            }
        };

        // Prologue: broadcast B everywhere and upload slab 0's A shares.
        pb.begin_round();
        for d in 0..devices {
            pb.transfer_in_to(d, hb, 0, db, 0, nn);
        }
        upload(&mut pb, 0, 0);

        for k in 0..slabs {
            pb.begin_round();
            if k + 1 < slabs {
                // Next slab's A shares ride the copy stream.
                upload(&mut pb, k + 1, 1);
            }
            let kernel = tiled_band_kernel(
                format!("matmul_slab{k}"),
                n,
                b,
                slab_rows(k),
                k * slab,
                da,
                db,
                dc,
            );
            // A device's band of rows [s.start, s.end) within the slab
            // is the contiguous linear block range [s.start·t, s.end·t)
            // of the slab grid.
            let shards: Vec<atgpu_ir::Shard> = shares(k)
                .iter()
                .map(|s| atgpu_ir::Shard { device: s.device, start: s.start * t, end: s.end * t })
                .collect();
            pb.launch_sharded(kernel, shards);
            for s in shares(k) {
                let off = (k * slab + s.start) * b * n;
                pb.transfer_out_streamed(s.device, 0, dc, off, hc, off, s.blocks() * b * n);
            }
        }

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }

    /// [`Self::build_sharded_streamed`] with the slab chunking
    /// **automatically solved**: candidate `chunk_rows` (the divisors of
    /// each device's row share) are priced as double-buffered pipelines
    /// through [`atgpu_model::plan::solve_chunk_units`] — per-device
    /// `StreamTimeline`s, host links and wave factors all in the
    /// objective — and the cheapest modeled schedule is emitted.  The
    /// hand-written `build_sharded_streamed` keeps its explicit
    /// `chunk_rows` knob; this derives it.  The slab emission needs
    /// equal per-device shares, so the **even pipelined schedule is
    /// itself priced against the one-shot cost-planned apportionment**
    /// and the cheaper modeled program is emitted — on a link-asymmetric
    /// cluster the non-even one-shot plan usually wins (overlap cannot
    /// hide an 8x-slower upload), so pipelining never re-introduces the
    /// transfer blind spot the planner exists to close.  Ragged row
    /// counts are fine — the streamed emitter re-apportions the final
    /// short slab — so the only fallback left is the degenerate empty
    /// cluster or empty grid.
    pub fn build_sharded_pipelined(
        &self,
        machine: &AtgpuMachine,
        cluster: &atgpu_model::ClusterSpec,
    ) -> Result<BuiltProgram, AlgosError> {
        let b = machine.b.max(1);
        let t = self.n / b;
        let devices = cluster.n_devices() as u64;
        if devices == 0 || t == 0 {
            return self.build_sharded_planned(machine, cluster);
        }
        let profile = self.row_profile(machine);
        let share = t.div_ceil(devices);
        let even_counts =
            atgpu_sim::shard_counts(&atgpu_sim::even_shards(t, devices as u32), devices as usize);
        let candidates: Vec<u64> = (1..=share).filter(|c| share.is_multiple_of(*c)).collect();
        let chunk_rows = atgpu_model::plan::solve_chunk_units(
            cluster,
            machine,
            &profile,
            &even_counts,
            &candidates,
        );
        // Price the even pipelined schedule against the (possibly
        // non-even) one-shot planned apportionment.
        let piped =
            atgpu_model::plan::pipeline_cost(cluster, machine, &profile, &even_counts, chunk_rows);
        let planned = atgpu_sim::planned_shards(t, cluster, machine, &profile);
        let oneshot = atgpu_model::plan::plan_cost(
            cluster,
            machine,
            &profile,
            &atgpu_sim::shard_counts(&planned, devices as usize),
        );
        match (piped, oneshot) {
            (Ok(p), Ok(o)) if p <= o => {
                self.build_sharded_streamed(machine, devices as u32, chunk_rows)
            }
            (Ok(_), Ok(_)) | (Err(_), _) => self.build_sharded_rows(machine, planned),
            (_, Err(_)) => self.build_sharded_streamed(machine, devices as u32, chunk_rows),
        }
    }

    /// Lockstep time ops of our kernel encoding for side `n`, width `b`.
    pub fn time_ops(n: u64, b: u64) -> u64 {
        let t = n / b; // tile steps
                       // per step: 2b tile-load ops + b rows × (ld acc + b×(2 ld + mul + add) + st acc)
                       // plus the final b-row tile store.
        t * (2 * b + b * (2 + 4 * b)) + b
    }
}

/// Builds the tiled-matmul kernel for an `n×n` problem on width `b`:
/// a 2-D grid of `(n/b) × (n/b)` blocks, `3b²` shared words.
fn tiled_kernel(
    n: u64,
    b: u64,
    da: atgpu_ir::DBuf,
    db: atgpu_ir::DBuf,
    dc: atgpu_ir::DBuf,
) -> atgpu_ir::Kernel {
    tiled_band_kernel("matmul_kernel".into(), n, b, n / b, 0, da, db, dc)
}

/// The tile-row-band form of the tiled kernel: a `(n/b) × rows` grid
/// computing C's tile rows `[row0, row0 + rows)` — `block_y` is the row
/// *within the band* and `row0` is baked into the global addresses.  With
/// `rows = n/b, row0 = 0` this is exactly [`tiled_kernel`]; chunked
/// (streamed) builds launch one band per round.
#[allow(clippy::too_many_arguments)]
fn tiled_band_kernel(
    name: String,
    n: u64,
    b: u64,
    rows: u64,
    row0: u64,
    da: atgpu_ir::DBuf,
    db: atgpu_ir::DBuf,
    dc: atgpu_ir::DBuf,
) -> atgpu_ir::Kernel {
    let t = n / b; // tiles per side
    let bi = b as i64;
    let ni = n as i64;
    let row_off = (row0 * b * n) as i64; // word offset of the band in A and C
                                         // Shared layout: A tile [0, b²), B tile [b², 2b²), C acc [2b², 3b²).
    let sa = 0i64;
    let sb = (b * b) as i64;
    let sc = 2 * (b * b) as i64;
    let mut kb = KernelBuilder::new_2d(name, (t, rows), 3 * b * b);
    kb.repeat(t as u32, |kb| {
        // Stage A tile: row t1 of tile (iy, t0).
        kb.repeat(b as u32, |kb| {
            kb.glb_to_shr(
                AddrExpr::loop_var(1) * bi + AddrExpr::lane() + sa,
                da,
                (AddrExpr::block_y() * bi + AddrExpr::loop_var(1)) * ni
                    + AddrExpr::loop_var(0) * bi
                    + AddrExpr::lane()
                    + row_off,
            );
        });
        // Stage B tile: row t1 of tile (t0, ix).
        kb.repeat(b as u32, |kb| {
            kb.glb_to_shr(
                AddrExpr::loop_var(1) * bi + AddrExpr::lane() + sb,
                db,
                (AddrExpr::loop_var(0) * bi + AddrExpr::loop_var(1)) * ni
                    + AddrExpr::block() * bi
                    + AddrExpr::lane(),
            );
        });
        // Accumulate: lane j owns column j of the C tile.
        kb.repeat(b as u32, |kb| {
            // r0 ← _C[t1·b + j]
            kb.ld_shr(0, AddrExpr::loop_var(1) * bi + AddrExpr::lane() + sc);
            kb.repeat(b as u32, |kb| {
                // r1 ← _A[t1·b + t2] (broadcast), r2 ← _B[t2·b + j]
                kb.ld_shr(1, AddrExpr::loop_var(1) * bi + AddrExpr::loop_var(2) + sa);
                kb.ld_shr(2, AddrExpr::loop_var(2) * bi + AddrExpr::lane() + sb);
                kb.alu(AluOp::Mul, 3, Operand::Reg(1), Operand::Reg(2));
                kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Reg(3));
            });
            kb.st_shr(AddrExpr::loop_var(1) * bi + AddrExpr::lane() + sc, Operand::Reg(0));
        });
    });
    // Write the C tile out, row by row.
    kb.repeat(b as u32, |kb| {
        kb.shr_to_glb(
            dc,
            (AddrExpr::block_y() * bi + AddrExpr::loop_var(0)) * ni
                + AddrExpr::block() * bi
                + AddrExpr::lane()
                + row_off,
            AddrExpr::loop_var(0) * bi + AddrExpr::lane() + sc,
        );
    });

    kb.build()
}

impl Workload for MatMul {
    fn name(&self) -> &'static str {
        "matmul"
    }

    fn size(&self) -> u64 {
        self.n
    }

    fn build(&self, machine: &AtgpuMachine) -> Result<BuiltProgram, AlgosError> {
        let n = self.n;
        let b = machine.b;
        if n == 0 || !n.is_multiple_of(b) {
            return Err(AlgosError::InvalidSize {
                reason: format!("matrix side {n} must be a positive multiple of b = {b}"),
            });
        }
        if machine.m < 3 * b * b {
            return Err(AlgosError::InvalidMachine {
                reason: format!(
                    "tiled matmul needs 3b² = {} shared words, machine has M = {}",
                    3 * b * b,
                    machine.m
                ),
            });
        }
        let nn = n * n;

        let mut pb = ProgramBuilder::new("matmul");
        let ha = pb.host_input("A", nn);
        let hb = pb.host_input("B", nn);
        let hc = pb.host_output("C", nn);
        let da = pb.device_alloc("a", nn);
        let db = pb.device_alloc("b", nn);
        let dc = pb.device_alloc("c", nn);

        pb.begin_round();
        pb.transfer_in(ha, da, nn); // A W A
        pb.transfer_in(hb, db, nn); // B W B
        pb.launch(tiled_kernel(n, b, da, db, dc));
        pb.transfer_out(dc, hc, nn); // C W c

        Ok(BuiltProgram {
            program: pb.build()?,
            inputs: vec![self.a.clone(), self.b.clone()],
            outputs: vec![hc],
        })
    }

    fn expected(&self) -> Vec<Vec<i64>> {
        vec![self.host_reference()]
    }

    fn closed_form(&self, machine: &AtgpuMachine) -> Option<AlgoMetrics> {
        let n = self.n;
        let b = machine.b;
        if !n.is_multiple_of(b) {
            return None;
        }
        let t = n / b;
        let k = t * t;
        Some(AlgoMetrics::new(vec![RoundMetrics {
            time: Self::time_ops(n, b),
            // Per block: t steps × 2b coalesced row loads + b row stores
            // = (n/b)²·(2n + b), the paper's I/O bound with constant 1.
            io_blocks: k * (2 * n + b),
            global_words: 3 * n * n,
            shared_words: 3 * b * b,
            inward_words: 2 * n * n,
            inward_txns: 2,
            outward_words: n * n,
            outward_txns: 1,
            blocks_launched: k,
        }]))
    }

    fn bounds(&self, _machine: &AtgpuMachine) -> Vec<BigO> {
        vec![
            BigO::new("rounds", Term::c(1.0)),
            BigO::new("time", Term::n().times(Term::b())),
            BigO::new("io", Term::n().over(Term::b()).pow(2).times(Term::n().plus(Term::b()))),
            BigO::new("global_space", Term::n().pow(2)),
            BigO::new("shared_space", Term::b().pow(2)),
            BigO::new("transfer", Term::n().pow(2)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{test_machine, test_spec, verify_on_sim};
    use atgpu_analyze::analyze_program;
    use atgpu_sim::SimConfig;

    #[test]
    fn analyzer_matches_closed_form() {
        let m = test_machine();
        for n in [32u64, 64, 96] {
            let w = MatMul::new(n, 11);
            let built = w.build(&m).unwrap();
            let analysis = analyze_program(&built.program, &m).unwrap();
            assert_eq!(
                analysis.metrics(),
                w.closed_form(&m).unwrap(),
                "closed form mismatch at n={n}"
            );
            assert!(analysis.io_exact, "matmul addressing should be exact");
            assert!(analysis.conflict_free, "tiled matmul should be conflict-free");
        }
    }

    #[test]
    fn io_matches_paper_formula() {
        let m = test_machine();
        let n = 128u64;
        let b = m.b;
        let w = MatMul::new(n, 1);
        let built = w.build(&m).unwrap();
        let a = analyze_program(&built.program, &m).unwrap();
        assert_eq!(a.metrics().total_io_blocks(), (n / b) * (n / b) * (2 * n + b));
    }

    #[test]
    fn simulation_matches_host_reference() {
        let w = MatMul::new(64, 5);
        verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
    }

    #[test]
    fn identity_times_matrix() {
        let n = 32u64;
        let mut ident = vec![0i64; (n * n) as usize];
        for i in 0..n as usize {
            ident[i * n as usize + i] = 1;
        }
        let b = gen::matrix_entries(n * n, 3);
        let w = MatMul::from_data(n, ident, b.clone()).unwrap();
        let r = verify_on_sim(&w, &test_machine(), &test_spec(), &SimConfig::default()).unwrap();
        assert_eq!(r.output(atgpu_ir::HBuf(2)), &b[..]);
    }

    #[test]
    fn non_multiple_side_rejected() {
        assert!(MatMul::new(33, 0).build(&test_machine()).is_err());
        assert!(MatMul::new(0, 0).build(&test_machine()).is_err());
    }

    #[test]
    fn tiny_shared_memory_rejected() {
        let m = AtgpuMachine::new(1 << 10, 32, 1024, 1 << 22).unwrap(); // M < 3b²
        assert!(MatMul::new(32, 0).build(&m).is_err());
    }

    #[test]
    fn transfer_negligible_like_paper() {
        // Figure 5/6c: kernel time dominates; ΔE is small.
        let w = MatMul::new(96, 2);
        let r = verify_on_sim(
            &w,
            &test_machine(),
            &atgpu_model::GpuSpec::gtx650_like(),
            &SimConfig::default(),
        )
        .unwrap();
        assert!(
            r.transfer_proportion() < 0.4,
            "matmul ΔE {} unexpectedly high",
            r.transfer_proportion()
        );
    }

    #[test]
    fn parallel_mode_agrees() {
        let w = MatMul::new(64, 9);
        let cfg = SimConfig {
            mode: atgpu_sim::ExecMode::Parallel { threads: 2 },
            ..SimConfig::default()
        };
        verify_on_sim(&w, &test_machine(), &test_spec(), &cfg).unwrap();
    }

    #[test]
    fn sharded_build_verifies_on_clusters() {
        use crate::workload::verify_built_on_cluster;
        let m = test_machine();
        // 96/32 = 3 tile rows: exercises devices > rows (trailing devices
        // idle) and uneven bands.
        for devices in [1u32, 2, 3, 4] {
            let w = MatMul::new(96, 5);
            let built = w.build_sharded(&m, devices).unwrap();
            let cluster = atgpu_model::ClusterSpec::homogeneous(devices as usize, test_spec());
            verify_built_on_cluster(&built, &w.expected(), &m, &cluster, &SimConfig::default())
                .unwrap_or_else(|e| panic!("devices={devices}: {e}"));
        }
    }

    #[test]
    fn streamed_sharded_build_verifies_and_overlaps() {
        use crate::workload::verify_built_on_cluster;
        use atgpu_sim::run_cluster_program;
        let m = test_machine();
        // n = 256 -> t = 8 tile rows.
        let w = MatMul::new(256, 13);
        for (devices, chunk_rows) in [(1u32, 2u64), (2, 2), (4, 1)] {
            let built = w.build_sharded_streamed(&m, devices, chunk_rows).unwrap();
            assert!(built.program.uses_streams());
            let cluster = atgpu_model::ClusterSpec::homogeneous(devices as usize, test_spec());
            let streamed =
                verify_built_on_cluster(&built, &w.expected(), &m, &cluster, &SimConfig::default())
                    .unwrap_or_else(|e| panic!("devices={devices} chunk={chunk_rows}: {e}"));
            // The de-streamed serial form computes the same C, slower or
            // equal (per-round max-of-chains never exceeds the sum).
            let serial = run_cluster_program(
                &built.program.destreamed(),
                built.inputs.clone(),
                &m,
                &cluster,
                &SimConfig::default(),
            )
            .unwrap();
            assert_eq!(serial.output(built.outputs[0]), streamed.output(built.outputs[0]));
            assert!(
                streamed.total_ms() <= serial.total_ms() + 1e-9,
                "devices={devices}: streamed {} vs serial {}",
                streamed.total_ms(),
                serial.total_ms()
            );
        }
    }

    #[test]
    fn planned_sharding_verifies_on_mixed_cluster() {
        use crate::workload::verify_built_on_cluster;
        let m = test_machine();
        let w = MatMul::new(256, 3); // t = 8 tile rows
                                     // A genuinely faster device 1 (more MPs, faster clock and λ,
                                     // faster link — the E8 mixed pair): the cost-driven planner must
                                     // hand it the larger band.  (A bare `k_prime` bump is *not*
                                     // enough: the model's kernel term is dominated by `λ·q`, which
                                     // no MP count changes — pricing correctly shrugs there.)
        let mut cluster = atgpu_model::ClusterSpec::homogeneous(2, test_spec());
        cluster.devices[1] = atgpu_model::GpuSpec::midrange_like();
        cluster.host_links[1] = cluster.devices[1].host_link();
        let built = w.build_sharded_planned(&m, &cluster).unwrap();
        let report =
            verify_built_on_cluster(&built, &w.expected(), &m, &cluster, &SimConfig::default())
                .unwrap();
        // The fast device ran more blocks than the slow one.
        let blocks: Vec<u64> =
            report.rounds[0].devices.iter().map(|d| d.kernel_stats.blocks).collect();
        assert!(blocks[1] > blocks[0], "{blocks:?}");
    }

    /// The auto-chunked pipeline: the solver picks `chunk_rows`, the
    /// emitted program verifies on the cluster, overlaps no worse than
    /// its de-streamed serial form, and the non-dividing case falls back
    /// to the one-shot planned build.
    #[test]
    fn pipelined_build_solves_chunking_and_verifies() {
        use crate::workload::verify_built_on_cluster;
        use atgpu_sim::run_cluster_program;
        let m = test_machine();
        let w = MatMul::new(256, 13); // t = 8 tile rows
                                      // Slow host links make the per-slab A upload worth hiding (on
                                      // the default fast links the solver correctly judges overlap
                                      // not worth an extra σ per round and emits one slab).
        let mut cluster = atgpu_model::ClusterSpec::homogeneous(2, test_spec());
        for l in &mut cluster.host_links {
            l.alpha_ms *= 8.0;
            l.beta_ms_per_word *= 8.0;
        }
        let built = w.build_sharded_pipelined(&m, &cluster).unwrap();
        assert!(built.program.uses_streams());
        let streamed =
            verify_built_on_cluster(&built, &w.expected(), &m, &cluster, &SimConfig::default())
                .unwrap();
        let serial = run_cluster_program(
            &built.program.destreamed(),
            built.inputs.clone(),
            &m,
            &cluster,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(serial.output(built.outputs[0]), streamed.output(built.outputs[0]));
        assert!(
            streamed.total_ms() <= serial.total_ms() + 1e-9,
            "pipelined {} vs serial {}",
            streamed.total_ms(),
            serial.total_ms()
        );

        // t = 3 rows on 2 devices slabs raggedly now — no planned
        // fallback, and the emitted program still verifies.
        let w3 = MatMul::new(96, 5);
        let fb = w3.build_sharded_pipelined(&m, &cluster).unwrap();
        verify_built_on_cluster(&fb, &w3.expected(), &m, &cluster, &SimConfig::default()).unwrap();
    }

    #[test]
    fn streamed_sharded_handles_ragged_grids() {
        use crate::workload::verify_built_on_cluster;
        let m = test_machine();
        let w = MatMul::new(96, 7); // t = 3 tile rows
        assert!(w.build_sharded_streamed(&m, 1, 0).is_err(), "chunk_rows = 0 must be rejected");
        // 3 rows never divide by 2 or 4 — each case leaves a ragged
        // final slab (or a single short slab) whose rows re-apportion
        // over the devices, some of which may sit the slab out.
        for (devices, chunk) in [(2u32, 1u64), (1, 2), (4, 1)] {
            let built = w.build_sharded_streamed(&m, devices, chunk).unwrap();
            let cluster = atgpu_model::ClusterSpec::homogeneous(devices as usize, test_spec());
            verify_built_on_cluster(&built, &w.expected(), &m, &cluster, &SimConfig::default())
                .unwrap_or_else(|e| panic!("devices={devices} chunk={chunk}: {e}"));
        }
    }
}
