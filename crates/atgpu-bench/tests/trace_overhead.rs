//! The tracing cost contract, measured: with [`SimConfig::trace`] off a
//! run pays only an `Option` null test per operation (the default —
//! nothing observable); with it on, the report is **bit-identical**
//! (tracing observes the scheduler, never feeds back) and the host
//! wall-clock stays within a generous factor of the untraced run (span
//! recording is a pooled ring write, far off the simulation's critical
//! path).

use atgpu_algos::ooc::OocVecAdd;
use atgpu_algos::Workload;
use atgpu_bench::bench_config;
use atgpu_sim::{run_program, SimConfig};
use std::time::{Duration, Instant};

#[test]
fn tracing_on_is_bit_identical_and_within_bench_noise() {
    let cfg = bench_config();
    // 32 rounds of chunked vecadd: enough spans (~4 per round) to make
    // recording cost visible if it ever lands on the hot path.
    let w = OocVecAdd::new(1 << 16, 2048, 7);
    let built = w.build(&cfg.machine).unwrap();
    let off = cfg.sim.clone();
    let on = SimConfig { trace: true, ..off.clone() };

    let r_off =
        run_program(&built.program, built.inputs.clone(), &cfg.machine, &cfg.spec, &off).unwrap();
    let r_on =
        run_program(&built.program, built.inputs.clone(), &cfg.machine, &cfg.spec, &on).unwrap();

    // Bit-identity: outputs, every round observation, every counter.
    assert_eq!(r_off.output(built.outputs[0]), r_on.output(built.outputs[0]));
    assert_eq!(r_off.rounds, r_on.rounds);
    assert_eq!(r_off.device_stats, r_on.device_stats);
    assert!(r_off.trace.is_none(), "tracing must be opt-in");
    let trace = r_on.trace.as_ref().expect("traced run records spans");
    assert!(trace.spans.len() >= 4 * 32, "expected a span per op per round");
    assert_eq!(trace.dropped, 0);

    // Wall-clock: min-of-5 each way.  The bound is deliberately loose —
    // this is a smoke alarm for tracing landing on the hot path (e.g.
    // allocating per span), not a precision benchmark.
    let time = |sim: &SimConfig| -> Duration {
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                let r =
                    run_program(&built.program, built.inputs.clone(), &cfg.machine, &cfg.spec, sim)
                        .unwrap();
                std::hint::black_box(&r);
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let t_off = time(&off);
    let t_on = time(&on);
    assert!(
        t_on <= t_off * 2 + Duration::from_millis(10),
        "tracing-on run {t_on:?} vs tracing-off {t_off:?} — recording is on the hot path"
    );
}
