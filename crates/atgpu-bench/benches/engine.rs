//! Substrate microbenches: simulator throughput, execution modes, the
//! coalescing analyser, OLS, pretty printing.

use atgpu_algos::{matmul::MatMul, vecadd::VecAdd, Workload};
use atgpu_analyze::analyze_program;
use atgpu_analyze::coalesce::site_transactions;
use atgpu_bench::bench_config;
use atgpu_calibrate::ols::{fit_line, fit_multilinear};
use atgpu_ir::affine::CompiledAddr;
use atgpu_ir::{pretty, AddrExpr};
use atgpu_sim::{run_program, ExecMode, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_simulator_throughput(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10).measurement_time(Duration::from_secs(6));

    let w = VecAdd::new(200_000, 1);
    let built = w.build(&cfg.machine).unwrap();
    g.bench_function("vecadd_200k_sequential", |b| {
        b.iter(|| {
            black_box(
                run_program(
                    &built.program,
                    built.inputs.clone(),
                    &cfg.machine,
                    &cfg.spec,
                    &SimConfig::default(),
                )
                .unwrap(),
            )
        });
    });
    g.bench_function("vecadd_200k_reference", |b| {
        // The retained tree-walking interpreter: the pre-engine baseline
        // the micro-op engine is measured against.
        let sim = SimConfig { use_reference: true, ..SimConfig::default() };
        b.iter(|| {
            black_box(
                run_program(&built.program, built.inputs.clone(), &cfg.machine, &cfg.spec, &sim)
                    .unwrap(),
            )
        });
    });
    g.bench_function("vecadd_200k_parallel2", |b| {
        let sim = SimConfig { mode: ExecMode::Parallel { threads: 2 }, ..SimConfig::default() };
        b.iter(|| {
            black_box(
                run_program(&built.program, built.inputs.clone(), &cfg.machine, &cfg.spec, &sim)
                    .unwrap(),
            )
        });
    });

    let w = MatMul::new(128, 1);
    let built = w.build(&cfg.machine).unwrap();
    g.bench_function("matmul_128_sequential", |b| {
        b.iter(|| {
            black_box(
                run_program(
                    &built.program,
                    built.inputs.clone(),
                    &cfg.machine,
                    &cfg.spec,
                    &SimConfig::default(),
                )
                .unwrap(),
            )
        });
    });
    g.finish();
}

fn bench_analyzer(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("analyzer");
    // The analyser is O(program size), independent of n — benchmark it at
    // full paper scale to prove the point.
    let w = VecAdd::new(10_000_000, 1);
    let built = w.build(&cfg.machine).unwrap();
    g.bench_function("vecadd_10M_static_analysis", |b| {
        b.iter(|| black_box(analyze_program(&built.program, &cfg.machine).unwrap()));
    });

    let addr = CompiledAddr::compile(AddrExpr::block() * 32 + AddrExpr::lane() * 2 + 7);
    g.bench_function("coalesce_site_1M_blocks", |b| {
        b.iter(|| black_box(site_transactions(&addr, 13, (1_000_000, 1), &[8, 4], 32)));
    });
    g.finish();
}

fn bench_ols(c: &mut Criterion) {
    let xs: Vec<f64> = (0..256).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 0.5 * x).collect();
    c.bench_function("ols_fit_line_256", |b| {
        b.iter(|| black_box(fit_line(&xs, &ys).unwrap()));
    });
    let rows: Vec<Vec<f64>> = (0..128).map(|i| vec![1.0, i as f64, (i * i) as f64]).collect();
    let ys: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[1] + 0.1 * r[2]).collect();
    c.bench_function("ols_multilinear_3x128", |b| {
        b.iter(|| black_box(fit_multilinear(&rows, &ys).unwrap()));
    });
}

fn bench_pretty(c: &mut Criterion) {
    let cfg = bench_config();
    let built = MatMul::new(128, 1).build(&cfg.machine).unwrap();
    c.bench_function("pretty_print_matmul", |b| {
        b.iter(|| black_box(pretty::render_program(&built.program)));
    });
}

criterion_group!(engine, bench_simulator_throughput, bench_analyzer, bench_ols, bench_pretty);
criterion_main!(engine);
