//! One benchmark per paper artefact.  Each group measures the
//! analyse+cost+simulate pipeline at a representative point of the
//! figure's sweep, and prints the regenerated quick-scale series once so
//! `cargo bench` doubles as a figure reproduction.

use atgpu_algos::{matmul::MatMul, reduce::Reduce, vecadd::VecAdd};
use atgpu_bench::bench_config;
use atgpu_exp::figures::{fig3, fig4, fig5, fig6, summary, table1};
use atgpu_exp::{run_row, SweepRow};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn print_rows(label: &str, rows: &[SweepRow]) {
    eprintln!("\n[{label}] n, atgpu_cost, swgpu_cost, total_ms, kernel_ms, dE, dT");
    for r in rows {
        eprintln!(
            "[{label}] {}, {:.4}, {:.4}, {:.4}, {:.4}, {:.3}, {:.3}",
            r.n, r.atgpu_cost, r.swgpu_cost, r.total_ms, r.kernel_ms, r.delta_e, r.delta_t
        );
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_comparison", |b| {
        b.iter(|| black_box(table1::markdown()));
    });
    eprintln!("\n[table1]\n{}", table1::ascii());
}

fn bench_fig3_vecadd(c: &mut Criterion) {
    let cfg = bench_config();
    let rows = fig3::rows(&cfg).expect("fig3 sweep");
    print_rows("fig3", &rows);
    let mut g = c.benchmark_group("fig3_vecadd");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("row_n100k", |b| {
        let w = VecAdd::new(100_000, 1);
        b.iter(|| black_box(run_row(&w, &cfg).unwrap()));
    });
    g.finish();
}

fn bench_fig4_reduction(c: &mut Criterion) {
    let cfg = bench_config();
    let rows = fig4::rows(&cfg).expect("fig4 sweep");
    print_rows("fig4", &rows);
    let mut g = c.benchmark_group("fig4_reduction");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("row_n2e14", |b| {
        let w = Reduce::new(1 << 14, 1);
        b.iter(|| black_box(run_row(&w, &cfg).unwrap()));
    });
    g.finish();
}

fn bench_fig5_matmul(c: &mut Criterion) {
    let cfg = bench_config();
    let rows = fig5::rows(&cfg).expect("fig5 sweep");
    print_rows("fig5", &rows);
    let mut g = c.benchmark_group("fig5_matmul");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("row_n128", |b| {
        let w = MatMul::new(128, 1);
        b.iter(|| black_box(run_row(&w, &cfg).unwrap()));
    });
    g.finish();
}

fn bench_fig6_and_summary(c: &mut Criterion) {
    let cfg = bench_config();
    let va = fig3::rows(&cfg).unwrap();
    let red = fig4::rows(&cfg).unwrap();
    let mm = fig5::rows(&cfg).unwrap();
    // Print the Δ panels and the summary table once.
    for f in fig6::figures(&va, &red, &mm) {
        eprintln!("\n[{}] ΔE/ΔT points: {:?}", f.id, f.series[0].points.len());
    }
    eprintln!("\n[summary]\n{}", summary::render(&va, &red, &mm));
    c.bench_function("fig6_delta_panels", |b| {
        b.iter(|| black_box(fig6::figures(&va, &red, &mm)));
    });
    c.bench_function("summary_stats", |b| {
        b.iter(|| black_box(summary::render(&va, &red, &mm)));
    });
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig3_vecadd,
    bench_fig4_reduction,
    bench_fig5_matmul,
    bench_fig6_and_summary
);
criterion_main!(figures);
