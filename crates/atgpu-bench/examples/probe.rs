use atgpu_algos::{vecadd::VecAdd, Workload};
use atgpu_bench::bench_config;
use atgpu_ir::HostStep;
use atgpu_sim::engine::{BlockExec, BlockSim};
use atgpu_sim::gmem::GlobalMemory;
use atgpu_sim::uop::CompiledKernel;
use atgpu_sim::warp::{GmemAccess, StepEvent, WarpExec};
use atgpu_sim::{run_program, Device, EngineSel, ExecMode, SimConfig};
use std::time::Instant;

fn main() {
    let cfg = bench_config();
    let built = VecAdd::new(200_000, 1).build(&cfg.machine).unwrap();
    let kernel = built
        .program
        .rounds
        .iter()
        .flat_map(|r| r.steps.iter())
        .find_map(|s| match s {
            HostStep::Launch(k) => Some(k),
            _ => None,
        })
        .unwrap();
    let (bases, total) = built.program.buffer_layout(cfg.machine.b);
    let mut g = GlobalMemory::new(bases.clone(), total, cfg.machine.b, cfg.machine.g).unwrap();
    let nregs = kernel.max_reg().map(|r| u32::from(r) + 1).unwrap_or(1);
    let b = cfg.machine.b as u32;
    let blocks = kernel.blocks();

    let best = |mut f: Box<dyn FnMut()>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };

    // Pure engine executor.
    let ck = CompiledKernel::compile(kernel, &bases, b, nregs);
    println!("replayable: {}", ck.replayable);
    {
        let mut ex = BlockExec::new(&ck);
        let t = Instant::now();
        for blk in 0..blocks {
            BlockSim::reset(&mut ex, blk);
            let mut acc = GmemAccess::Direct(&mut g);
            loop {
                if let StepEvent::Done = BlockSim::step(&mut ex, &mut acc).unwrap() {
                    break;
                }
            }
        }
        println!("engine-exec-only : {:.4}s", t.elapsed().as_secs_f64());
    }
    {
        let mut wx = WarpExec::new(kernel, &bases, b, nregs);
        let t = Instant::now();
        for blk in 0..blocks {
            BlockSim::reset(&mut wx, blk);
            let mut acc = GmemAccess::Direct(&mut g);
            loop {
                if let StepEvent::Done = BlockSim::step(&mut wx, &mut acc).unwrap() {
                    break;
                }
            }
        }
        println!("ref-exec-only    : {:.4}s", t.elapsed().as_secs_f64());
    }

    // Device-level (Mp + dram + event loop), no driver/transfers.
    let device = Device::new(cfg.machine, cfg.spec).unwrap();
    let e = best(Box::new({
        let device = &device;
        let kernel = kernel.clone();
        let mut g2 = GlobalMemory::new(bases.clone(), total, cfg.machine.b, cfg.machine.g).unwrap();
        move || {
            device
                .run_kernel_with(&kernel, &mut g2, ExecMode::Sequential, false, EngineSel::MicroOp)
                .unwrap();
        }
    }));
    println!("engine-device    : {:.4}s", e);
    let r = best(Box::new({
        let device = &device;
        let kernel = kernel.clone();
        let mut g2 = GlobalMemory::new(bases.clone(), total, cfg.machine.b, cfg.machine.g).unwrap();
        move || {
            device
                .run_kernel_with(
                    &kernel,
                    &mut g2,
                    ExecMode::Sequential,
                    false,
                    EngineSel::Reference,
                )
                .unwrap();
        }
    }));
    println!("ref-device       : {:.4}s  device-speedup={:.2}", r, r / e);

    // Full run_program.
    let e = best(Box::new({
        let built = VecAdd::new(200_000, 1).build(&cfg.machine).unwrap();
        let m = cfg.machine;
        let s = cfg.spec;
        move || {
            run_program(&built.program, built.inputs.clone(), &m, &s, &SimConfig::default())
                .unwrap();
        }
    }));
    println!("engine-full      : {:.4}s", e);
    let r = best(Box::new({
        let built = VecAdd::new(200_000, 1).build(&cfg.machine).unwrap();
        let m = cfg.machine;
        let s = cfg.spec;
        move || {
            run_program(
                &built.program,
                built.inputs.clone(),
                &m,
                &s,
                &SimConfig { use_reference: true, ..SimConfig::default() },
            )
            .unwrap();
        }
    }));
    println!("ref-full         : {:.4}s  full-speedup={:.2}", r, r / e);
}
