//! `cargo bench`-independent throughput harness and CI perf gate.
//!
//! Measures simulator throughput (blocks/second and wall time) for the
//! tracked workloads and writes machine-readable JSON so the perf
//! trajectory is recorded from PR 1 onward:
//!
//! ```text
//! cargo run --release -p atgpu-bench --bin throughput -- \
//!     [--out BENCH_7.json] [--fast] \
//!     [--compare BENCH_6.json] [--tolerance 0.85]
//! ```
//!
//! `--fast` runs one repetition per workload (CI smoke); the default
//! takes the best of five.  `--compare` turns the run into a
//! **regression gate**: after measuring, every workload recorded in the
//! baseline JSON is checked against the current run, and the process
//! exits nonzero if any workload's blocks/s drops below
//! `tolerance × baseline` (or disappears — see
//! [`atgpu_bench::gate`]).  Workloads new in the current run are
//! reported but not gated, so baselines can grow over time.
//!
//! Blocks/s are **host-normalized** before comparison: each workload's
//! engine throughput is divided by the *same run's* reference-interpreter
//! throughput on the same workload — the in-repo hardware yardstick,
//! whose code is frozen as the differential baseline — and that ratio is
//! gated against the baseline file's recorded ratio.  Raw blocks/s swing
//! with the recording host (CI runners differ by 2× and shared boxes
//! drift hour to hour, which this repo's own BENCH_*.json history shows
//! on untouched code), so an un-normalized gate would flake on machine
//! weather instead of catching regressions.  The normalized ratio itself
//! shifts across CPU generations, so the gate additionally divides each
//! workload's ratio by the clamped leave-one-out median of the fleet's
//! ratios (see [`atgpu_bench::gate`]) — host-wide shifts cancel,
//! relative per-workload regressions still trip.
//!
//! Cross-launch kernel-cache hit rates are reported per workload, and
//! the `relaunch_vecadd` pair measures the cache's effect directly: the
//! same repeated-launch program with the cache on (default) vs the
//! `SimConfig::cache` kill-switch off.

#![forbid(unsafe_code)]

use atgpu_algos::histogram::Histogram;
use atgpu_algos::ooc::OocVecAdd;
use atgpu_algos::reduce::{Reduce, ReduceVariant};
use atgpu_algos::stencil::Stencil;
use atgpu_algos::workload::BuiltProgram;
use atgpu_algos::{matmul::MatMul, vecadd::VecAdd, Workload};
use atgpu_bench::bench_config;
use atgpu_bench::gate;
use atgpu_model::ClusterSpec;
use atgpu_sim::{run_cluster_program, run_program, CacheStats, FaultEvent, FaultPlan, SimConfig};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    name: &'static str,
    blocks: u64,
    secs_reference: f64,
    secs_engine: f64,
    /// Kernel-cache counters of the engine run.
    cache: CacheStats,
}

impl Measurement {
    fn engine_bps(&self) -> f64 {
        self.blocks as f64 / self.secs_engine
    }

    /// Host-normalized throughput: engine blocks/s in units of the same
    /// run's reference-interpreter blocks/s (the machine-independent
    /// number the gate compares).
    fn normalized(&self) -> f64 {
        self.secs_reference / self.secs_engine
    }

    fn gate_entry(&self) -> gate::Entry {
        gate::Entry {
            name: self.name.to_string(),
            engine_bps: self.engine_bps(),
            normalized: self.normalized(),
        }
    }
}

/// Total thread blocks launched by a program (plain and sharded).
fn program_blocks(built: &BuiltProgram) -> u64 {
    built
        .program
        .rounds
        .iter()
        .flat_map(|r| r.steps.iter())
        .filter_map(|s| match s {
            atgpu_ir::HostStep::Launch(k) => Some(k.blocks()),
            atgpu_ir::HostStep::LaunchSharded { kernel, .. } => Some(kernel.blocks()),
            _ => None,
        })
        .sum()
}

fn measure_built_with(
    built: &BuiltProgram,
    name: &'static str,
    reps: usize,
    engine_cfg: &SimConfig,
) -> Measurement {
    let cfg = bench_config();
    let blocks = program_blocks(built);
    let time_mode = |sim: &SimConfig| -> (f64, CacheStats) {
        let mut best = f64::INFINITY;
        let mut cache = CacheStats::default();
        for _ in 0..reps {
            let inputs = built.inputs.clone();
            let t = Instant::now();
            let r = run_program(&built.program, inputs, &cfg.machine, &cfg.spec, sim)
                .expect("simulation succeeds");
            let dt = t.elapsed().as_secs_f64();
            cache = r.device_stats.cache;
            std::hint::black_box(r);
            best = best.min(dt);
        }
        (best, cache)
    };
    let (engine, cache) = time_mode(engine_cfg);
    let (reference, _) = time_mode(&SimConfig { use_reference: true, ..engine_cfg.clone() });
    Measurement { name, blocks, secs_reference: reference, secs_engine: engine, cache }
}

fn measure_built(built: &BuiltProgram, name: &'static str, reps: usize) -> Measurement {
    measure_built_with(built, name, reps, &SimConfig::default())
}

fn measure(w: &dyn Workload, name: &'static str, reps: usize) -> Measurement {
    let cfg = bench_config();
    let built = w.build(&cfg.machine).expect("workload builds");
    measure_built(&built, name, reps)
}

/// Times a sharded vecadd launch on an N-device cluster (simulation
/// throughput of the multi-device layer, engine vs reference).
fn measure_cluster(n: u64, devices: u32, name: &'static str, reps: usize) -> Measurement {
    let cfg = bench_config();
    let w = VecAdd::new(n, 1);
    let built = w.build_sharded(&cfg.machine, devices).expect("sharded vecadd builds");
    let cluster = ClusterSpec::homogeneous(devices as usize, cfg.spec);
    measure_on_cluster(built, cluster, name, reps)
}

/// Times the halo-exchange stencil on an N-device cluster: every round
/// after the first trades boundary cells over the peer links, so this
/// tracks the `TransferPeer` path plus the multi-round sharded-launch
/// machinery under sustained peer traffic.
fn measure_stencil_halo(
    n: u64,
    devices: u32,
    rounds: u64,
    name: &'static str,
    reps: usize,
) -> Measurement {
    let cfg = bench_config();
    let w = Stencil::new(n, 1);
    let built = w.build_sharded(&cfg.machine, devices, rounds).expect("sharded stencil builds");
    let cluster = ClusterSpec::homogeneous(devices as usize, cfg.spec);
    measure_on_cluster(built, cluster, name, reps)
}

/// Times the partial-bin histogram on an N-device cluster: each device
/// accumulates its shard's per-block bin rows, peer-merges them to the
/// owner device and a single-shard merge kernel folds them — the
/// all-to-one gather pattern.
fn measure_histogram_merge(n: u64, devices: u32, name: &'static str, reps: usize) -> Measurement {
    let cfg = bench_config();
    let w = Histogram::new(n, cfg.machine.b, 1);
    let built = w.build_sharded(&cfg.machine, devices).expect("sharded histogram builds");
    let cluster = ClusterSpec::homogeneous(devices as usize, cfg.spec);
    measure_on_cluster(built, cluster, name, reps)
}

/// Times the **cost-planned** sharded vecadd on a link-asymmetric
/// 2-device cluster (identical GPUs, second host link 8x slower) — the
/// pipeline-planner workload: plan candidates are priced through the
/// cluster cost function at build time, then the planned program is
/// simulated end to end.
fn measure_cluster_planned(n: u64, name: &'static str, reps: usize) -> Measurement {
    let cfg = bench_config();
    let mut cluster = ClusterSpec::homogeneous(2, cfg.spec);
    cluster.host_links[1] = atgpu_model::LinkParams {
        alpha_ms: cluster.host_links[1].alpha_ms * 8.0,
        beta_ms_per_word: cluster.host_links[1].beta_ms_per_word * 8.0,
    };
    let w = VecAdd::new(n, 1);
    let built =
        w.build_sharded_planned(&cfg.machine, &cluster).expect("planned sharded vecadd builds");
    measure_on_cluster(built, cluster, name, reps)
}

/// Concurrent-client serving throughput: `clients` threads each submit
/// the same sharded vecadd `per_client` times through one shared
/// [`atgpu_serve::CostServer`] — admission queueing, occupancy packing
/// and shared-cluster execution included — engine vs reference
/// interpretation.  The shared per-device kernel cache makes every
/// submission after the first a cache hit, so this also tracks the
/// serving layer's warm-path overhead.
fn measure_serve(
    n: u64,
    clients: usize,
    per_client: usize,
    name: &'static str,
    reps: usize,
) -> Measurement {
    use atgpu_serve::{CostServer, ServerConfig};
    let cfg = bench_config();
    let devices = 2u32;
    let built = VecAdd::new(n, 1).build_sharded(&cfg.machine, devices).expect("sharded builds");
    let cluster = ClusterSpec::homogeneous(devices as usize, cfg.spec);
    let blocks = cfg.machine.blocks_for(n) * (clients * per_client) as u64;

    let time_mode = |sim: &SimConfig| -> (f64, CacheStats) {
        let mut best = f64::INFINITY;
        let mut cache = CacheStats::default();
        for _ in 0..reps {
            let server = CostServer::new(
                cfg.machine,
                cluster.clone(),
                ServerConfig { sim: sim.clone(), ..ServerConfig::default() },
            )
            .expect("server builds");
            let t = Instant::now();
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let (server, built) = (&server, &built);
                    scope.spawn(move || {
                        let tenant = format!("client-{c}");
                        for _ in 0..per_client {
                            let r = server
                                .submit(&tenant, &built.program, built.inputs.clone())
                                .expect("submission succeeds");
                            std::hint::black_box(r);
                        }
                    });
                }
            });
            let dt = t.elapsed().as_secs_f64();
            // One more solo submission reads the shared devices'
            // cumulative cache counters for the whole drain.
            let r = server
                .submit("probe", &built.program, built.inputs.clone())
                .expect("probe submission succeeds");
            cache = r.device_stats_total().cache;
            best = best.min(dt);
        }
        (best, cache)
    };

    let (engine, cache) = time_mode(&SimConfig::default());
    let (reference, _) = time_mode(&SimConfig { use_reference: true, ..SimConfig::default() });
    Measurement { name, blocks, secs_reference: reference, secs_engine: engine, cache }
}

fn measure_on_cluster(
    built: BuiltProgram,
    cluster: ClusterSpec,
    name: &'static str,
    reps: usize,
) -> Measurement {
    let cfg = bench_config();
    let blocks = program_blocks(&built);

    let time_mode = |sim: &SimConfig| -> (f64, CacheStats) {
        let mut best = f64::INFINITY;
        let mut cache = CacheStats::default();
        for _ in 0..reps {
            let inputs = built.inputs.clone();
            let t = Instant::now();
            let r = run_cluster_program(&built.program, inputs, &cfg.machine, &cluster, sim)
                .expect("cluster simulation succeeds");
            let dt = t.elapsed().as_secs_f64();
            cache = r.device_stats_total().cache;
            std::hint::black_box(r);
            best = best.min(dt);
        }
        (best, cache)
    };

    let (engine, cache) = time_mode(&SimConfig::default());
    let (reference, _) = time_mode(&SimConfig { use_reference: true, ..SimConfig::default() });
    Measurement { name, blocks, secs_reference: reference, secs_engine: engine, cache }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_7.json");
    let mut reps = 5usize;
    let mut baseline: Option<String> = None;
    let mut tolerance = 0.85f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--compare" => {
                i += 1;
                baseline = Some(args.get(i).expect("--compare needs a baseline path").clone());
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance must be a number");
            }
            "--fast" => reps = 1,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // A gate needs stable numbers: single-repetition timings on shared
    // hosts swing far past any sane tolerance, so --compare enforces a
    // best-of-3 minimum even under --fast.
    if baseline.is_some() {
        reps = reps.max(3);
    }

    let vecadd = VecAdd::new(200_000, 1);
    let matmul = MatMul::new(128, 1);
    let reduce = Reduce::new(1 << 16, 1);
    let reduce_seq = Reduce::with_variant(1 << 16, 1, ReduceVariant::SequentialAddressing);
    let ooc_streamed = OocVecAdd::new(1 << 18, 1 << 15, 1)
        .build_streamed(&bench_config().machine)
        .expect("streamed ooc builds");
    // The repeated-launch shape the cross-launch kernel cache exists
    // for: a small replay-eligible grid launched 400 times, so per-launch
    // compile + first-block warmup dominate unless cached.
    let relaunch = {
        let cfg = bench_config();
        VecAdd::new(8 * cfg.machine.b, 1)
            .build_relaunched(&cfg.machine, 400)
            .expect("relaunched vecadd builds")
    };
    // Static-verification smoke: every benched program must verify
    // sound before it is worth timing — a program with a proven
    // cross-block write race or out-of-bounds access would be
    // benchmarking nondeterminism.  Prints one `verify:` line per
    // program for the CI job summary.
    {
        let cfg = bench_config();
        let check = |name: &str, built: &BuiltProgram| {
            let report = atgpu_verify::verify_program(&built.program, cfg.machine.b);
            if let Some(why) = report.first_unsoundness() {
                eprintln!("verify: {name}: UNSOUND — {why}");
                std::process::exit(1);
            }
            println!(
                "verify: {name}: sound ({} launch(es), {})",
                report.launches.len(),
                if report.all_race_free() { "proven race-free" } else { "race unknown" }
            );
        };
        check("vecadd_200k", &vecadd.build(&cfg.machine).expect("vecadd builds"));
        check("matmul_128", &matmul.build(&cfg.machine).expect("matmul builds"));
        check("reduce_64k", &reduce.build(&cfg.machine).expect("reduce builds"));
        check("reduce_seq_64k", &reduce_seq.build(&cfg.machine).expect("reduce builds"));
        check(
            "vecadd_sharded_4dev",
            &VecAdd::new(200_000, 1).build_sharded(&cfg.machine, 4).expect("sharded builds"),
        );
        check(
            "stencil_halo_4dev",
            &Stencil::new(65_536, 1).build_sharded(&cfg.machine, 4, 8).expect("stencil builds"),
        );
        check(
            "histogram_merge_4dev",
            &Histogram::new(1 << 16, cfg.machine.b, 1)
                .build_sharded(&cfg.machine, 4)
                .expect("histogram builds"),
        );
        check("ooc_vecadd_streamed", &ooc_streamed);
        check("relaunch_vecadd", &relaunch);
    }

    // Named, re-runnable measurements: the gate re-measures regressed
    // entries instead of trusting one sample.
    type MeasureFn<'a> = Box<dyn Fn(usize) -> Measurement + 'a>;
    let benches: Vec<(&str, MeasureFn<'_>)> = vec![
        ("vecadd_200k", Box::new(|r| measure(&vecadd, "vecadd_200k", r))),
        ("matmul_128", Box::new(|r| measure(&matmul, "matmul_128", r))),
        ("reduce_64k", Box::new(|r| measure(&reduce, "reduce_64k", r))),
        ("reduce_seq_64k", Box::new(|r| measure(&reduce_seq, "reduce_seq_64k", r))),
        (
            "vecadd_sharded_1dev",
            Box::new(|r| measure_cluster(200_000, 1, "vecadd_sharded_1dev", r)),
        ),
        (
            "vecadd_sharded_4dev",
            Box::new(|r| measure_cluster(200_000, 4, "vecadd_sharded_4dev", r)),
        ),
        (
            "vecadd_planned_asym2dev",
            Box::new(|r| measure_cluster_planned(200_000, "vecadd_planned_asym2dev", r)),
        ),
        (
            "stencil_halo_4dev",
            Box::new(|r| measure_stencil_halo(65_536, 4, 8, "stencil_halo_4dev", r)),
        ),
        (
            "histogram_merge_4dev",
            Box::new(|r| measure_histogram_merge(1 << 16, 4, "histogram_merge_4dev", r)),
        ),
        (
            "ooc_vecadd_streamed",
            Box::new(|r| measure_built(&ooc_streamed, "ooc_vecadd_streamed", r)),
        ),
        (
            "serve_concurrent_8c",
            Box::new(|r| measure_serve(200_000, 8, 2, "serve_concurrent_8c", r)),
        ),
        ("relaunch_vecadd", Box::new(|r| measure_built(&relaunch, "relaunch_vecadd", r))),
        (
            "relaunch_vecadd_nocache",
            Box::new(|r| {
                measure_built_with(
                    &relaunch,
                    "relaunch_vecadd_nocache",
                    r,
                    &SimConfig { cache: false, ..SimConfig::default() },
                )
            }),
        ),
    ];
    let mut runs: Vec<Measurement> = benches.iter().map(|(_, b)| b(reps)).collect();

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let bps_ref = m.blocks as f64 / m.secs_reference;
        let bps_eng = m.engine_bps();
        let speedup = m.secs_reference / m.secs_engine;
        println!(
            "{:<24} blocks={:<8} reference={:>9.2} blk/s  engine={:>9.2} blk/s  speedup={:.2}x  \
             cache {}H/{}M",
            m.name, m.blocks, bps_ref, bps_eng, speedup, m.cache.hits, m.cache.misses
        );
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"blocks\": {}, \
             \"reference_secs\": {:.6}, \"engine_secs\": {:.6}, \
             \"reference_blocks_per_sec\": {:.2}, \"engine_blocks_per_sec\": {:.2}, \
             \"speedup\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}}}{}",
            m.name,
            m.blocks,
            m.secs_reference,
            m.secs_engine,
            bps_ref,
            bps_eng,
            speedup,
            m.cache.hits,
            m.cache.misses,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    // Cache summary: overall hit rate plus the direct on/off comparison
    // on the repeated-launch workload (printed for the CI job summary).
    let (hits, misses) =
        runs.iter().fold((0u64, 0u64), |(h, m), r| (h + r.cache.hits, m + r.cache.misses));
    println!(
        "kernel-cache: {hits} hits / {misses} misses ({:.1}% hit rate across workloads)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    let on = runs.iter().find(|m| m.name == "relaunch_vecadd");
    let off = runs.iter().find(|m| m.name == "relaunch_vecadd_nocache");
    if let (Some(on), Some(off)) = (on, off) {
        println!(
            "kernel-cache speedup (relaunch_vecadd, cache on vs off): {:.2}x \
             ({:.0} vs {:.0} blk/s; hit rate {:.1}%)",
            on.engine_bps() / off.engine_bps(),
            on.engine_bps(),
            off.engine_bps(),
            100.0 * on.cache.hit_rate()
        );
    }

    // Fault-injection smoke: the 4-device sharded vecadd under a seeded
    // drop plan plus a device loss at the round start — retry, backoff
    // and recovery counters are printed for the CI job summary, and the
    // degraded run's answers are checked against the fault-free run.
    {
        let cfg = bench_config();
        let w = VecAdd::new(200_000, 1);
        let built = w.build_sharded(&cfg.machine, 4).expect("sharded vecadd builds");
        let cluster = ClusterSpec::homogeneous(4, cfg.spec);
        let run = |sim: &SimConfig| {
            run_cluster_program(&built.program, built.inputs.clone(), &cfg.machine, &cluster, sim)
                .expect("chaos smoke run succeeds")
        };
        let base = run(&SimConfig::default());
        let mut plan = FaultPlan::random(0xC11A05, 4, 1, 0.25);
        plan.events.retain(|e| !matches!(e, FaultEvent::DeviceDown { .. }));
        plan.push(FaultEvent::DeviceDown { device: 2, at_round: 0 });
        let degraded = run(&SimConfig { fault: plan, ..SimConfig::default() });
        assert_eq!(
            base.output(built.outputs[0]),
            degraded.output(built.outputs[0]),
            "fault injection changed answers"
        );
        let s = degraded.device_stats_total();
        println!(
            "fault-injection (vecadd_sharded_4dev, seeded drops + device-2 loss): \
             retries={} backoff={:.3}ms recoveries={} degraded-wall-clock={:.2}x \
             answers=bit-identical",
            s.retries,
            s.backoff_ms,
            s.recoveries,
            degraded.total_ms() / base.total_ms()
        );
    }

    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let base = gate::parse_baseline(&text);
        assert!(!base.is_empty(), "no benchmarks found in {path}");
        let entries = |runs: &[Measurement]| -> Vec<gate::Entry> {
            runs.iter().map(Measurement::gate_entry).collect()
        };
        println!("\nperf gate vs {path} (tolerance {tolerance}, host-normalized blocks/s):");
        // A shared host's memory-bandwidth weather moves individual
        // samples past any sane tolerance, so a regression must
        // *reproduce*: entries that fail are re-measured (keeping their
        // best normalized result) up to two more times before the gate
        // fails — a real slowdown fails every retry.
        let mut failures = gate::failures(&entries(&runs), &base, tolerance);
        for attempt in 0..2 {
            if failures.is_empty() {
                break;
            }
            println!(
                "re-measuring {} regressed workload(s) (retry {})…",
                failures.len(),
                attempt + 1
            );
            for (name, b) in &benches {
                if !failures.iter().any(|f| f == name) {
                    continue;
                }
                let fresh = b(reps);
                let slot = runs.iter_mut().find(|m| m.name == fresh.name).expect("measured name");
                // The best-of rule of `gate::keep_best`, applied to the
                // full measurement.
                if fresh.normalized() > slot.normalized() {
                    *slot = fresh;
                }
            }
            failures = gate::failures(&entries(&runs), &base, tolerance);
        }
        if !failures.is_empty() {
            eprintln!(
                "{} workload(s) regressed below {tolerance}x baseline: {}",
                failures.len(),
                failures.join(", ")
            );
            std::process::exit(1);
        }
        println!("perf gate passed");
    }
}
