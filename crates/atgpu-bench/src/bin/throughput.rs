//! `cargo bench`-independent throughput harness.
//!
//! Measures simulator throughput (blocks/second and wall time) for the
//! tracked workloads and writes machine-readable JSON so the perf
//! trajectory is recorded from PR 1 onward:
//!
//! ```text
//! cargo run --release -p atgpu-bench --bin throughput -- [--out BENCH_1.json] [--fast]
//! ```
//!
//! `--fast` runs one repetition per workload (CI smoke); the default
//! takes the best of five.

use atgpu_algos::reduce::{Reduce, ReduceVariant};
use atgpu_algos::{matmul::MatMul, vecadd::VecAdd, Workload};
use atgpu_bench::bench_config;
use atgpu_model::ClusterSpec;
use atgpu_sim::{run_cluster_program, run_program, SimConfig};
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    name: &'static str,
    blocks: u64,
    secs_reference: f64,
    secs_engine: f64,
}

fn measure(w: &dyn Workload, name: &'static str, reps: usize) -> Measurement {
    let cfg = bench_config();
    let built = w.build(&cfg.machine).expect("workload builds");
    let blocks: u64 = built
        .program
        .rounds
        .iter()
        .flat_map(|r| r.steps.iter())
        .filter_map(|s| match s {
            atgpu_ir::HostStep::Launch(k) => Some(k.blocks()),
            _ => None,
        })
        .sum();

    let time_mode = |sim: &SimConfig| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let inputs = built.inputs.clone();
            let t = Instant::now();
            let r = run_program(&built.program, inputs, &cfg.machine, &cfg.spec, sim)
                .expect("simulation succeeds");
            let dt = t.elapsed().as_secs_f64();
            std::hint::black_box(r);
            best = best.min(dt);
        }
        best
    };

    let engine = time_mode(&SimConfig::default());
    let reference = time_mode(&SimConfig { use_reference: true, ..SimConfig::default() });
    Measurement { name, blocks, secs_reference: reference, secs_engine: engine }
}

/// Times a sharded vecadd launch on an N-device cluster (simulation
/// throughput of the multi-device layer, engine vs reference).
fn measure_cluster(n: u64, devices: u32, name: &'static str, reps: usize) -> Measurement {
    let cfg = bench_config();
    let w = VecAdd::new(n, 1);
    let built = w.build_sharded(&cfg.machine, devices).expect("sharded vecadd builds");
    let cluster = ClusterSpec::homogeneous(devices as usize, cfg.spec);
    let blocks = cfg.machine.blocks_for(n);

    let time_mode = |sim: &SimConfig| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let inputs = built.inputs.clone();
            let t = Instant::now();
            let r = run_cluster_program(&built.program, inputs, &cfg.machine, &cluster, sim)
                .expect("cluster simulation succeeds");
            let dt = t.elapsed().as_secs_f64();
            std::hint::black_box(r);
            best = best.min(dt);
        }
        best
    };

    let engine = time_mode(&SimConfig::default());
    let reference = time_mode(&SimConfig { use_reference: true, ..SimConfig::default() });
    Measurement { name, blocks, secs_reference: reference, secs_engine: engine }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_2.json");
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--fast" => reps = 1,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let vecadd = VecAdd::new(200_000, 1);
    let matmul = MatMul::new(128, 1);
    let reduce = Reduce::new(1 << 16, 1);
    let reduce_seq = Reduce::with_variant(1 << 16, 1, ReduceVariant::SequentialAddressing);
    let runs = [
        measure(&vecadd, "vecadd_200k", reps),
        measure(&matmul, "matmul_128", reps),
        measure(&reduce, "reduce_64k", reps),
        measure(&reduce_seq, "reduce_seq_64k", reps),
        measure_cluster(200_000, 1, "vecadd_sharded_1dev", reps),
        measure_cluster(200_000, 4, "vecadd_sharded_4dev", reps),
    ];

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let bps_ref = m.blocks as f64 / m.secs_reference;
        let bps_eng = m.blocks as f64 / m.secs_engine;
        let speedup = m.secs_reference / m.secs_engine;
        println!(
            "{:<14} blocks={:<8} reference={:>9.2} blk/s  engine={:>9.2} blk/s  speedup={:.2}x",
            m.name, m.blocks, bps_ref, bps_eng, speedup
        );
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"blocks\": {}, \
             \"reference_secs\": {:.6}, \"engine_secs\": {:.6}, \
             \"reference_blocks_per_sec\": {:.2}, \"engine_blocks_per_sec\": {:.2}, \
             \"speedup\": {:.3}}}{}",
            m.name,
            m.blocks,
            m.secs_reference,
            m.secs_engine,
            bps_ref,
            bps_eng,
            speedup,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
