//! # atgpu-bench — Criterion benchmark harness
//!
//! Two benchmark suites:
//!
//! * `benches/figures.rs` — one benchmark per paper artefact (Table I,
//!   Figures 3–6, the §IV-D summary): each measures the full
//!   analyse+cost+simulate pipeline at a representative sweep point and,
//!   on first run, prints the regenerated series so `cargo bench`
//!   doubles as a quick reproduction of every figure;
//! * `benches/engine.rs` — substrate microbenches: simulator instruction
//!   throughput, sequential vs parallel device execution, the
//!   residue-class coalescing analyser, OLS fitting, and IR pretty
//!   printing.
//!
//! Shared helpers live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atgpu_exp::{ExpConfig, Scale};

/// The benchmark configuration: quick scale, deterministic (no transfer
/// jitter).
pub fn bench_config() -> ExpConfig {
    let mut cfg = ExpConfig::standard(Scale::Quick);
    cfg.sim.noise = None;
    cfg
}

pub mod gate {
    //! The perf-regression gate shared by the `throughput` binary and its
    //! unit tests: baseline parsing and the pass/fail decision, kept free
    //! of measurement so both halves are testable.
    //!
    //! A workload **fails** the gate when its host-normalized blocks/s
    //! drops below `tolerance × baseline`, *or when it is present in the
    //! baseline but missing from the current run* — a silently deleted
    //! benchmark must not pass as "no regression".
    //!
    //! ## Cross-host drift correction
    //!
    //! Normalizing by the same run's reference interpreter cancels most
    //! machine weather, but the engine-vs-reference ratio itself shifts
    //! across CPU generations (observed: a box where every workload's
    //! normalized value sat uniformly ~0.8x below a baseline recorded
    //! elsewhere, while raw engine blocks/s was 1.1–2.2x *above* it).
    //! The gate therefore divides each workload's ratio by the
    //! **leave-one-out median** of the other matched workloads' ratios —
    //! a uniform host-wide shift cancels, while a workload regressing
    //! *relative to the fleet* still trips.  The correction is clamped
    //! to [1/[`MAX_DRIFT`], 1] — so a genuine across-the-board
    //! regression larger than the clamp still fails, and an *upward*
    //! fleet shift (faster box, or a PR that sped most workloads up)
    //! never penalises a workload that merely held steady — and is
    //! skipped entirely when fewer than 3 peer workloads exist (no
    //! robust estimate).

    /// One workload's numbers (from a baseline file or the current run).
    #[derive(Debug, Clone, PartialEq)]
    pub struct Entry {
        /// Workload name.
        pub name: String,
        /// Raw engine throughput (reported, not gated).
        pub engine_bps: f64,
        /// Host-normalized throughput: engine blocks/s over the same
        /// run's reference-interpreter blocks/s — the gated number.
        pub normalized: f64,
    }

    /// Extracts entries from a baseline JSON previously written by the
    /// `throughput` binary.  The format is our own (flat, one benchmark
    /// object per line), so a targeted scan beats dragging in a JSON
    /// dependency the build doesn't have.
    pub fn parse_baseline(text: &str) -> Vec<Entry> {
        let mut out = Vec::new();
        for line in text.lines() {
            let Some(name) = field_str(line, "name") else { continue };
            let Some(engine_bps) = field_num(line, "engine_blocks_per_sec") else { continue };
            let Some(normalized) = field_num(line, "speedup") else { continue };
            out.push(Entry { name, engine_bps, normalized });
        }
        out
    }

    fn field_str(line: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\": \"");
        let start = line.find(&pat)? + pat.len();
        let end = line[start..].find('"')? + start;
        Some(line[start..end].to_string())
    }

    /// Scans a flat benchmark line for a numeric field.
    pub fn field_num(line: &str, key: &str) -> Option<f64> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    }

    /// The widest uniform host drift the gate forgives (see module docs).
    pub const MAX_DRIFT: f64 = 1.5;

    /// The leave-one-out drift correction for the workload at `skip`:
    /// the median of the **other** ratios, clamped to
    /// [1/[`MAX_DRIFT`], 1]; 1.0 with fewer than 3 peers.  The upper
    /// clamp at 1 matters: only *downward* host drift is forgiven — a
    /// fleet whose ratios rose (a faster box, or a PR that genuinely
    /// sped up most workloads) must never turn an untouched workload's
    /// steady 1.0x into a failure.
    fn drift_correction(ratios: &[f64], skip: usize) -> f64 {
        let mut peers: Vec<f64> = ratios
            .iter()
            .enumerate()
            .filter(|&(i, r)| i != skip && r.is_finite())
            .map(|(_, &r)| r)
            .collect();
        if peers.len() < 3 {
            return 1.0;
        }
        peers.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = peers.len() / 2;
        let median =
            if peers.len() % 2 == 1 { peers[mid] } else { 0.5 * (peers[mid - 1] + peers[mid]) };
        median.clamp(1.0 / MAX_DRIFT, 1.0)
    }

    /// Gates `runs` against `baseline`: returns the names of regressed
    /// **or missing** workloads (empty = gate passes), printing one line
    /// per verdict.  Ratios are drift-corrected by the leave-one-out
    /// median (see module docs) before comparison against `tolerance`.
    /// Workloads new in the current run are reported but not gated, so
    /// baselines can grow over time.
    pub fn failures(runs: &[Entry], baseline: &[Entry], tolerance: f64) -> Vec<String> {
        // Raw ratios of the matched workloads, baseline order (NaN for
        // missing entries so indices line up with `baseline`).
        let ratios: Vec<f64> = baseline
            .iter()
            .map(|base| {
                runs.iter()
                    .find(|m| m.name == base.name)
                    .map(|m| m.normalized / base.normalized)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        // The correction's deliberate blind spot: a *uniform* ratio drop
        // between `tolerance` and 1/MAX_DRIFT is indistinguishable from
        // host drift and passes per-workload.  Surface it loudly so a
        // genuine across-the-board regression cannot slip by unremarked.
        {
            let mut all: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            if !all.is_empty() {
                let fleet = all[all.len() / 2];
                if fleet < tolerance {
                    println!(
                        "  WARN fleet median normalized ratio {fleet:.2}x is below tolerance \
                         {tolerance} — uniform host drift and a uniform code regression are \
                         indistinguishable here; compare raw blk/s against the baseline's \
                         recording box before trusting this gate"
                    );
                }
            }
        }
        let mut failures = Vec::new();
        for (i, base) in baseline.iter().enumerate() {
            match runs.iter().find(|m| m.name == base.name) {
                None => {
                    println!(
                        "  FAIL {:<24} missing from current run (baseline {:.0} blk/s)",
                        base.name, base.engine_bps
                    );
                    failures.push(base.name.clone());
                }
                Some(m) => {
                    let drift = drift_correction(&ratios, i);
                    let ratio = ratios[i] / drift;
                    let raw = m.engine_bps / base.engine_bps;
                    if ratio < tolerance {
                        println!(
                            "  FAIL {:<24} normalized {:.2} vs baseline {:.2} \
                             ({ratio:.2}x < {tolerance} after /{drift:.2} drift; \
                             raw blk/s {raw:.2}x)",
                            m.name, m.normalized, base.normalized
                        );
                        failures.push(base.name.clone());
                    } else {
                        println!(
                            "  ok   {:<24} normalized {:.2} vs baseline {:.2} \
                             ({ratio:.2}x after /{drift:.2} drift; raw blk/s {raw:.2}x)",
                            m.name, m.normalized, base.normalized
                        );
                    }
                }
            }
        }
        for m in runs {
            if !baseline.iter().any(|b| b.name == m.name) {
                println!("  new  {:<24} {:>12.0} blk/s (not gated)", m.name, m.engine_bps);
            }
        }
        failures
    }

    /// The re-measure-best-of rule: a retried workload keeps its **best**
    /// normalized result, so a one-off scheduling hiccup cannot fail the
    /// gate while a real slowdown fails every retry.
    pub fn keep_best(slot: &mut Entry, fresh: Entry) {
        if fresh.normalized > slot.normalized {
            *slot = fresh;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::gate::{failures, keep_best, parse_baseline, Entry};

    #[test]
    fn bench_config_is_deterministic() {
        assert!(super::bench_config().sim.noise.is_none());
    }

    fn e(name: &str, bps: f64, norm: f64) -> Entry {
        Entry { name: name.into(), engine_bps: bps, normalized: norm }
    }

    #[test]
    fn parse_baseline_reads_throughput_json() {
        let text = r#"{
  "benchmarks": [
    {"name": "vecadd", "blocks": 100, "reference_secs": 1.0, "engine_secs": 0.5, "reference_blocks_per_sec": 100.00, "engine_blocks_per_sec": 200.00, "speedup": 2.000},
    {"name": "matmul", "blocks": 10, "engine_blocks_per_sec": 50.00, "speedup": 1.500}
  ]
}"#;
        let b = parse_baseline(text);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], e("vecadd", 200.0, 2.0));
        assert_eq!(b[1], e("matmul", 50.0, 1.5));
    }

    /// The doc-comment promise "or disappears": a workload recorded in
    /// the baseline but absent from the current run must trip the gate.
    #[test]
    fn missing_workload_trips_the_gate() {
        let baseline = [e("vecadd", 200.0, 2.0), e("matmul", 50.0, 1.5)];
        let runs = [e("vecadd", 210.0, 2.1)];
        assert_eq!(failures(&runs, &baseline, 0.85), vec!["matmul".to_string()]);
        // And an empty run fails every baseline entry.
        assert_eq!(failures(&[], &baseline, 0.85).len(), 2);
    }

    #[test]
    fn regression_and_pass_thresholds() {
        let baseline = [e("vecadd", 200.0, 2.0)];
        // At exactly tolerance the gate passes (>= semantics).
        assert!(failures(&[e("vecadd", 10.0, 1.7)], &baseline, 0.85).is_empty());
        // Below tolerance it fails — normalized is gated, raw is not.
        assert_eq!(failures(&[e("vecadd", 500.0, 1.6)], &baseline, 0.85), vec!["vecadd"]);
        // New workloads are reported but never gated.
        assert!(failures(&[e("vecadd", 10.0, 2.0), e("new", 1.0, 0.1)], &baseline, 0.85).is_empty());
    }

    /// A uniform engine-vs-reference shift (a different CPU generation,
    /// not a regression: raw blocks/s may even be up) is cancelled by
    /// the leave-one-out median drift correction.
    #[test]
    fn uniform_host_drift_is_forgiven() {
        let baseline: Vec<Entry> = (0..5).map(|i| e(&format!("w{i}"), 100.0, 2.0)).collect();
        // All workloads at 0.8x normalized but faster raw throughput.
        let runs: Vec<Entry> = (0..5).map(|i| e(&format!("w{i}"), 150.0, 1.6)).collect();
        assert!(failures(&runs, &baseline, 0.85).is_empty());
    }

    /// A workload regressing *relative to the fleet* still fails even
    /// under host-wide drift — the correction is leave-one-out, so the
    /// regressed workload cannot drag the median down to excuse itself.
    #[test]
    fn relative_regression_fails_despite_drift() {
        let baseline: Vec<Entry> = (0..6).map(|i| e(&format!("w{i}"), 100.0, 2.0)).collect();
        let mut runs: Vec<Entry> = (0..6).map(|i| e(&format!("w{i}"), 150.0, 1.6)).collect();
        runs[0].normalized = 0.8; // 0.4x of baseline, fleet at 0.8x
        assert_eq!(failures(&runs, &baseline, 0.85), vec!["w0"]);
    }

    /// The clamp bounds the forgiveness: an across-the-board collapse
    /// beyond [`super::gate::MAX_DRIFT`] fails every workload — drift
    /// correction must not absorb a genuine global regression.
    #[test]
    fn across_the_board_collapse_still_fails() {
        let baseline: Vec<Entry> = (0..5).map(|i| e(&format!("w{i}"), 100.0, 2.0)).collect();
        let runs: Vec<Entry> = (0..5).map(|i| e(&format!("w{i}"), 50.0, 1.0)).collect();
        // 0.5x everywhere; correction clamps at 1/1.5 → 0.75x < 0.85.
        assert_eq!(failures(&runs, &baseline, 0.85).len(), 5);
    }

    /// An upward fleet shift (most workloads sped up by a PR, or a
    /// faster box) must never fail a workload that held steady at its
    /// baseline ratio: the correction is clamped at 1 from above.
    #[test]
    fn fleet_improvement_never_fails_untouched_workloads() {
        let baseline: Vec<Entry> = (0..10).map(|i| e(&format!("w{i}"), 100.0, 2.0)).collect();
        let mut runs: Vec<Entry> = (0..10).map(|i| e(&format!("w{i}"), 150.0, 2.5)).collect();
        runs[0].normalized = 2.0; // untouched: exactly its baseline
        assert!(failures(&runs, &baseline, 0.85).is_empty());
    }

    /// With fewer than 3 peer workloads there is no robust drift
    /// estimate and the raw ratio is gated — the pre-correction rule.
    #[test]
    fn small_fleets_gate_uncorrected() {
        let baseline = [e("a", 100.0, 2.0), e("b", 100.0, 2.0)];
        let runs = [e("a", 100.0, 1.6), e("b", 100.0, 1.6)];
        assert_eq!(failures(&runs, &baseline, 0.85).len(), 2);
    }

    /// The re-measure path keeps the best-of result: an improved retry
    /// replaces the slot, a worse one is discarded.
    #[test]
    fn keep_best_retains_maximum_normalized() {
        let baseline = [e("vecadd", 200.0, 2.0)];
        let mut slot = e("vecadd", 100.0, 1.2); // failing sample
        assert_eq!(failures(std::slice::from_ref(&slot), &baseline, 0.85), vec!["vecadd"]);
        keep_best(&mut slot, e("vecadd", 90.0, 1.1)); // worse retry: discarded
        assert_eq!(slot.normalized, 1.2);
        keep_best(&mut slot, e("vecadd", 180.0, 1.9)); // better retry: kept
        assert_eq!(slot.normalized, 1.9);
        assert!(failures(std::slice::from_ref(&slot), &baseline, 0.85).is_empty());
    }
}
