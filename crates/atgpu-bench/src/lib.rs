//! # atgpu-bench — Criterion benchmark harness
//!
//! Two benchmark suites:
//!
//! * `benches/figures.rs` — one benchmark per paper artefact (Table I,
//!   Figures 3–6, the §IV-D summary): each measures the full
//!   analyse+cost+simulate pipeline at a representative sweep point and,
//!   on first run, prints the regenerated series so `cargo bench`
//!   doubles as a quick reproduction of every figure;
//! * `benches/engine.rs` — substrate microbenches: simulator instruction
//!   throughput, sequential vs parallel device execution, the
//!   residue-class coalescing analyser, OLS fitting, and IR pretty
//!   printing.
//!
//! Shared helpers live here.

#![warn(missing_docs)]

use atgpu_exp::{ExpConfig, Scale};

/// The benchmark configuration: quick scale, deterministic (no transfer
/// jitter).
pub fn bench_config() -> ExpConfig {
    let mut cfg = ExpConfig::standard(Scale::Quick);
    cfg.sim.noise = None;
    cfg
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_config_is_deterministic() {
        assert!(super::bench_config().sim.noise.is_none());
    }
}
