//! Affine bounds checking.
//!
//! Interval analysis over every access site: the inclusive range an
//! affine address takes across all blocks × active lanes × loop
//! iterations (via [`atgpu_analyze::space`]) is compared against the
//! accessed allocation — the buffer's *padded* slot in the canonical
//! device layout for global sites (buffers are padded to a block
//! boundary and the padding reads as deterministic zeros), the
//! kernel's `shared_words` for shared sites.
//!
//! Three-valued and sound in both directions:
//!
//! * **in-bounds** is claimed only from the over-approximated range
//!   (unknown lane masks widen to the full warp), so a proof covers
//!   every execution;
//! * **out-of-bounds** is claimed only with an exact witness — a
//!   concrete `(block, lane, iteration)` whose address the checker
//!   re-evaluates and confirms escapes the allocation, and whose lane is
//!   *known active* (the enclosing predicates folded to a constant
//!   mask).  Lane-pure masks are the same in every block and iteration,
//!   so the witness lane definitely executes the access;
//! * anything else — register-dependent addresses, interpreted trees,
//!   block-dependent guards — is **unknown**, never a false alarm.

use crate::sites::{Site, Space};
use atgpu_ir::affine::AffineAddr;
use atgpu_ir::{Kernel, Program, MAX_LOOP_DEPTH};

/// A confirmed out-of-bounds access: the concrete execution point and
/// the address it produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OobWitness {
    /// Block index `(x, y)`.
    pub block: (i64, i64),
    /// Lane index (active under the site's folded mask).
    pub lane: i64,
    /// Enclosing-loop iteration counters, outermost first.
    pub loops: Vec<u32>,
    /// The offending address (buffer-relative for global sites).
    pub addr: i64,
    /// The allocation's size in words.
    pub limit: u64,
}

/// Bounds verdict for one access site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundsVerdict {
    /// Every reachable address lies inside the allocation.
    InBounds,
    /// A concrete, validated out-of-bounds execution exists.
    OutOfBounds(OobWitness),
    /// The checker cannot decide (data-dependent address or mask).
    Unknown,
}

/// Picks the per-dimension assignment that drives `coef·x` to its
/// extreme over `x ∈ [lo, hi]`: the upper end when maximising a
/// positive coefficient (or minimising a negative one), else the lower.
fn extreme(coef: i64, lo: i64, hi: i64, maximise: bool) -> i64 {
    if (coef >= 0) == maximise {
        hi
    } else {
        lo
    }
}

/// Builds the execution point at which `a` attains the extreme end of
/// its masked range, mirroring the arithmetic of
/// [`atgpu_analyze::space::masked_affine_range`].
fn witness_at_extreme(
    a: &AffineAddr,
    mask: u64,
    b: u64,
    grid: (u64, u64),
    loop_counts: &[u32],
    maximise: bool,
) -> Option<(i64, (i64, i64), Vec<u32>)> {
    let lanes = b.clamp(1, 64);
    let lo_lane = i64::from(mask.trailing_zeros().min(63));
    let hi_lane = (63 - i64::from(mask.leading_zeros())).min(lanes as i64 - 1);
    let lane = extreme(a.lane, lo_lane, hi_lane, maximise);
    let bx = extreme(a.block, 0, grid.0 as i64 - 1, maximise);
    let by = extreme(a.block_y, 0, grid.1 as i64 - 1, maximise);
    let mut its = Vec::with_capacity(loop_counts.len());
    for (d, &count) in loop_counts.iter().enumerate() {
        let coef = a.loops.get(d).copied().unwrap_or(0);
        let hi = i64::from(count).checked_sub(1)?;
        its.push(u32::try_from(extreme(coef, 0, hi, maximise)).ok()?);
    }
    // Loops deeper than the enclosing nest have coefficient 0 in any
    // well-formed kernel; `validate_program` already rejects the rest.
    if a.loops.iter().skip(loop_counts.len().min(MAX_LOOP_DEPTH)).any(|&c| c != 0) {
        return None;
    }
    let addr = a.eval(lane, (bx, by), &its, |_| 0);
    Some((addr, (bx, by), its))
}

/// Checks one site of `kernel` against its allocation.
pub fn check_site(program: &Program, kernel: &Kernel, site: &Site, b: u64) -> BoundsVerdict {
    let limit = match site.space {
        // Global buffers live in the canonical layout, each padded up to
        // a block boundary (`Program::buffer_layout(b)`).  Accesses into
        // a buffer's own zero-initialised padding are deterministic and
        // idiomatic (the reduction tree reads past its logical level
        // size on purpose); only past the padded slot could an access
        // alias another allocation, so that is the sound limit.
        Space::Global => match site.buf.and_then(|d| program.device_buf_words(d)) {
            Some(w) => w.div_ceil(b.max(1)) * b.max(1),
            None => return BoundsVerdict::Unknown,
        },
        Space::Shared => kernel.shared_words,
    };
    // Sites that never execute are vacuously in-bounds.
    if site.lane_mask == Some(0) || site.loop_counts.contains(&0) {
        return BoundsVerdict::InBounds;
    }
    let grid = kernel.grid;
    let full = if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
    // Over-approximate an unknown mask to the full warp: sound for the
    // in-bounds proof.
    let proof_mask = site.lane_mask.unwrap_or(full);
    let range = atgpu_analyze::space::masked_touched_range(
        &site.addr,
        proof_mask,
        b,
        grid,
        &site.loop_counts,
    );
    let (lo, hi) = match range {
        Some(r) => r,
        None => return BoundsVerdict::Unknown,
    };
    if lo >= 0 && (hi as i128) < limit as i128 {
        return BoundsVerdict::InBounds;
    }
    // Out of range: only an *exact* mask yields a trustworthy witness.
    let (mask, affine) = match (site.lane_mask, site.addr.as_affine()) {
        (Some(m), Some(a)) if m != 0 => (m, a),
        _ => return BoundsVerdict::Unknown,
    };
    let maximise = (hi as i128) >= limit as i128;
    if let Some((addr, block, loops)) =
        witness_at_extreme(affine, mask, b, grid, &site.loop_counts, maximise)
    {
        // Re-validate: the witness must actually escape the allocation.
        if addr < 0 || (addr as i128) >= limit as i128 {
            return BoundsVerdict::OutOfBounds(OobWitness {
                block,
                lane: extreme(
                    affine.lane,
                    i64::from(mask.trailing_zeros().min(63)),
                    (63 - i64::from(mask.leading_zeros())).min(b.clamp(1, 64) as i64 - 1),
                    maximise,
                ),
                loops,
                addr,
                limit,
            });
        }
    }
    BoundsVerdict::Unknown
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing, clippy::panic)]
mod tests {
    use super::*;
    use crate::sites::collect;
    use atgpu_ir::{AddrExpr, KernelBuilder, Operand, PredExpr, ProgramBuilder};

    fn one_kernel_program(words: u64, k: Kernel) -> (Program, Kernel) {
        let mut pb = ProgramBuilder::new("p");
        let d = pb.device_alloc("d", words);
        let h = pb.host_input("H", words);
        pb.transfer_in(h, d, words);
        pb.launch(k.clone());
        (pb.build().unwrap(), k)
    }

    #[test]
    fn in_bounds_proof() {
        let mut kb = KernelBuilder::new("k", 4, 32);
        let d = atgpu_ir::DBuf(0);
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
        kb.shr_to_glb(d, AddrExpr::block() * 32 + AddrExpr::lane(), AddrExpr::lane());
        let (p, k) = one_kernel_program(128, kb.build());
        for s in collect(&k, 32) {
            assert_eq!(check_site(&p, &k, &s, 32), BoundsVerdict::InBounds);
        }
    }

    #[test]
    fn oob_with_witness() {
        // 4 blocks × 32 lanes write [1, 128] into a 128-word buffer:
        // block 3 lane 31 lands on word 128, one past the end.
        let mut kb = KernelBuilder::new("k", 4, 32);
        let d = atgpu_ir::DBuf(0);
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::lane());
        kb.shr_to_glb(d, AddrExpr::block() * 32 + AddrExpr::lane() + 1, AddrExpr::lane());
        let (p, k) = one_kernel_program(128, kb.build());
        let sites = collect(&k, 32);
        let write = sites
            .iter()
            .find(|s| s.space == Space::Global && s.access == crate::sites::Access::Write)
            .unwrap();
        match check_site(&p, &k, write, 32) {
            BoundsVerdict::OutOfBounds(w) => {
                assert_eq!(w.block, (3, 0));
                assert_eq!(w.lane, 31);
                assert_eq!(w.addr, 128);
                assert_eq!(w.limit, 128);
            }
            v => panic!("expected OOB, got {v:?}"),
        }
    }

    #[test]
    fn negative_offset_oob() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        let d = atgpu_ir::DBuf(0);
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::lane() - 1);
        let (p, k) = one_kernel_program(64, kb.build());
        let s = &collect(&k, 32)[0];
        match check_site(&p, &k, s, 32) {
            BoundsVerdict::OutOfBounds(w) => {
                assert_eq!(w.lane, 0);
                assert_eq!(w.addr, -1);
            }
            v => panic!("expected OOB, got {v:?}"),
        }
    }

    #[test]
    fn masked_guard_saves_it() {
        // `lane > 0` guard keeps `lane - 1` non-negative.
        let mut kb = KernelBuilder::new("k", 1, 32);
        let d = atgpu_ir::DBuf(0);
        kb.when(PredExpr::Lt(Operand::Imm(0), Operand::Lane), |kb| {
            kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::lane() - 1);
        });
        let (p, k) = one_kernel_program(64, kb.build());
        let s = &collect(&k, 32)[0];
        assert_eq!(check_site(&p, &k, s, 32), BoundsVerdict::InBounds);
    }

    #[test]
    fn register_address_is_unknown() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        let d = atgpu_ir::DBuf(0);
        kb.mov(0, Operand::Lane);
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::reg(0));
        let (p, k) = one_kernel_program(64, kb.build());
        let s = &collect(&k, 32)[0];
        assert_eq!(check_site(&p, &k, s, 32), BoundsVerdict::Unknown);
    }

    #[test]
    fn shared_bounds_checked_against_shared_words() {
        let mut kb = KernelBuilder::new("k", 1, 16);
        kb.st_shr(AddrExpr::lane() + 1, Operand::Imm(0)); // lanes 0..32 → [1, 32], m = 16
        let (p, k) = one_kernel_program(64, kb.build());
        let s = &collect(&k, 32)[0];
        match check_site(&p, &k, s, 32) {
            BoundsVerdict::OutOfBounds(w) => {
                assert_eq!(w.limit, 16);
                assert_eq!(w.addr, 32);
            }
            v => panic!("expected OOB, got {v:?}"),
        }
    }
}
