//! Host-step dataflow lints.
//!
//! Advisory analyses over a program's rounds — wasteful or suspicious
//! transfer patterns that are *not* unsoundness (the differential
//! suites define functional correctness) but almost always indicate a
//! bug or a wasted PCIe round trip:
//!
//! * [`Lint::UseBeforeTransfer`] — a kernel reads a device buffer that
//!   no transfer or earlier kernel ever wrote: it computes on
//!   uninitialised memory;
//! * [`Lint::DeadTransferOut`] — a device→host transfer sources a
//!   buffer nothing ever wrote: it copies garbage;
//! * [`Lint::RedundantTransferIn`] — a transfer re-uploads exactly the
//!   bytes already resident (same source, same destination region, no
//!   intervening write to either side);
//! * [`Lint::MisPipelined`] — a `TransferIn` on a non-default stream
//!   overlaps, **in the same round and in the region the kernel
//!   statically reads**, the launch it feeds, with no stream sync in
//!   between.  Streams only overlap timing, never reorder host-step
//!   semantics, so this is the documented mis-pipelining caveat
//!   promoted from prose to a checked lint.  Double-buffering schemes
//!   that prefetch a *different* region (the out-of-core workloads) do
//!   not trip it.

use crate::sites::{Access, Space};
use atgpu_ir::{DBuf, HostStep, Kernel, Program};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One host-dataflow finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// Round `round`'s kernel reads `buf` before anything wrote it.
    UseBeforeTransfer {
        /// Round index.
        round: usize,
        /// Kernel name.
        kernel: String,
        /// The uninitialised buffer.
        buf: DBuf,
    },
    /// Round `round` transfers out of `buf`, which nothing ever wrote.
    DeadTransferOut {
        /// Round index.
        round: usize,
        /// The garbage source buffer.
        buf: DBuf,
    },
    /// Round `round` re-uploads bytes already resident in `buf`.
    RedundantTransferIn {
        /// Round index.
        round: usize,
        /// The destination buffer.
        buf: DBuf,
    },
    /// A streamed upload into `buf` overlaps the same round's kernel
    /// read of that region with no sync in between.
    MisPipelined {
        /// Round index.
        round: usize,
        /// Kernel name.
        kernel: String,
        /// The buffer being uploaded and concurrently read.
        buf: DBuf,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UseBeforeTransfer { round, kernel, buf } => write!(
                f,
                "round {round}: kernel `{kernel}` reads {buf} before any transfer or kernel wrote it"
            ),
            Lint::DeadTransferOut { round, buf } => {
                write!(f, "round {round}: transfer-out sources {buf}, which nothing ever wrote")
            }
            Lint::RedundantTransferIn { round, buf } => {
                write!(f, "round {round}: transfer-in re-uploads bytes already resident in {buf}")
            }
            Lint::MisPipelined { round, kernel, buf } => write!(
                f,
                "round {round}: streamed upload into {buf} overlaps kernel `{kernel}`'s read of \
                 the same region with no stream sync between them"
            ),
        }
    }
}

/// Static global-buffer footprint of one kernel.
struct KernelIo {
    /// Buffers read, with the statically-known touched range
    /// (`None` = data-dependent, treated as "anywhere").
    reads: Vec<(DBuf, Option<(i64, i64)>)>,
    /// Buffers written (by any site, static or not).
    writes: HashSet<DBuf>,
}

fn kernel_io(k: &Kernel, b: u64) -> KernelIo {
    let full = if b >= 64 { u64::MAX } else { (1u64 << b.max(1)) - 1 };
    let mut reads = Vec::new();
    let mut writes = HashSet::new();
    for s in crate::sites::collect(k, b) {
        if s.space != Space::Global {
            continue;
        }
        let Some(buf) = s.buf else { continue };
        if s.lane_mask == Some(0) || s.loop_counts.contains(&0) {
            continue;
        }
        match s.access {
            Access::Read => {
                let range = atgpu_analyze::space::masked_touched_range(
                    &s.addr,
                    s.lane_mask.unwrap_or(full),
                    b,
                    k.grid,
                    &s.loop_counts,
                );
                reads.push((buf, range));
            }
            Access::Write => {
                writes.insert(buf);
            }
        }
    }
    KernelIo { reads, writes }
}

fn overlaps(range: Option<(i64, i64)>, lo: i64, hi: i64) -> bool {
    match range {
        Some((a, b)) => a <= hi && lo <= b,
        None => true, // unknown read range: assume it may touch the region
    }
}

/// Signature of an upload, for redundancy detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct UploadSig {
    device: u32,
    host: u32,
    host_off: u64,
    dev_off: u64,
    words: u64,
}

/// A streamed upload still "in flight" within the round.
struct PendingUpload {
    device: u32,
    stream: u32,
    buf: DBuf,
    lo: i64,
    hi: i64,
}

/// Runs every host-dataflow lint over `program` (with `b` lanes per
/// block, for the kernels' static footprints).
pub fn check_program(program: &Program, b: u64) -> Vec<Lint> {
    let mut lints = Vec::new();
    // Coarse residency: has anything (transfer or kernel) written this
    // device buffer yet?  Replicas are tracked together — sharded
    // launches merge write logs across devices, so per-device tracking
    // would only manufacture false positives.
    let mut written: HashSet<DBuf> = HashSet::new();
    // Resident upload signatures per destination buffer, invalidated by
    // any write to the buffer or to the source host buffer.
    let mut resident: HashMap<DBuf, HashSet<UploadSig>> = HashMap::new();
    for (ri, round) in program.rounds.iter().enumerate() {
        let mut pending: Vec<PendingUpload> = Vec::new();
        for step in &round.steps {
            match step {
                HostStep::TransferIn { host, host_off, dev, dev_off, words, device, stream } => {
                    let sig = UploadSig {
                        device: *device,
                        host: host.0,
                        host_off: *host_off,
                        dev_off: *dev_off,
                        words: *words,
                    };
                    let sigs = resident.entry(*dev).or_default();
                    if !sigs.insert(sig) {
                        lints.push(Lint::RedundantTransferIn { round: ri, buf: *dev });
                    }
                    written.insert(*dev);
                    if *stream != 0 && *words > 0 {
                        pending.push(PendingUpload {
                            device: *device,
                            stream: *stream,
                            buf: *dev,
                            lo: *dev_off as i64,
                            hi: (*dev_off + *words) as i64 - 1,
                        });
                    }
                }
                HostStep::TransferOut { dev, host, .. } => {
                    if !written.contains(dev) {
                        lints.push(Lint::DeadTransferOut { round: ri, buf: *dev });
                    }
                    // The host buffer changed: uploads sourced from it
                    // are no longer trivially redundant.
                    for sigs in resident.values_mut() {
                        sigs.retain(|s| s.host != host.0);
                    }
                }
                HostStep::TransferPeer { buf, .. } => {
                    written.insert(*buf);
                    resident.remove(buf);
                }
                HostStep::SyncStream { device, stream } => {
                    pending.retain(|p| !(p.device == *device && p.stream == *stream));
                }
                HostStep::SyncDevice { device } => {
                    pending.retain(|p| p.device != *device);
                }
                HostStep::Launch(k) | HostStep::LaunchSharded { kernel: k, .. } => {
                    let devices: HashSet<u32> = match step {
                        HostStep::LaunchSharded { shards, .. } => {
                            shards.iter().map(|s| s.device).collect()
                        }
                        _ => std::iter::once(0).collect(),
                    };
                    let io = kernel_io(k, b);
                    let mut flagged: HashSet<DBuf> = HashSet::new();
                    for (buf, range) in &io.reads {
                        if !written.contains(buf) && flagged.insert(*buf) {
                            lints.push(Lint::UseBeforeTransfer {
                                round: ri,
                                kernel: k.name.clone(),
                                buf: *buf,
                            });
                        }
                        for p in &pending {
                            if p.buf == *buf
                                && devices.contains(&p.device)
                                && overlaps(*range, p.lo, p.hi)
                            {
                                lints.push(Lint::MisPipelined {
                                    round: ri,
                                    kernel: k.name.clone(),
                                    buf: *buf,
                                });
                            }
                        }
                    }
                    for buf in &io.writes {
                        written.insert(*buf);
                        resident.remove(buf);
                    }
                }
            }
        }
    }
    lints.dedup();
    lints
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing, clippy::panic)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, KernelBuilder, ProgramBuilder};

    fn reader_kernel(buf: DBuf) -> Kernel {
        let mut kb = KernelBuilder::new("reader", 2, 32);
        kb.glb_to_shr(AddrExpr::lane(), buf, AddrExpr::block() * 32 + AddrExpr::lane());
        kb.build()
    }

    fn writer_kernel(buf: DBuf) -> Kernel {
        let mut kb = KernelBuilder::new("writer", 2, 32);
        kb.shr_to_glb(buf, AddrExpr::block() * 32 + AddrExpr::lane(), AddrExpr::lane());
        kb.build()
    }

    #[test]
    fn clean_round_trip_has_no_lints() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.transfer_in(h, d, 64);
        pb.launch(writer_kernel(d));
        pb.transfer_out(d, o, 64);
        let p = pb.build().unwrap();
        assert!(check_program(&p, 32).is_empty());
    }

    #[test]
    fn use_before_transfer_flagged() {
        let mut pb = ProgramBuilder::new("p");
        let _h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        let e = pb.device_alloc("b", 64);
        pb.launch(reader_kernel(d));
        pb.transfer_out(e, o, 64);
        let p = pb.build().unwrap();
        let lints = check_program(&p, 32);
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::UseBeforeTransfer { round: 0, buf, .. } if *buf == d)));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::DeadTransferOut { round: 0, buf } if *buf == e)));
    }

    #[test]
    fn redundant_reupload_flagged_and_invalidated_by_kernel_write() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 64);
        let o = pb.host_output("C", 64);
        let d = pb.device_alloc("a", 64);
        pb.begin_round();
        pb.transfer_in(h, d, 64);
        pb.launch(reader_kernel(d));
        pb.begin_round();
        pb.transfer_in(h, d, 64); // nothing changed: redundant
        pb.launch(writer_kernel(d));
        pb.begin_round();
        pb.transfer_in(h, d, 64); // kernel rewrote d: NOT redundant
        pb.launch(reader_kernel(d));
        pb.transfer_out(d, o, 64);
        let p = pb.build().unwrap();
        let redundant: Vec<_> = check_program(&p, 32)
            .into_iter()
            .filter(|l| matches!(l, Lint::RedundantTransferIn { .. }))
            .collect();
        assert_eq!(redundant, vec![Lint::RedundantTransferIn { round: 1, buf: d }]);
    }

    #[test]
    fn mispipelined_streamed_upload_flagged_and_sync_clears_it() {
        let build = |synced: bool, disjoint: bool| {
            let mut pb = ProgramBuilder::new("p");
            let h = pb.host_input("A", 128);
            let o = pb.host_output("C", 128);
            let d = pb.device_alloc("a", 128);
            pb.begin_round();
            // Warm the low half so the kernel's read is initialised.
            pb.transfer_in_at(h, 0, d, 0, 64);
            // Streamed upload: overlapping the read region, or prefetching
            // the disjoint high half.
            let off = if disjoint { 64 } else { 0 };
            pb.transfer_in_streamed(0, 1, h, off, d, off, 64);
            if synced {
                pb.sync_stream(0, 1);
            }
            pb.launch(reader_kernel(d)); // reads [0, 64)
            pb.transfer_out(d, o, 64);
            pb.build().unwrap()
        };
        let mis = |p: &Program| {
            check_program(p, 32)
                .into_iter()
                .filter(|l| matches!(l, Lint::MisPipelined { .. }))
                .count()
        };
        assert_eq!(mis(&build(false, false)), 1, "unsynced overlapping upload");
        assert_eq!(mis(&build(true, false)), 0, "sync clears it");
        assert_eq!(mis(&build(false, true)), 0, "disjoint prefetch is the good pattern");
    }
}
