//! Cross-block write-race detection.
//!
//! The simulator merges per-block write logs in block order
//! (`apply_write_log`), so a kernel is deterministic under *every* shard
//! plan exactly when no two **distinct blocks** write the same global
//! word.  This module decides that property statically for affine
//! kernels: each pair of global write sites (including a site paired
//! with itself) induces a linear Diophantine system
//!
//! ```text
//! base_a + cL·la + cB·xa + cBY·ya + Σ c_d·ta_d
//!   = base_b + cL'·lb + cB'·xb + cBY'·yb + Σ c'_d·tb_d,
//!   (xa, ya) ≠ (xb, yb), all variables boxed by grid/mask/trip counts
//! ```
//!
//! fed to [`crate::solve`].  Block distinctness is encoded by four
//! **relaxed substitutions** — `xa = xb ± d` with `d ≥ 1` (and the same
//! split on the Y axis with X left free) — whose variable boxes are
//! supersets of the true coupled domains.  That direction keeps `No`
//! sound (no solution of a superset ⇒ no real race), and any `Yes` is
//! **post-validated**: the decoded candidate must name in-grid distinct
//! blocks, mask-active lanes, in-range iterations, and the two site
//! addresses must re-evaluate equal.  Only a validated candidate with
//! *exact* masks becomes a [`RaceVerdict::Racy`] witness; everything
//! the pipeline cannot pin down (register addresses, tree addresses,
//! unknown masks, solver budget) degrades to [`RaceVerdict::Unknown`],
//! never a false `RaceFree`.

use crate::sites::{Access, Site, Space};
use crate::solve::{solve, Dom, Feas, Var};
use atgpu_ir::affine::AffineAddr;
use atgpu_ir::Kernel;

/// Per-pair solver budget (recursion nodes + enumerated points).
const PAIR_BUDGET: u64 = 200_000;

/// A concrete two-block collision: both executions write `addr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceWitness {
    /// First writer: instruction index, block `(x, y)`, lane, loop
    /// counters.
    pub a: (usize, (i64, i64), i64, Vec<u32>),
    /// Second writer, a different block.
    pub b: (usize, (i64, i64), i64, Vec<u32>),
    /// The global word (buffer-relative) both write.
    pub addr: i64,
}

/// Race verdict for one kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceVerdict {
    /// Proven: no two distinct blocks write the same global word, for
    /// any shard plan.
    RaceFree,
    /// A validated two-block collision exists.
    Racy(RaceWitness),
    /// Undecided (data-dependent addressing or analysis budget).
    Unknown,
}

impl RaceVerdict {
    fn worse(self, other: RaceVerdict) -> RaceVerdict {
        match (self, other) {
            (r @ RaceVerdict::Racy(_), _) | (_, r @ RaceVerdict::Racy(_)) => r,
            (RaceVerdict::Unknown, _) | (_, RaceVerdict::Unknown) => RaceVerdict::Unknown,
            _ => RaceVerdict::RaceFree,
        }
    }
}

/// Variable slots of one pair's equation, in a fixed order so witnesses
/// can be decoded positionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    LaneA,
    LaneB,
    LoopA(usize),
    LoopB(usize),
    /// The shared block coordinate `u` of a substitution (X or Y axis).
    SplitBase,
    /// The positive gap `d ≥ 1` of the substitution.
    SplitDelta,
    /// A block coordinate left free (the axis not being split).
    FreeXa,
    FreeXb,
    FreeYa,
    FreeYb,
}

struct PairQuery<'a> {
    a: &'a Site,
    b: &'a Site,
    aff_a: &'a AffineAddr,
    aff_b: &'a AffineAddr,
    mask_a: u64,
    mask_b: u64,
    grid: (u64, u64),
}

/// Which axis the block-distinctness split runs on, and the sign of the
/// gap (`xa = u + d` vs `xb = u + d`).
#[derive(Clone, Copy)]
enum Split {
    X { a_high: bool },
    Y { a_high: bool },
}

impl PairQuery<'_> {
    /// Builds the variable list for one relaxed substitution.  Returns
    /// `None` when the split axis has fewer than 2 blocks (no distinct
    /// pair exists along it).
    fn vars(&self, split: Split) -> Option<(Vec<Var>, Vec<Slot>)> {
        let (gx, gy) = (self.grid.0 as i64, self.grid.1 as i64);
        let mut vars = Vec::new();
        let mut slots = Vec::new();
        let mut push = |coef: i64, dom: Dom, slot: Slot| {
            vars.push(Var { coef, dom });
            slots.push(slot);
        };
        push(self.aff_a.lane, Dom::Bits(self.mask_a), Slot::LaneA);
        push(-self.aff_b.lane, Dom::Bits(self.mask_b), Slot::LaneB);
        for (d, &count) in self.a.loop_counts.iter().enumerate() {
            let coef = self.aff_a.loops.get(d).copied().unwrap_or(0);
            push(coef, Dom::Range(0, i64::from(count) - 1), Slot::LoopA(d));
        }
        for (d, &count) in self.b.loop_counts.iter().enumerate() {
            let coef = self.aff_b.loops.get(d).copied().unwrap_or(0);
            push(-coef, Dom::Range(0, i64::from(count) - 1), Slot::LoopB(d));
        }
        let (ca, cb, g) = match split {
            Split::X { .. } => (self.aff_a.block, self.aff_b.block, gx),
            Split::Y { .. } => (self.aff_a.block_y, self.aff_b.block_y, gy),
        };
        if g < 2 {
            return None;
        }
        let a_high = match split {
            Split::X { a_high } | Split::Y { a_high } => a_high,
        };
        // Split coordinate: high = u + d, low = u, with u ∈ [0, g−2]
        // and d ∈ [1, g−1] — a (relaxed) superset of all ordered
        // distinct pairs along the axis.
        push(ca - cb, Dom::Range(0, g - 2), Slot::SplitBase);
        let delta_coef = if a_high { ca } else { -cb };
        push(delta_coef, Dom::Range(1, g - 1), Slot::SplitDelta);
        // The other axis is unconstrained between the two executions.
        match split {
            Split::X { .. } => {
                if gy > 1 || self.aff_a.block_y != 0 || self.aff_b.block_y != 0 {
                    push(self.aff_a.block_y, Dom::Range(0, gy - 1), Slot::FreeYa);
                    push(-self.aff_b.block_y, Dom::Range(0, gy - 1), Slot::FreeYb);
                }
            }
            Split::Y { .. } => {
                push(self.aff_a.block, Dom::Range(0, gx - 1), Slot::FreeXa);
                push(-self.aff_b.block, Dom::Range(0, gx - 1), Slot::FreeXb);
            }
        }
        Some((vars, slots))
    }

    /// Decodes a solver witness back into concrete executions and
    /// validates it end to end.  `None` means the candidate was spurious
    /// (expected occasionally: the substitution boxes are relaxed).
    fn validate(&self, split: Split, slots: &[Slot], values: &[i64]) -> Option<RaceWitness> {
        let mut lane_a = 0i64;
        let mut lane_b = 0i64;
        let mut loops_a = vec![0u32; self.a.loop_counts.len()];
        let mut loops_b = vec![0u32; self.b.loop_counts.len()];
        let mut base = 0i64;
        let mut delta = 0i64;
        let (mut xa, mut ya, mut xb, mut yb) = (0i64, 0i64, 0i64, 0i64);
        for (slot, &v) in slots.iter().zip(values) {
            match *slot {
                Slot::LaneA => lane_a = v,
                Slot::LaneB => lane_b = v,
                Slot::LoopA(d) => *loops_a.get_mut(d)? = u32::try_from(v).ok()?,
                Slot::LoopB(d) => *loops_b.get_mut(d)? = u32::try_from(v).ok()?,
                Slot::SplitBase => base = v,
                Slot::SplitDelta => delta = v,
                Slot::FreeXa => xa = v,
                Slot::FreeXb => xb = v,
                Slot::FreeYa => ya = v,
                Slot::FreeYb => yb = v,
            }
        }
        match split {
            Split::X { a_high } => {
                if a_high {
                    xa = base + delta;
                    xb = base;
                } else {
                    xa = base;
                    xb = base + delta;
                }
            }
            Split::Y { a_high } => {
                if a_high {
                    ya = base + delta;
                    yb = base;
                } else {
                    ya = base;
                    yb = base + delta;
                }
            }
        }
        let (gx, gy) = (self.grid.0 as i64, self.grid.1 as i64);
        let in_grid = |x: i64, y: i64| (0..gx).contains(&x) && (0..gy).contains(&y);
        if !in_grid(xa, ya) || !in_grid(xb, yb) || (xa, ya) == (xb, yb) {
            return None;
        }
        let lane_live = |lane: i64, mask: u64| (0..=63).contains(&lane) && mask >> lane & 1 != 0;
        if !lane_live(lane_a, self.mask_a) || !lane_live(lane_b, self.mask_b) {
            return None;
        }
        let addr_a = self.aff_a.eval(lane_a, (xa, ya), &loops_a, |_| 0);
        let addr_b = self.aff_b.eval(lane_b, (xb, yb), &loops_b, |_| 0);
        if addr_a != addr_b {
            return None;
        }
        Some(RaceWitness {
            a: (self.a.instr, (xa, ya), lane_a, loops_a),
            b: (self.b.instr, (xb, yb), lane_b, loops_b),
            addr: addr_a,
        })
    }
}

/// Decides the pair: can sites `a` and `b`, executed by **distinct**
/// blocks, write the same word of their (shared) buffer?
fn check_pair(a: &Site, b: &Site, grid: (u64, u64), full_mask: u64) -> RaceVerdict {
    // Vacuously silent sites cannot race.
    if a.lane_mask == Some(0)
        || b.lane_mask == Some(0)
        || a.loop_counts.contains(&0)
        || b.loop_counts.contains(&0)
    {
        return RaceVerdict::RaceFree;
    }
    let (aff_a, aff_b) = match (a.addr.as_affine(), b.addr.as_affine()) {
        (Some(x), Some(y)) if x.is_static() && y.is_static() => (x, y),
        _ => return RaceVerdict::Unknown,
    };
    let exact_masks = a.lane_mask.is_some() && b.lane_mask.is_some();
    let q = PairQuery {
        a,
        b,
        aff_a,
        aff_b,
        mask_a: a.lane_mask.unwrap_or(full_mask),
        mask_b: b.lane_mask.unwrap_or(full_mask),
        grid,
    };
    let target = aff_b.base - aff_a.base;
    let splits = [
        Split::X { a_high: true },
        Split::X { a_high: false },
        Split::Y { a_high: true },
        Split::Y { a_high: false },
    ];
    let mut verdict = RaceVerdict::RaceFree;
    for split in splits {
        let Some((vars, slots)) = q.vars(split) else { continue };
        let mut budget = PAIR_BUDGET;
        match solve(&vars, target, &mut budget) {
            Feas::No => {}
            Feas::Yes(values) => match q.validate(split, &slots, &values) {
                Some(w) if exact_masks => return RaceVerdict::Racy(w),
                // A real-looking candidate under an over-approximated
                // mask, or a spurious relaxed solution: can't prove
                // either way.
                _ => verdict = verdict.worse(RaceVerdict::Unknown),
            },
            Feas::Maybe => verdict = verdict.worse(RaceVerdict::Unknown),
        }
    }
    verdict
}

/// Decides whether two distinct blocks of `kernel` (with `b` lanes per
/// block) can write the same global word.
pub fn check_kernel(kernel: &Kernel, b: u64) -> RaceVerdict {
    if kernel.blocks() <= 1 {
        return RaceVerdict::RaceFree;
    }
    let sites = crate::sites::collect(kernel, b);
    let writes: Vec<&Site> =
        sites.iter().filter(|s| s.space == Space::Global && s.access == Access::Write).collect();
    let full = if b >= 64 { u64::MAX } else { (1u64 << b.max(1)) - 1 };
    let mut verdict = RaceVerdict::RaceFree;
    for (i, a) in writes.iter().enumerate() {
        for bsite in writes.iter().skip(i) {
            if a.buf != bsite.buf {
                continue;
            }
            verdict = verdict.worse(check_pair(a, bsite, kernel.grid, full));
            if matches!(verdict, RaceVerdict::Racy(_)) {
                return verdict;
            }
        }
    }
    verdict
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing, clippy::panic)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, DBuf, KernelBuilder, Operand, PredExpr};

    fn slab_kernel(blocks: u64) -> Kernel {
        let mut kb = KernelBuilder::new("slab", blocks, 64);
        let d = DBuf(0);
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
        kb.shr_to_glb(d, AddrExpr::block() * 32 + AddrExpr::lane(), AddrExpr::lane());
        kb.build()
    }

    #[test]
    fn disjoint_slabs_race_free() {
        assert_eq!(check_kernel(&slab_kernel(4), 32), RaceVerdict::RaceFree);
        // Huge grids must be decided by the closed form, not enumeration.
        assert_eq!(check_kernel(&slab_kernel(200_000), 32), RaceVerdict::RaceFree);
    }

    #[test]
    fn single_block_trivially_race_free() {
        let mut kb = KernelBuilder::new("k", 1, 0);
        kb.shr_to_glb(DBuf(0), AddrExpr::lane(), AddrExpr::lane());
        assert_eq!(check_kernel(&kb.build(), 32), RaceVerdict::RaceFree);
    }

    #[test]
    fn overlapping_stride_is_racy_with_witness() {
        // Stride 16 with 32 lanes: block i writes [16i, 16i+32), so
        // neighbouring blocks overlap halfway.
        let mut kb = KernelBuilder::new("k", 4, 32);
        let d = DBuf(0);
        kb.shr_to_glb(d, AddrExpr::block() * 16 + AddrExpr::lane(), AddrExpr::lane());
        match check_kernel(&kb.build(), 32) {
            RaceVerdict::Racy(w) => {
                assert_ne!(w.a.1, w.b.1, "witness blocks must differ");
                // Reconstruct both addresses from the witness.
                let addr =
                    |(_, (x, _), lane, _): &(usize, (i64, i64), i64, Vec<u32>)| 16 * x + lane;
                assert_eq!(addr(&w.a), w.addr);
                assert_eq!(addr(&w.b), w.addr);
            }
            v => panic!("expected Racy, got {v:?}"),
        }
    }

    #[test]
    fn all_blocks_write_word_zero_racy() {
        let mut kb = KernelBuilder::new("k", 8, 0);
        let d = DBuf(0);
        kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
            kb.shr_to_glb(d, AddrExpr::c(0), AddrExpr::c(0));
        });
        match check_kernel(&kb.build(), 32) {
            RaceVerdict::Racy(w) => assert_eq!(w.addr, 0),
            v => panic!("expected Racy, got {v:?}"),
        }
    }

    #[test]
    fn per_block_scalar_write_race_free() {
        // The reduce/gemv shape: lane 0 of each block writes out[block].
        let mut kb = KernelBuilder::new("k", 64, 0);
        let d = DBuf(0);
        kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
            kb.shr_to_glb(d, AddrExpr::block(), AddrExpr::c(0));
        });
        assert_eq!(check_kernel(&kb.build(), 32), RaceVerdict::RaceFree);
    }

    #[test]
    fn register_scatter_is_unknown() {
        let mut kb = KernelBuilder::new("k", 4, 0);
        let d = DBuf(0);
        kb.mov(0, Operand::Lane);
        kb.shr_to_glb(d, AddrExpr::reg(0), AddrExpr::lane());
        assert_eq!(check_kernel(&kb.build(), 32), RaceVerdict::Unknown);
    }

    #[test]
    fn distinct_buffers_do_not_interact() {
        // Both "buffers" would collide at word 0 — but they're different
        // allocations.
        let mut kb = KernelBuilder::new("k", 4, 0);
        kb.when(PredExpr::Eq(Operand::Lane, Operand::Imm(0)), |kb| {
            kb.shr_to_glb(DBuf(0), AddrExpr::block(), AddrExpr::c(0));
            kb.shr_to_glb(DBuf(1), AddrExpr::block(), AddrExpr::c(0));
        });
        assert_eq!(check_kernel(&kb.build(), 32), RaceVerdict::RaceFree);
    }

    #[test]
    fn two_d_grid_tile_writes_race_free() {
        // The matmul output shape: (by·b + t)·n + bx·b + lane over an
        // 8×8 tile grid, n = 256.
        let n = 256i64;
        let bb = 32i64;
        let mut kb = KernelBuilder::new_2d("mm", (8, 8), 64);
        let d = DBuf(0);
        kb.repeat(32, |kb| {
            kb.shr_to_glb(
                d,
                (AddrExpr::block_y() * bb + AddrExpr::loop_var(0)) * n
                    + AddrExpr::block() * bb
                    + AddrExpr::lane(),
                AddrExpr::lane(),
            );
        });
        assert_eq!(check_kernel(&kb.build(), 32), RaceVerdict::RaceFree);
    }

    #[test]
    fn two_d_row_overlap_is_racy() {
        // Same shape but row stride 16 < tile height 32: vertical
        // neighbours overlap.
        let n = 256i64;
        let mut kb = KernelBuilder::new_2d("mm", (8, 8), 64);
        let d = DBuf(0);
        kb.repeat(32, |kb| {
            kb.shr_to_glb(
                d,
                (AddrExpr::block_y() * 16 + AddrExpr::loop_var(0)) * n
                    + AddrExpr::block() * 32
                    + AddrExpr::lane(),
                AddrExpr::lane(),
            );
        });
        assert!(matches!(check_kernel(&kb.build(), 32), RaceVerdict::Racy(_)));
    }

    #[test]
    fn self_pair_within_loop_race_free_when_strided() {
        // One site, looped: block stride 64 = 2 iterations × 32 words,
        // iterations tile the slab without crossing blocks.
        let mut kb = KernelBuilder::new("k", 16, 32);
        let d = DBuf(0);
        kb.repeat(2, |kb| {
            kb.shr_to_glb(
                d,
                AddrExpr::block() * 64 + AddrExpr::loop_var(0) * 32 + AddrExpr::lane(),
                AddrExpr::lane(),
            );
        });
        assert_eq!(check_kernel(&kb.build(), 32), RaceVerdict::RaceFree);
    }
}
