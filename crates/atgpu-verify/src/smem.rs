//! Intra-block shared-memory write-hazard check.
//!
//! Two active lanes of one warp storing **different values to the same
//! shared word** in one instruction leave the word implementation-
//! defined; a broadcast of one value is benign (and idiomatic — the
//! scan kernel's owner-block pattern does exactly that).  The shape
//! machinery from `atgpu-ir` already classifies the per-warp access
//! pattern: [`atgpu_ir::affine::masked_conflict_degree`] gives the
//! worst-case number of distinct shared addresses colliding on one
//! bank, and a lane stride of 0 puts every active lane on one word.
//!
//! * **Definite** hazard: static affine address, lane coefficient 0,
//!   ≥ 2 known-active lanes, non-uniform stored value.  Reported as
//!   unsound.
//! * **Advisory** hazard: register-addressed or unknown-mask stores
//!   (the histogram private-row update is the canonical case).
//!   Surfaced for tooling but *not* an unsoundness — the dynamic
//!   differential suites own those.

use crate::sites::{Access, Site, Space};
use atgpu_ir::Kernel;

/// One shared-memory write hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmemHazard {
    /// Instruction index (`kernel@instr#N`).
    pub instr: usize,
    /// `true`: proven multi-lane non-uniform store to one word.
    /// `false`: advisory only (data-dependent address or mask).
    pub definite: bool,
    /// Active lanes involved (full warp when the mask is unknown).
    pub lanes: u64,
}

/// Scans `kernel`'s shared write sites for hazards.
pub fn check_kernel(kernel: &Kernel, b: u64) -> Vec<SmemHazard> {
    let sites = crate::sites::collect(kernel, b);
    sites.iter().filter_map(|s| check_site(s, b)).collect()
}

fn check_site(site: &Site, b: u64) -> Option<SmemHazard> {
    if site.space != Space::Shared || site.access != Access::Write {
        return None;
    }
    if site.lane_mask == Some(0) || site.loop_counts.contains(&0) || site.uniform_value {
        return None;
    }
    let full = if b >= 64 { u64::MAX } else { (1u64 << b.max(1)) - 1 };
    let mask = site.lane_mask.unwrap_or(full);
    let active = mask.count_ones() as u64;
    if active < 2 {
        return None;
    }
    match site.addr.as_affine() {
        Some(a) if a.is_static() => {
            if a.lane == 0 {
                // All active lanes write one word, values differ.
                Some(SmemHazard {
                    instr: site.instr,
                    definite: site.lane_mask.is_some(),
                    lanes: active,
                })
            } else {
                // Distinct-per-lane addresses: no intra-instruction
                // collision (stride ≠ 0 over < b lanes of one warp
                // keeps addresses pairwise distinct — same argument as
                // `full_warp_conflict_degree`).
                None
            }
        }
        // Data-dependent shared scatter: advisory.
        _ => Some(SmemHazard { instr: site.instr, definite: false, lanes: active }),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing, clippy::panic)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, KernelBuilder, Operand};

    #[test]
    fn per_lane_stores_are_clean() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.st_shr(AddrExpr::lane(), Operand::Lane);
        assert!(check_kernel(&kb.build(), 32).is_empty());
    }

    #[test]
    fn broadcast_store_is_clean() {
        // Every lane writes the same (lane-invariant) value to word 0.
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.st_shr(AddrExpr::c(0), Operand::Imm(42));
        assert!(check_kernel(&kb.build(), 32).is_empty());
    }

    #[test]
    fn colliding_nonuniform_store_is_definite() {
        let mut kb = KernelBuilder::new("k", 1, 32);
        kb.st_shr(AddrExpr::c(0), Operand::Lane);
        let hz = check_kernel(&kb.build(), 32);
        assert_eq!(hz.len(), 1);
        assert!(hz[0].definite);
        assert_eq!(hz[0].lanes, 32);
    }

    #[test]
    fn register_scatter_is_advisory() {
        let mut kb = KernelBuilder::new("k", 1, 64);
        kb.mov(0, Operand::Lane);
        kb.st_shr(AddrExpr::reg(0), Operand::Lane);
        let hz = check_kernel(&kb.build(), 32);
        assert_eq!(hz.len(), 1);
        assert!(!hz[0].definite);
    }
}
