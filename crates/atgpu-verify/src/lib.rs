//! # atgpu-verify — static soundness verifier for ATGPU programs
//!
//! Every determinism guarantee the stack leans on — the block-order
//! write-log merge for sharded launches, timing replay, degraded-mode
//! journal replay, the serve fast path — assumes kernels whose blocks
//! write disjoint global words and whose accesses stay inside their
//! allocations.  The dynamic differential suites *check* those
//! properties on sampled inputs; this crate **proves** them (or
//! produces a concrete counterexample) from the IR alone, exploiting
//! the fact that the model's addressing is affine.
//!
//! Four analyses over a validated [`atgpu_ir::Program`]:
//!
//! 1. **Affine bounds** ([`bounds`]) — interval analysis across blocks
//!    × active lanes × loop iterations against the program's
//!    allocations, with a validated `(block, lane, iteration)` witness
//!    on failure;
//! 2. **Cross-block write races** ([`race`]) — a bounded linear-
//!    Diophantine decision procedure ([`solve`]) over each pair of
//!    global write sites, with block distinctness encoded by relaxed
//!    split substitutions; `RaceFree` is proven, `Racy` carries a
//!    re-evaluated two-block witness, everything else is `Unknown`;
//! 3. **Host-step dataflow lints** ([`lints`]) — use-before-transfer,
//!    dead transfer-out, redundant re-upload, and region-aware
//!    mis-pipelining of streamed uploads;
//! 4. **Shared-memory hazards** ([`smem`]) — multi-lane non-uniform
//!    stores to one shared word, reusing the IR's access-shape
//!    classification.
//!
//! # Static verification
//!
//! [`verify_program`] runs everything and returns a [`VerifyReport`];
//! [`VerifyReport::is_sound`] gates admission (this is what
//! `atgpu-serve` consults before pricing or running a submission).  A
//! racy kernel is rejected with a two-block witness; fixing its write
//! stride makes the same program verify clean:
//!
//! ```
//! use atgpu_ir::{AddrExpr, KernelBuilder, ProgramBuilder};
//! use atgpu_verify::verify_program;
//!
//! fn demo(stride: i64) -> atgpu_ir::Program {
//!     let mut pb = ProgramBuilder::new("demo");
//!     let h = pb.host_input("A", 256);
//!     let o = pb.host_output("C", 256);
//!     let da = pb.device_alloc("a", 256);
//!     let dc = pb.device_alloc("c", 256);
//!     let mut kb = KernelBuilder::new("copy", 4, 32);
//!     kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::block() * 32 + AddrExpr::lane());
//!     kb.shr_to_glb(dc, AddrExpr::block() * stride + AddrExpr::lane(), AddrExpr::lane());
//!     pb.transfer_in(h, da, 256);
//!     pb.launch(kb.build());
//!     pb.transfer_out(dc, o, 256);
//!     pb.build().expect("structurally valid")
//! }
//!
//! // Write stride 16 < 32 lanes: neighbouring blocks overlap, and the
//! // result would depend on the shard plan's merge order.  Rejected,
//! // with a concrete two-block collision.
//! let racy = verify_program(&demo(16), 32);
//! assert!(!racy.is_sound());
//! let why = racy.first_unsoundness().expect("unsound");
//! assert!(why.to_string().contains("copy@instr#"));
//!
//! // Stride 32 tiles the output disjointly: proven race-free.
//! assert!(verify_program(&demo(32), 32).is_sound());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// The verifier sits on the serve admission path: a panic inside it is a
// denial-of-service on the front-end, so panicking APIs are denied
// crate-wide (test modules opt back in locally).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

pub mod bounds;
pub mod lints;
pub mod race;
pub mod sites;
pub mod smem;
pub mod solve;

pub use bounds::{BoundsVerdict, OobWitness};
pub use lints::Lint;
pub use race::{RaceVerdict, RaceWitness};
pub use smem::SmemHazard;

use atgpu_ir::{HostStep, Program};
use std::collections::HashMap;
use std::fmt;

/// A proven out-of-bounds access in one launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OobFinding {
    /// Instruction index (`kernel@instr#N`).
    pub instr: usize,
    /// The validated witness.
    pub witness: OobWitness,
}

/// Verification results for one kernel launch (one round).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchReport {
    /// Round index.
    pub round: usize,
    /// Kernel name.
    pub kernel: String,
    /// Cross-block write-race verdict.
    pub race: RaceVerdict,
    /// Proven out-of-bounds accesses.
    pub oob: Vec<OobFinding>,
    /// Access sites whose bounds could not be decided (data-dependent
    /// addressing) — informational, not unsound.
    pub bounds_unknown: usize,
    /// Shared-memory write hazards (definite ones are unsound-adjacent
    /// but deterministic per block; all are surfaced for tooling).
    pub smem: Vec<SmemHazard>,
}

/// Why a program failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsoundness {
    /// Two distinct blocks write the same global word: the result
    /// depends on the shard plan's merge order.
    Racy {
        /// Round index.
        round: usize,
        /// Kernel name.
        kernel: String,
        /// The validated two-block collision.
        witness: RaceWitness,
    },
    /// An access provably escapes its allocation.
    OutOfBounds {
        /// Round index.
        round: usize,
        /// Kernel name.
        kernel: String,
        /// Instruction index (`kernel@instr#N`).
        instr: usize,
        /// The validated witness.
        witness: OobWitness,
    },
}

impl fmt::Display for Unsoundness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsoundness::Racy { round, kernel, witness } => {
                let (ia, ba, la, ta) = (&witness.a.0, witness.a.1, witness.a.2, &witness.a.3);
                let (ib, bb, lb, tb) = (&witness.b.0, witness.b.1, witness.b.2, &witness.b.3);
                write!(
                    f,
                    "round {round}: kernel `{kernel}` has a cross-block write race on word \
                     {addr}: {kernel}@instr#{ia} (block ({},{}), lane {la}, iters {ta:?}) vs \
                     {kernel}@instr#{ib} (block ({},{}), lane {lb}, iters {tb:?})",
                    ba.0,
                    ba.1,
                    bb.0,
                    bb.1,
                    addr = witness.addr,
                )
            }
            Unsoundness::OutOfBounds { round, kernel, instr, witness } => write!(
                f,
                "round {round}: {kernel}@instr#{instr} accesses word {} of a {}-word \
                 allocation at block ({},{}), lane {}, iters {:?}",
                witness.addr,
                witness.limit,
                witness.block.0,
                witness.block.1,
                witness.lane,
                witness.loops,
            ),
        }
    }
}

/// Full verification report for a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Program name.
    pub program: String,
    /// Per-launch results, one per kernel round.
    pub launches: Vec<LaunchReport>,
    /// Host-dataflow lints (advisory).
    pub lints: Vec<Lint>,
}

impl VerifyReport {
    /// `true` when no launch is proven racy or out-of-bounds.
    /// `Unknown` race verdicts and undecided bounds are admissible —
    /// the dynamic differential suites own those — so this is the
    /// admission gate, not a proof of full soundness.
    pub fn is_sound(&self) -> bool {
        self.first_unsoundness().is_none()
    }

    /// `true` when every launch is *proven* race-free (no `Unknown`).
    pub fn all_race_free(&self) -> bool {
        self.launches.iter().all(|l| l.race == RaceVerdict::RaceFree)
    }

    /// The first proven defect, if any.
    pub fn first_unsoundness(&self) -> Option<Unsoundness> {
        for l in &self.launches {
            if let RaceVerdict::Racy(w) = &l.race {
                return Some(Unsoundness::Racy {
                    round: l.round,
                    kernel: l.kernel.clone(),
                    witness: w.clone(),
                });
            }
            if let Some(o) = l.oob.first() {
                return Some(Unsoundness::OutOfBounds {
                    round: l.round,
                    kernel: l.kernel.clone(),
                    instr: o.instr,
                    witness: o.witness.clone(),
                });
            }
        }
        None
    }
}

/// Verifies `program` for a machine with `b` lanes per block: race
/// check and bounds check per launch (memoized by structural kernel
/// hash — iterated rounds relaunching one kernel are analysed once),
/// plus the host-dataflow lints.
pub fn verify_program(program: &Program, b: u64) -> VerifyReport {
    let mut launches = Vec::new();
    let mut memo: HashMap<u64, (RaceVerdict, Vec<OobFinding>, usize, Vec<SmemHazard>)> =
        HashMap::new();
    for (ri, round) in program.rounds.iter().enumerate() {
        for step in &round.steps {
            let kernel = match step {
                HostStep::Launch(k) | HostStep::LaunchSharded { kernel: k, .. } => k,
                _ => continue,
            };
            let key = kernel.cache_key();
            let (race, oob, bounds_unknown, smem) = memo
                .entry(key)
                .or_insert_with(|| {
                    let race = race::check_kernel(kernel, b);
                    let mut oob = Vec::new();
                    let mut unknown = 0usize;
                    for site in sites::collect(kernel, b) {
                        match bounds::check_site(program, kernel, &site, b) {
                            BoundsVerdict::InBounds => {}
                            BoundsVerdict::Unknown => unknown += 1,
                            BoundsVerdict::OutOfBounds(w) => {
                                oob.push(OobFinding { instr: site.instr, witness: w });
                            }
                        }
                    }
                    (race, oob, unknown, smem::check_kernel(kernel, b))
                })
                .clone();
            launches.push(LaunchReport {
                round: ri,
                kernel: kernel.name.clone(),
                race,
                oob,
                bounds_unknown,
                smem,
            });
        }
    }
    VerifyReport {
        program: program.name.clone(),
        launches,
        lints: lints::check_program(program, b),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing, clippy::panic)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, KernelBuilder, ProgramBuilder};

    fn slab_program(write_stride: i64, out_words: u64) -> Program {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 128);
        let o = pb.host_output("C", out_words);
        let da = pb.device_alloc("a", 128);
        let dc = pb.device_alloc("c", out_words);
        let mut kb = KernelBuilder::new("copy", 4, 32);
        kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::block() * 32 + AddrExpr::lane());
        kb.shr_to_glb(dc, AddrExpr::block() * write_stride + AddrExpr::lane(), AddrExpr::lane());
        pb.transfer_in(h, da, 128);
        pb.launch(kb.build());
        pb.transfer_out(dc, o, out_words);
        pb.build().unwrap()
    }

    #[test]
    fn sound_program_reports_clean() {
        let r = verify_program(&slab_program(32, 128), 32);
        assert!(r.is_sound());
        assert!(r.all_race_free());
        assert!(r.lints.is_empty());
        assert_eq!(r.launches.len(), 1);
        assert_eq!(r.launches[0].bounds_unknown, 0);
    }

    #[test]
    fn racy_program_rejected_with_located_witness() {
        let r = verify_program(&slab_program(16, 128), 32);
        assert!(!r.is_sound());
        let why = r.first_unsoundness().unwrap();
        assert!(matches!(why, Unsoundness::Racy { round: 0, .. }));
        let msg = why.to_string();
        assert!(msg.contains("copy@instr#1"), "witness names the write site: {msg}");
    }

    #[test]
    fn oob_program_rejected_with_located_witness() {
        // 4 blocks × stride 32 write [0, 128) into a 64-word buffer
        // (already block-aligned, so the padded slot is also 64 words).
        let r = verify_program(&slab_program(32, 64), 32);
        assert!(!r.is_sound());
        let why = r.first_unsoundness().unwrap();
        match &why {
            Unsoundness::OutOfBounds { instr: 1, witness, .. } => {
                assert_eq!(witness.limit, 64);
                assert!(witness.addr >= 64);
            }
            w => panic!("expected OOB at instr 1, got {w:?}"),
        }
        assert!(why.to_string().contains("copy@instr#1"));
    }

    #[test]
    fn repeated_kernel_rounds_are_memoized() {
        let mut pb = ProgramBuilder::new("p");
        let h = pb.host_input("A", 128);
        let o = pb.host_output("C", 128);
        let d = pb.device_alloc("a", 128);
        let mut kb = KernelBuilder::new("k", 4, 32);
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
        kb.shr_to_glb(d, AddrExpr::block() * 32 + AddrExpr::lane(), AddrExpr::lane());
        let k = kb.build();
        pb.begin_round();
        pb.transfer_in(h, d, 128);
        pb.launch(k.clone());
        for _ in 0..3 {
            pb.begin_round();
            pb.launch(k.clone());
        }
        pb.begin_round();
        pb.launch(k);
        pb.transfer_out(d, o, 128);
        let r = verify_program(&pb.build().unwrap(), 32);
        assert_eq!(r.launches.len(), 5);
        assert!(r.is_sound());
        // All five launches share one verdict (structural memoization).
        assert!(r.launches.iter().all(|l| l.race == RaceVerdict::RaceFree));
    }
}
