//! Bounded linear-Diophantine feasibility.
//!
//! The race detector reduces "can two distinct thread blocks write the
//! same address?" to the feasibility of one linear equation
//! `Σ coefᵢ·xᵢ = target` over finite integer domains (block indices,
//! active lanes of a folded mask, loop counters).  [`solve`] decides it
//! three-valued:
//!
//! * [`Feas::Yes`] — a witness assignment (values aligned with the
//!   input variables);
//! * [`Feas::No`] — *proven* infeasible; this is the answer soundness
//!   rests on, so `No` is only returned when the search space was
//!   covered exactly (interval/gcd pruning, closed forms — never
//!   sampling);
//! * [`Feas::Maybe`] — the node budget ran out or a domain was too
//!   large to cover; callers must degrade to an `Unknown` verdict.
//!
//! The search enumerates small domains first (lanes and loop counters
//! are tiny), pruning each prefix with interval bounds and a gcd
//! divisibility test of the remaining suffix, and finishes pairs of
//! large interval domains (block indices can be millions) with the
//! extended-gcd closed form for `a·x + b·y = t` over boxes — so a
//! million-block launch is decided without enumerating blocks.

/// A finite variable domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dom {
    /// The inclusive integer interval `[lo, hi]`.
    Range(i64, i64),
    /// An explicit subset of `[0, 64)`: the value set `{i : bit i set}`
    /// (lane domains come from folded predicate masks).
    Bits(u64),
}

impl Dom {
    fn is_empty(&self) -> bool {
        match *self {
            Dom::Range(lo, hi) => lo > hi,
            Dom::Bits(m) => m == 0,
        }
    }

    fn min(&self) -> i64 {
        match *self {
            Dom::Range(lo, _) => lo,
            Dom::Bits(m) => m.trailing_zeros() as i64,
        }
    }

    fn max(&self) -> i64 {
        match *self {
            Dom::Range(_, hi) => hi,
            Dom::Bits(m) => 63 - m.leading_zeros() as i64,
        }
    }

    fn size(&self) -> u64 {
        match *self {
            Dom::Range(lo, hi) => (hi - lo + 1).max(0) as u64,
            Dom::Bits(m) => u64::from(m.count_ones()),
        }
    }

    fn contains(&self, v: i64) -> bool {
        match *self {
            Dom::Range(lo, hi) => lo <= v && v <= hi,
            Dom::Bits(m) => (0..64).contains(&v) && m & (1u64 << v) != 0,
        }
    }

    fn values(&self) -> impl Iterator<Item = i64> + '_ {
        let (range, bits) = match *self {
            Dom::Range(lo, hi) => (Some(lo..=hi), None),
            Dom::Bits(m) => (None, Some((0..64).filter(move |i| m & (1u64 << i) != 0))),
        };
        range.into_iter().flatten().chain(bits.into_iter().flatten())
    }
}

/// One term `coef · x` with `x` ranging over `dom`.
#[derive(Debug, Clone, Copy)]
pub struct Var {
    /// The coefficient (may be zero or negative).
    pub coef: i64,
    /// The variable's domain.
    pub dom: Dom,
}

/// The three-valued feasibility answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feas {
    /// Feasible; the values are aligned with the input `vars` slice.
    Yes(Vec<i64>),
    /// Proven infeasible over the given domains.
    No,
    /// Undecided (budget exhausted or domains too large to cover).
    Maybe,
}

/// Largest domain the recursive search will enumerate directly.
const ENUM_CAP: u64 = 4096;

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended gcd: returns `(g, u, v)` with `a·u + b·v = g = gcd(|a|, |b|)`
/// (`g ≥ 0`; `a`, `b` not both zero).
fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        if a >= 0 {
            (a, 1, 0)
        } else {
            (-a, -1, 0)
        }
    } else {
        let (g, u, v) = egcd(b, a.rem_euclid(b));
        (g, v, u - a.div_euclid(b) * v)
    }
}

fn term_bounds(v: &Var) -> (i128, i128) {
    let c = v.coef as i128;
    let (a, b) = (c * v.dom.min() as i128, c * v.dom.max() as i128);
    (a.min(b), a.max(b))
}

/// Decides `Σ coefᵢ·xᵢ = target` over the variables' domains.
pub fn solve(vars: &[Var], target: i64, budget: &mut u64) -> Feas {
    if vars.iter().any(|v| v.dom.is_empty()) {
        return Feas::No;
    }
    // Zero-coefficient variables take any domain value; pin them to the
    // minimum so the witness is fully assigned.
    let mut values: Vec<i64> = vars.iter().map(|v| v.dom.min()).collect();
    let mut order: Vec<usize> =
        (0..vars.len()).filter(|&i| vars.get(i).map(|v| v.coef != 0).unwrap_or(false)).collect();
    // Small domains first: lanes/loops are enumerated, leaving the big
    // block-index intervals for the two-variable closed form.
    order.sort_by_key(|&i| vars.get(i).map(|v| v.dom.size()).unwrap_or(0));

    // Suffix interval bounds and gcds over the ordered tail, so each
    // recursion step prunes in O(1).
    let mut suffix: Vec<(i128, i128, u64)> = vec![(0, 0, 0)];
    for &i in order.iter().rev() {
        let var = vars.get(i);
        let (lo, hi) = var.map(term_bounds).unwrap_or((0, 0));
        let c = var.map(|v| v.coef.unsigned_abs()).unwrap_or(0);
        let &(slo, shi, sg) = suffix.last().unwrap_or(&(0, 0, 0));
        suffix.push((slo + lo, shi + hi, gcd(c, sg)));
    }
    suffix.reverse();
    let suffix_lo: Vec<i128> = suffix.iter().map(|s| s.0).collect();
    let suffix_hi: Vec<i128> = suffix.iter().map(|s| s.1).collect();
    let suffix_gcd: Vec<u64> = suffix.iter().map(|s| s.2).collect();

    struct Search<'a> {
        vars: &'a [Var],
        order: &'a [usize],
        suffix_lo: &'a [i128],
        suffix_hi: &'a [i128],
        suffix_gcd: &'a [u64],
        values: &'a mut [i64],
        budget: &'a mut u64,
    }

    enum R {
        Found,
        No,
        Maybe,
    }

    impl Search<'_> {
        fn var(&self, k: usize) -> Option<&Var> {
            self.order.get(k).and_then(|&i| self.vars.get(i))
        }

        fn assign(&mut self, k: usize, v: i64) {
            if let Some(&i) = self.order.get(k) {
                if let Some(slot) = self.values.get_mut(i) {
                    *slot = v;
                }
            }
        }

        fn go(&mut self, k: usize, t: i128) -> R {
            if *self.budget == 0 {
                return R::Maybe;
            }
            *self.budget -= 1;
            let remaining = self.order.len() - k;
            // Interval prune: the suffix terms can only sum into
            // [suffix_lo, suffix_hi].
            let (lo, hi) = (
                self.suffix_lo.get(k).copied().unwrap_or(0),
                self.suffix_hi.get(k).copied().unwrap_or(0),
            );
            if t < lo || t > hi {
                return R::No;
            }
            // Divisibility prune: gcd of the suffix coefficients must
            // divide the residual target.
            let g = self.suffix_gcd.get(k).copied().unwrap_or(0);
            if remaining == 0 {
                return if t == 0 { R::Found } else { R::No };
            }
            if g != 0 && (t % g as i128) != 0 {
                return R::No;
            }
            if remaining == 1 {
                let Some(var) = self.var(k).copied() else { return R::Maybe };
                let c = var.coef as i128;
                if t % c != 0 {
                    return R::No;
                }
                let q = t / c;
                let Ok(q64) = i64::try_from(q) else { return R::No };
                if var.dom.contains(q64) {
                    self.assign(k, q64);
                    return R::Found;
                }
                return R::No;
            }
            if remaining == 2 {
                let (a, b) = (self.var(k).copied(), self.var(k + 1).copied());
                if let (Some(a), Some(b)) = (a, b) {
                    if let (Dom::Range(xlo, xhi), Dom::Range(ylo, yhi)) = (a.dom, b.dom) {
                        return match two_var(a.coef, (xlo, xhi), b.coef, (ylo, yhi), t) {
                            Some((x, y)) => {
                                self.assign(k, x);
                                self.assign(k + 1, y);
                                R::Found
                            }
                            None => R::No,
                        };
                    }
                }
                // Bits domains fall through to enumeration (≤ 64 values).
            }
            let Some(var) = self.var(k).copied() else { return R::Maybe };
            if var.dom.size() > ENUM_CAP {
                return R::Maybe;
            }
            let mut saw_maybe = false;
            for v in var.dom.values() {
                match self.go(k + 1, t - var.coef as i128 * v as i128) {
                    R::Found => {
                        self.assign(k, v);
                        return R::Found;
                    }
                    R::Maybe => saw_maybe = true,
                    R::No => {}
                }
            }
            if saw_maybe {
                R::Maybe
            } else {
                R::No
            }
        }
    }

    let mut s = Search {
        vars,
        order: &order,
        suffix_lo: &suffix_lo,
        suffix_hi: &suffix_hi,
        suffix_gcd: &suffix_gcd,
        values: &mut values,
        budget,
    };
    match s.go(0, target as i128) {
        R::Found => Feas::Yes(values),
        R::No => Feas::No,
        R::Maybe => Feas::Maybe,
    }
}

/// Closed form for `a·x + b·y = t` over `x ∈ [xlo, xhi]`, `y ∈ [ylo,
/// yhi]` (`a, b ≠ 0`): parametrize the solution line through the
/// extended gcd and intersect the parameter ranges both box edges
/// induce.  O(1) regardless of interval width.
fn two_var(
    a: i64,
    (xlo, xhi): (i64, i64),
    b: i64,
    (ylo, yhi): (i64, i64),
    t: i128,
) -> Option<(i64, i64)> {
    let (a, b) = (a as i128, b as i128);
    let (g, u, v) = egcd(a, b);
    if g == 0 || t % g != 0 {
        return None;
    }
    let scale = t / g;
    let (x0, y0) = (u * scale, v * scale);
    // General solution: x = x0 + (b/g)·k, y = y0 − (a/g)·k.
    let (sx, sy) = (b / g, -a / g);
    let kx = param_range(x0, sx, xlo as i128, xhi as i128)?;
    let ky = param_range(y0, sy, ylo as i128, yhi as i128)?;
    let (klo, khi) = (kx.0.max(ky.0), kx.1.min(ky.1));
    if klo > khi {
        return None;
    }
    let (x, y) = (x0 + sx * klo, y0 + sy * klo);
    Some((i64::try_from(x).ok()?, i64::try_from(y).ok()?))
}

/// The `k` interval for which `base + step·k ∈ [lo, hi]` (`step ≠ 0`).
fn param_range(base: i128, step: i128, lo: i128, hi: i128) -> Option<(i128, i128)> {
    let (a, b) = (lo - base, hi - base);
    let (klo, khi) = if step > 0 {
        (div_ceil(a, step), div_floor(b, step))
    } else {
        (div_ceil(b, step), div_floor(a, step))
    };
    (klo <= khi).then_some((klo, khi))
}

fn div_floor(a: i128, b: i128) -> i128 {
    // `div_euclid` floors for positive divisors but rounds up for
    // negative ones (its remainder is always non-negative).
    a.div_euclid(b) - if b < 0 && a.rem_euclid(b) != 0 { 1 } else { 0 }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    div_floor(a, b) + if a % b != 0 { 1 } else { 0 }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing, clippy::panic)]
mod tests {
    use super::*;

    fn check(vars: &[Var], t: i64) -> Feas {
        let mut budget = 1_000_000;
        let r = solve(vars, t, &mut budget);
        if let Feas::Yes(ref vals) = r {
            // Every witness must actually satisfy the equation and the
            // domains.
            let sum: i128 = vars.iter().zip(vals).map(|(v, &x)| v.coef as i128 * x as i128).sum();
            assert_eq!(sum, t as i128, "witness violates the equation");
            for (v, &x) in vars.iter().zip(vals) {
                assert!(v.dom.contains(x), "witness {x} outside {:?}", v.dom);
            }
        }
        r
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(check(&[], 0), Feas::Yes(vec![]));
        assert_eq!(check(&[], 5), Feas::No);
        assert!(matches!(check(&[Var { coef: 3, dom: Dom::Range(0, 10) }], 9), Feas::Yes(_)));
        assert_eq!(check(&[Var { coef: 3, dom: Dom::Range(0, 10) }], 7), Feas::No);
        assert_eq!(check(&[Var { coef: 3, dom: Dom::Range(0, 2) }], 9), Feas::No);
    }

    #[test]
    fn empty_domain_is_infeasible() {
        assert_eq!(check(&[Var { coef: 1, dom: Dom::Bits(0) }], 0), Feas::No);
        assert_eq!(check(&[Var { coef: 1, dom: Dom::Range(3, 2) }], 0), Feas::No);
    }

    #[test]
    fn two_var_closed_form_over_huge_ranges() {
        // 32·x − 32·y = 64 with x, y in a million-wide box: x = y + 2.
        let vars = [
            Var { coef: 32, dom: Dom::Range(0, 1 << 20) },
            Var { coef: -32, dom: Dom::Range(0, 1 << 20) },
        ];
        assert!(matches!(check(&vars, 64), Feas::Yes(_)));
        // 32·x − 32·y = 31 is a parity miss no matter the ranges.
        assert_eq!(check(&vars, 31), Feas::No);
    }

    #[test]
    fn slab_partition_is_infeasible() {
        // The vecadd shape: 32·d + la − lb = 0 with d ≥ 1 and lanes in
        // [0, 32): the smallest positive value of 32·d + la − lb is 1.
        let vars = [
            Var { coef: 32, dom: Dom::Range(1, 100_000) },
            Var { coef: 1, dom: Dom::Bits(u64::MAX >> 32) },
            Var { coef: -1, dom: Dom::Bits(u64::MAX >> 32) },
        ];
        assert_eq!(check(&vars, 0), Feas::No);
    }

    #[test]
    fn overlapping_stride_found() {
        // 16·d + la − lb = 0, lanes in [0, 32): d = 1, la = 0, lb = 16.
        let vars = [
            Var { coef: 16, dom: Dom::Range(1, 100_000) },
            Var { coef: 1, dom: Dom::Bits(u64::MAX >> 32) },
            Var { coef: -1, dom: Dom::Bits(u64::MAX >> 32) },
        ];
        assert!(matches!(check(&vars, 0), Feas::Yes(_)));
    }

    #[test]
    fn masked_lane_domain_respected() {
        // Only lane 5 is active on either side: la − lb = 0 trivially,
        // but la − lb = 3 is impossible.
        let vars =
            [Var { coef: 1, dom: Dom::Bits(1 << 5) }, Var { coef: -1, dom: Dom::Bits(1 << 5) }];
        assert!(matches!(check(&vars, 0), Feas::Yes(_)));
        assert_eq!(check(&vars, 3), Feas::No);
    }

    #[test]
    fn budget_exhaustion_is_maybe_not_no() {
        let vars = [
            Var { coef: 7, dom: Dom::Range(0, 4000) },
            Var { coef: 11, dom: Dom::Bits(u64::MAX) },
            Var { coef: -13, dom: Dom::Bits(u64::MAX) },
            Var { coef: 17, dom: Dom::Bits(u64::MAX) },
        ];
        let mut budget = 1;
        assert!(!matches!(solve(&vars, 1, &mut budget), Feas::No));
    }

    #[test]
    fn zero_coefficient_vars_get_witness_values() {
        let vars = [Var { coef: 0, dom: Dom::Range(4, 9) }, Var { coef: 2, dom: Dom::Range(0, 5) }];
        match check(&vars, 6) {
            Feas::Yes(vals) => assert_eq!(vals, vec![4, 3]),
            other => panic!("expected Yes, got {other:?}"),
        }
    }

    #[test]
    fn matmul_tile_shape_is_infeasible() {
        // (b·n)·Δy + n·Δt + b·d + Δl = 0 for the 128×128 tiled matmul
        // write: block y rows are n·b apart, loop rows n apart, block x
        // tiles b apart, lanes 1 apart — no combination collides.
        let (b, n) = (32i64, 128i64);
        let lanes = Dom::Bits(u64::MAX >> 32);
        let vars = [
            Var { coef: b * n, dom: Dom::Range(-3, 3) },
            Var { coef: n, dom: Dom::Range(0, 31) },
            Var { coef: -n, dom: Dom::Range(0, 31) },
            Var { coef: b, dom: Dom::Range(1, 3) },
            Var { coef: 1, dom: lanes },
            Var { coef: -1, dom: lanes },
        ];
        assert_eq!(check(&vars, 0), Feas::No);
    }
}
