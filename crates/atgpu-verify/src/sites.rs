//! Access-site collection with stable instruction indices.
//!
//! A directed mirror of `atgpu_analyze::analyze::collect_sites`: the
//! same lane-mask dataflow walk (`atgpu_ir::LaneValues` folds lane-pure
//! predicates to constant masks, loop bodies kill registers they
//! write), but each access additionally records
//!
//! * its **pre-order instruction index** — every [`Instr`] node in the
//!   body (including `Pred`/`Repeat` headers and `Sync`) consumes one
//!   index, children numbered after their parent.  This is the `N` of
//!   `kernel@instr#N` diagnostics, and `atgpu_ir::pretty` annotates the
//!   rendered pseudocode with the same numbers (`▷ #N`), so a verifier
//!   finding can be located in a printout by eye;
//! * its **direction** ([`Access::Read`]/[`Access::Write`]) from the
//!   accessed memory's point of view — `⇐` into shared is a global
//!   *read* plus a shared *write*, and so on;
//! * whether the written value is provably **uniform** across the
//!   active lanes (the shared-memory hazard check needs to distinguish
//!   a benign broadcast from lanes racing different values into one
//!   word).

use atgpu_ir::affine::CompiledAddr;
use atgpu_ir::{DBuf, Instr, Kernel, LaneValues, Operand};

/// Which memory an access touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// Device-global memory (buffer-relative offsets).
    Global,
    /// The block's shared memory.
    Shared,
}

/// Access direction, from the accessed memory's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The memory is read.
    Read,
    /// The memory is written.
    Write,
}

/// One memory access site in a kernel body.
#[derive(Debug, Clone)]
pub struct Site {
    /// Pre-order instruction index (`kernel@instr#N`).
    pub instr: usize,
    /// Memory space accessed.
    pub space: Space,
    /// Direction.
    pub access: Access,
    /// The per-lane address (buffer-relative for global sites).
    pub addr: CompiledAddr,
    /// For global sites, the buffer accessed.
    pub buf: Option<DBuf>,
    /// Trip counts of the enclosing loops, outermost first.
    pub loop_counts: Vec<u32>,
    /// Active-lane mask if the enclosing predicates folded to a
    /// constant; `None` means unknown (analyses over-approximate it to
    /// the full warp for proofs, and refuse witnesses).
    pub lane_mask: Option<u64>,
    /// For write sites: `true` when the stored value is provably the
    /// same in every active lane (a broadcast).  `false` means it *may*
    /// differ.  Reads always record `true`.
    pub uniform_value: bool,
}

/// True when evaluating `addr` ignores the lane index (every lane reads
/// the same word).
fn lane_invariant(addr: &CompiledAddr) -> bool {
    addr.as_affine().map(|a| a.is_static() && a.lane == 0).unwrap_or(false)
}

/// Best-effort: is `op`'s value identical across lanes?
fn operand_uniform(lanes: &LaneValues, op: Operand, b: u64) -> bool {
    match op {
        Operand::Imm(_) | Operand::Block | Operand::BlockY | Operand::LoopVar(_) => true,
        Operand::Lane => false,
        Operand::Reg(_) => lanes
            .operand_values(op)
            .map(|vals| {
                let n = b.clamp(1, 64) as usize;
                vals.iter().take(n).all(|&v| Some(v) == vals.first().copied())
            })
            .unwrap_or(false),
    }
}

/// Collects every access site of `kernel` for a machine with `b` lanes.
pub fn collect(kernel: &Kernel, b: u64) -> Vec<Site> {
    struct Walker {
        lanes: LaneValues,
        counts: Vec<u32>,
        mask: Option<u64>,
        next: usize,
        b: u64,
        out: Vec<Site>,
    }
    impl Walker {
        #[allow(clippy::too_many_arguments)]
        fn push(
            &mut self,
            instr: usize,
            space: Space,
            access: Access,
            addr: &CompiledAddr,
            buf: Option<DBuf>,
            uniform_value: bool,
        ) {
            self.out.push(Site {
                instr,
                space,
                access,
                addr: addr.clone(),
                buf,
                loop_counts: self.counts.clone(),
                lane_mask: self.mask,
                uniform_value,
            });
        }

        fn walk(&mut self, body: &[Instr]) {
            for i in body {
                let idx = self.next;
                self.next += 1;
                let full = self.mask == Some(self.lanes.full_mask());
                match i {
                    Instr::Alu { op, dst, a, b } => self.lanes.record_alu(*op, *dst, *a, *b, full),
                    Instr::Mov { dst, src } => self.lanes.record_mov(*dst, *src, full),
                    Instr::GlbToShr { shared, global } => {
                        self.push(
                            idx,
                            Space::Global,
                            Access::Read,
                            &global.offset,
                            Some(global.buf),
                            true,
                        );
                        let uniform = lane_invariant(&global.offset);
                        self.push(idx, Space::Shared, Access::Write, shared, None, uniform);
                    }
                    Instr::ShrToGlb { global, shared } => {
                        let uniform = lane_invariant(shared);
                        self.push(
                            idx,
                            Space::Global,
                            Access::Write,
                            &global.offset,
                            Some(global.buf),
                            uniform,
                        );
                        self.push(idx, Space::Shared, Access::Read, shared, None, true);
                    }
                    Instr::LdShr { dst, shared } => {
                        self.push(idx, Space::Shared, Access::Read, shared, None, true);
                        self.lanes.kill(*dst);
                    }
                    Instr::StShr { shared, src } => {
                        let uniform = operand_uniform(&self.lanes, *src, self.b);
                        self.push(idx, Space::Shared, Access::Write, shared, None, uniform);
                    }
                    Instr::Pred { pred, then_body, else_body } => {
                        let parent = self.mask;
                        let folded = self.lanes.pred_mask(pred);
                        let (then_mask, else_mask) = self.lanes.arm_masks(parent, folded);
                        self.mask = then_mask;
                        self.walk(then_body);
                        self.mask = else_mask;
                        self.walk(else_body);
                        self.mask = parent;
                    }
                    Instr::Repeat { count, body } => {
                        self.counts.push(*count);
                        self.lanes.kill_written(body);
                        self.walk(body);
                        self.counts.pop();
                    }
                    Instr::Sync => {}
                }
            }
        }
    }

    let lanes = LaneValues::new(b.clamp(1, 64) as u32);
    let full = lanes.full_mask();
    let mut w = Walker { lanes, counts: Vec::new(), mask: Some(full), next: 0, b, out: Vec::new() };
    w.walk(&kernel.body);
    w.out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing, clippy::panic)]
mod tests {
    use super::*;
    use atgpu_ir::{AddrExpr, KernelBuilder, Operand, PredExpr};

    #[test]
    fn directions_and_indices_are_preorder() {
        let mut kb = KernelBuilder::new("k", 4, 64);
        let d = DBuf(0);
        // #0 ⇐ (global read + shared write)
        kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
        // #1 Repeat header, #2 LdShr, #3 if-header, #4 StShr
        kb.repeat(3, |kb| {
            kb.ld_shr(0, AddrExpr::lane());
            kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(4)), |kb| {
                kb.st_shr(AddrExpr::lane() + 32, Operand::Reg(0));
            });
        });
        // #5 ⇐ out (global write + shared read)
        kb.shr_to_glb(d, AddrExpr::block() * 32 + AddrExpr::lane(), AddrExpr::lane() + 32);
        let sites = collect(&kb.build(), 32);

        let tags: Vec<(usize, Space, Access)> =
            sites.iter().map(|s| (s.instr, s.space, s.access)).collect();
        assert_eq!(
            tags,
            vec![
                (0, Space::Global, Access::Read),
                (0, Space::Shared, Access::Write),
                (2, Space::Shared, Access::Read),
                (4, Space::Shared, Access::Write),
                (5, Space::Global, Access::Write),
                (5, Space::Shared, Access::Read),
            ]
        );
        // The predicated store sees the folded `j < 4` mask and the
        // loop count.
        let st = &sites[3];
        assert_eq!(st.lane_mask, Some(0b1111));
        assert_eq!(st.loop_counts, vec![3]);
    }

    #[test]
    fn uniform_value_detection() {
        let mut kb = KernelBuilder::new("k", 2, 64);
        let d = DBuf(0);
        kb.st_shr(AddrExpr::lane(), Operand::Imm(7)); // broadcast
        kb.st_shr(AddrExpr::lane(), Operand::Lane); // varies
                                                    // Global write copying one shared word everywhere: uniform.
        kb.shr_to_glb(d, AddrExpr::block(), AddrExpr::c(3));
        // Global write copying per-lane shared words: varies.
        kb.shr_to_glb(d, AddrExpr::block() * 32 + AddrExpr::lane(), AddrExpr::lane());
        let sites = collect(&kb.build(), 32);
        let writes: Vec<bool> =
            sites.iter().filter(|s| s.access == Access::Write).map(|s| s.uniform_value).collect();
        assert_eq!(writes, vec![true, false, true, false]);
    }
}
