//! Every `atgpu-algos` builder output must verify clean: no proven
//! race, no proven out-of-bounds access, and (for the regular affine
//! workloads) a *proven* `RaceFree` verdict — the static form of the
//! bit-identity-under-any-shard-plan guarantee the differential suites
//! check dynamically.  This is the CI gate the verifier exists for.

#![allow(clippy::unwrap_used, clippy::indexing_slicing, clippy::panic)]

use atgpu_algos::ooc::{OocReduce, OocScheme, OocVecAdd};
use atgpu_algos::transpose::TransposeVariant;
use atgpu_algos::workload::{test_machine, BuiltProgram, Workload};
use atgpu_model::{ClusterSpec, GpuSpec};
use atgpu_verify::{verify_program, RaceVerdict, VerifyReport};

fn check(name: &str, built: &BuiltProgram) -> VerifyReport {
    let machine = test_machine();
    let report = verify_program(&built.program, machine.b);
    assert!(
        report.is_sound(),
        "workload `{name}` must verify clean, got: {}",
        report.first_unsoundness().unwrap()
    );
    assert!(
        report.lints.is_empty(),
        "workload `{name}` should be lint-free, got: {:?}",
        report.lints
    );
    report
}

#[test]
fn all_workloads_verify_clean() {
    let machine = test_machine();
    // (name, builder output, must the race check fully *prove* RaceFree?)
    // Data-dependent scatters (bitonic's compare-exchange, histogram's
    // private-row update) are `Unknown` by design — the differential
    // suites own those — but the affine workloads must be proven.
    let workloads: Vec<(&str, Box<dyn Workload>, bool)> = vec![
        ("vecadd", Box::new(atgpu_algos::vecadd::VecAdd::new(1024, 1)), true),
        ("saxpy", Box::new(atgpu_algos::saxpy::Saxpy::new(1024, 3, 2)), true),
        ("reduce", Box::new(atgpu_algos::reduce::Reduce::new(2048, 3)), true),
        ("dot", Box::new(atgpu_algos::dot::Dot::new(1024, 4)), true),
        ("scan", Box::new(atgpu_algos::scan::Scan::new(1024, 5)), true),
        ("stencil", Box::new(atgpu_algos::stencil::Stencil::new(1024, 6)), true),
        ("matmul", Box::new(atgpu_algos::matmul::MatMul::new(64, 7)), true),
        (
            "transpose-naive",
            Box::new(atgpu_algos::transpose::Transpose::new(64, 8, TransposeVariant::Naive)),
            true,
        ),
        (
            "transpose-tiled",
            Box::new(atgpu_algos::transpose::Transpose::new(64, 9, TransposeVariant::Tiled)),
            true,
        ),
        (
            "transpose-padded",
            Box::new(atgpu_algos::transpose::Transpose::new(64, 10, TransposeVariant::TiledPadded)),
            true,
        ),
        ("gemv", Box::new(atgpu_algos::gemv::Gemv::new(64, 11)), true),
        ("spmv", Box::new(atgpu_algos::spmv::SpmvEll::new(128, 3, 12)), true),
        ("histogram", Box::new(atgpu_algos::histogram::Histogram::new(1024, 32, 13)), false),
        ("bitonic", Box::new(atgpu_algos::bitonic::BitonicSort::new(128, 14)), false),
        ("ooc-vecadd", Box::new(OocVecAdd::new(4096, 1024, 15)), true),
        ("ooc-reduce-host", Box::new(OocReduce::new(4096, 1024, OocScheme::HostFinish, 16)), true),
        (
            "ooc-reduce-device",
            Box::new(OocReduce::new(4096, 1024, OocScheme::DeviceFinish, 17)),
            true,
        ),
    ];
    assert!(workloads.len() >= 16, "the full workload roster");
    for (name, w, must_prove) in &workloads {
        let built = w.build(&machine).unwrap();
        let report = check(name, &built);
        if *must_prove {
            assert!(
                report.all_race_free(),
                "workload `{name}` should be *proven* race-free, got: {:?}",
                report.launches.iter().map(|l| (&l.kernel, &l.race)).collect::<Vec<_>>()
            );
        }
        // No workload is proven racy, ever.
        assert!(report.launches.iter().all(|l| !matches!(l.race, RaceVerdict::Racy(_))));
    }
}

#[test]
fn sharded_and_planned_variants_verify_clean() {
    let machine = test_machine();
    let cluster =
        ClusterSpec::homogeneous(3, GpuSpec { k_prime: 2, h_limit: 8, ..GpuSpec::gtx650_like() });
    let devices = 3u32;

    let vecadd = atgpu_algos::vecadd::VecAdd::new(4096, 1);
    check("vecadd-sharded", &vecadd.build_sharded(&machine, devices).unwrap());
    check("vecadd-planned", &vecadd.build_sharded_planned(&machine, &cluster).unwrap());

    let matmul = atgpu_algos::matmul::MatMul::new(96, 2);
    check("matmul-sharded", &matmul.build_sharded(&machine, devices).unwrap());
    check("matmul-planned", &matmul.build_sharded_planned(&machine, &cluster).unwrap());

    let reduce = atgpu_algos::reduce::Reduce::new(4096, 3);
    check("reduce-sharded", &reduce.build_sharded(&machine, devices).unwrap());
    check("reduce-planned", &reduce.build_sharded_planned(&machine, &cluster).unwrap());

    let scan = atgpu_algos::scan::Scan::new(4096, 4);
    check("scan-sharded", &scan.build_sharded(&machine, devices).unwrap());
    check("scan-planned", &scan.build_sharded_planned(&machine, &cluster).unwrap());

    let spmv = atgpu_algos::spmv::SpmvEll::new(256, 3, 5);
    check("spmv-sharded", &spmv.build_sharded(&machine, devices).unwrap());
    check("spmv-planned", &spmv.build_sharded_planned(&machine, &cluster).unwrap());

    let stencil = atgpu_algos::stencil::Stencil::new(4096, 6);
    check("stencil-sharded", &stencil.build_sharded(&machine, devices, 4).unwrap());
    check("stencil-planned", &stencil.build_sharded_planned(&machine, &cluster, 4).unwrap());

    let histogram = atgpu_algos::histogram::Histogram::new(4096, 32, 7);
    check("histogram-sharded", &histogram.build_sharded(&machine, devices).unwrap());
    check("histogram-planned", &histogram.build_sharded_planned(&machine, &cluster).unwrap());

    let ooc = OocVecAdd::new(8192, 2048, 8);
    check("ooc-sharded", &ooc.build_sharded(&machine, devices).unwrap());
}

#[test]
fn streamed_variants_verify_clean() {
    let machine = test_machine();
    let ooc = OocVecAdd::new(8192, 2048, 9);
    check("ooc-streamed", &ooc.build_streamed(&machine).unwrap());

    let cluster =
        ClusterSpec::homogeneous(3, GpuSpec { k_prime: 2, h_limit: 8, ..GpuSpec::gtx650_like() });
    let matmul = atgpu_algos::matmul::MatMul::new(96, 10);
    check("matmul-streamed", &matmul.build_sharded_streamed(&machine, 3, 1).unwrap());
    check("matmul-pipelined", &matmul.build_sharded_pipelined(&machine, &cluster).unwrap());
}
