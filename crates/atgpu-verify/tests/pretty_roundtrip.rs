//! The `kernel@instr#N` indices in verifier diagnostics and the `▷ #N`
//! annotations in `atgpu_ir::pretty` printouts are the same pre-order
//! numbering: every site the verifier reports can be found in the
//! rendered pseudocode by its index, and vice versa.

#![allow(clippy::unwrap_used, clippy::indexing_slicing, clippy::panic)]

use atgpu_ir::pretty::render_kernel;
use atgpu_ir::{AddrExpr, KernelBuilder, Operand, PredExpr, ProgramBuilder};
use atgpu_verify::sites::collect;

#[test]
fn every_site_index_appears_in_the_printout() {
    let mut pb = ProgramBuilder::new("rt");
    let h = pb.host_input("A", 256);
    let d = pb.device_alloc("a", 256);
    let mut kb = KernelBuilder::new("k", 4, 64);
    kb.glb_to_shr(AddrExpr::lane(), d, AddrExpr::block() * 32 + AddrExpr::lane());
    kb.repeat(3, |kb| {
        kb.ld_shr(0, AddrExpr::lane());
        kb.when(PredExpr::Lt(Operand::Lane, Operand::Imm(8)), |kb| {
            kb.st_shr(AddrExpr::lane() + 32, Operand::Reg(0));
        });
        kb.sync();
    });
    kb.shr_to_glb(d, AddrExpr::block() * 32 + AddrExpr::lane(), AddrExpr::lane() + 32);
    let k = kb.build();
    pb.transfer_in(h, d, 256);
    pb.launch(k.clone());
    let p = pb.build().unwrap();

    let rendered = render_kernel(&k, &p);
    let sites = collect(&k, 32);
    assert!(!sites.is_empty());
    for site in &sites {
        let tag = format!("▷ #{}", site.instr);
        assert!(
            rendered.contains(&tag),
            "site index {} missing from printout:\n{rendered}",
            site.instr
        );
    }

    // And the numbering really is the shared pre-order walk: the final
    // store (global write) sits past the loop header (#1), its three
    // body instructions (#2–#4) and the sync (#5) — index 6 in both
    // worlds.
    let last_write = sites
        .iter()
        .filter(|s| s.buf.is_some() && matches!(s.access, atgpu_verify::sites::Access::Write))
        .map(|s| s.instr)
        .max()
        .unwrap();
    assert_eq!(last_write, 6);
    assert!(rendered.contains("▷ #6"), "{rendered}");
}
