//! Quickstart: analyse and simulate vector addition, the paper's first
//! workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atgpu::algos::{vecadd::VecAdd, verify_on_sim, Workload};
use atgpu::analyze::analyze_program;
use atgpu::model::cost::{evaluate, CostModel};
use atgpu::model::{AtgpuMachine, GpuSpec};
use atgpu::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick the abstract machine ATGPU(p, b, M, G) and a device.
    let machine = AtgpuMachine::gtx650_like();
    let spec = GpuSpec::gtx650_like();
    let params = spec.derived_cost_params();
    println!("machine: {machine}");

    // 2. Build the paper's vector-addition program for n = 1,000,000.
    let n = 1_000_000;
    let workload = VecAdd::new(n, 42);
    let built = workload.build(&machine)?;

    // 3. Statically derive the model metrics from the kernel IR.
    let analysis = analyze_program(&built.program, &machine)?;
    let metrics = analysis.metrics();
    println!("\nmodel metrics (derived from IR):");
    println!("  rounds R           = {}", metrics.num_rounds());
    println!("  time t             = {} lockstep ops", metrics.total_time_ops());
    println!("  I/O q              = {} block transactions", metrics.total_io_blocks());
    println!("  global space       = {} words", metrics.peak_global_words());
    println!("  shared space       = {} words per MP", metrics.peak_shared_words());
    println!("  transfer Σ(I+O)    = {} words", metrics.total_transfer_words());

    // 4. Evaluate the cost functions (paper Expressions 1 and 2).
    let atgpu = evaluate(CostModel::GpuCost, &params, &machine, &spec, &metrics)?;
    let swgpu = evaluate(CostModel::Swgpu, &params, &machine, &spec, &metrics)?;
    println!("\npredictions:");
    println!(
        "  ATGPU GPU-cost     = {:8.3} ms  (ΔT = {:.1}% transfer)",
        atgpu.total(),
        100.0 * atgpu.transfer_proportion()
    );
    println!("  SWGPU baseline     = {:8.3} ms  (no transfer terms)", swgpu.total());

    // 5. Observe on the simulated GTX 650-like device; the result is
    //    checked against the host reference.
    let report = verify_on_sim(&workload, &machine, &spec, &SimConfig::default())?;
    println!("\nsimulated observation (verified correct):");
    println!("  total              = {:8.3} ms", report.total_ms());
    println!("  kernel             = {:8.3} ms", report.kernel_ms());
    println!(
        "  transfer           = {:8.3} ms  (ΔE = {:.1}%)",
        report.transfer_ms(),
        100.0 * report.transfer_proportion()
    );

    println!(
        "\nthe ATGPU prediction tracks the total ({:.1}% off), while the \
         transfer-blind SWGPU\nbaseline can only explain the kernel part — \
         the paper's central claim.",
        100.0 * (atgpu.total() - report.total_ms()).abs() / report.total_ms()
    );
    Ok(())
}
