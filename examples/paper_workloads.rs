//! The three workloads of the paper's evaluation, side by side: vector
//! addition (transfer-dominated), reduction (moderate transfer) and
//! matrix multiplication (compute-dominated) — reproducing the §IV-D
//! story in one run.
//!
//! ```sh
//! cargo run --release --example paper_workloads
//! ```

use atgpu::algos::{matmul::MatMul, reduce::Reduce, vecadd::VecAdd, verify_on_sim, Workload};
use atgpu::analyze::analyze_program;
use atgpu::model::cost::{evaluate, CostModel};
use atgpu::model::{AtgpuMachine, GpuSpec};
use atgpu::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = AtgpuMachine::gtx650_like();
    let spec = GpuSpec::gtx650_like();
    let params = spec.derived_cost_params();
    let sim = SimConfig::default();

    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VecAdd::new(1_000_000, 1)),
        Box::new(Reduce::new(1 << 20, 2)),
        Box::new(MatMul::new(192, 3)),
    ];

    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>10} {:>10} {:>8} {:>8}",
        "workload", "R", "ATGPU (ms)", "SWGPU (ms)", "total ms", "kernel ms", "ΔE", "ΔT"
    );
    for w in &workloads {
        let built = w.build(&machine)?;
        let metrics = analyze_program(&built.program, &machine)?.metrics();
        let atgpu = evaluate(CostModel::GpuCost, &params, &machine, &spec, &metrics)?;
        let swgpu = evaluate(CostModel::Swgpu, &params, &machine, &spec, &metrics)?;
        let report = verify_on_sim(w.as_ref(), &machine, &spec, &sim)?;
        println!(
            "{:<10} {:>6} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>7.1}% {:>7.1}%",
            w.name(),
            metrics.num_rounds(),
            atgpu.total(),
            swgpu.total(),
            report.total_ms(),
            report.kernel_ms(),
            100.0 * report.transfer_proportion(),
            100.0 * atgpu.transfer_proportion(),
        );
    }

    println!(
        "\nreading the table the paper's way:\n\
         • vecadd: transfer dominates (high Δ) — SWGPU misses most of the runtime;\n\
         • reduce: transfer is a moderate share — SWGPU still underestimates;\n\
         • matmul: kernel dominates (low Δ) — the kernel-only view suffices here."
    );
    Ok(())
}
