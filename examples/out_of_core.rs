//! Out-of-core processing — the paper's future-work scenario: the data
//! does not fit in global memory `G`, so it is partitioned across rounds,
//! and different chunk sizes trade per-round overheads (`α`, `σ`) against
//! device-memory footprint.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```

use atgpu::algos::ooc::{OocReduce, OocScheme, OocVecAdd};
use atgpu::algos::{verify_on_sim, Workload};
use atgpu::analyze::analyze_program;
use atgpu::model::cost::{evaluate, CostModel};
use atgpu::model::{AtgpuMachine, GpuSpec};
use atgpu::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A device with only 16 Ki words of global memory.
    let machine = AtgpuMachine::new(1 << 18, 32, 12_288, 1 << 14)?;
    let spec = GpuSpec::gtx650_like();
    let params = spec.derived_cost_params();
    let n: u64 = 100_000; // 3n words needed; G holds ~5% of that

    println!("machine: {machine}  (problem needs {} words)", 3 * n);
    println!("\nchunk-size sweep for out-of-core vector addition:");
    println!("{:>8} {:>8} {:>14} {:>14}", "chunk", "rounds", "predicted ms", "observed ms");
    for chunk in [512u64, 1024, 2048, 4096] {
        let w = OocVecAdd::new(n, chunk, 7);
        let built = w.build(&machine)?;
        let metrics = analyze_program(&built.program, &machine)?.metrics();
        let cost = evaluate(CostModel::GpuCost, &params, &machine, &spec, &metrics)?;
        let report = verify_on_sim(&w, &machine, &spec, &SimConfig::default())?;
        println!(
            "{:>8} {:>8} {:>14.3} {:>14.3}",
            chunk,
            w.rounds(),
            cost.total(),
            report.total_ms()
        );
    }
    println!(
        "small chunks multiply the fixed per-round costs (α per transaction, σ per\n\
         round) — the trade-off the ATGPU cost function quantifies and transfer-blind\n\
         models cannot see."
    );

    println!("\nreduction finishing schemes (n = 65536, chunk = 4096):");
    for (scheme, label) in
        [(OocScheme::HostFinish, "host-finish  "), (OocScheme::DeviceFinish, "device-finish")]
    {
        let w = OocReduce::new(65_536, 4096, scheme, 3);
        let built = w.build(&machine)?;
        let metrics = analyze_program(&built.program, &machine)?.metrics();
        let outward: u64 = metrics.rounds.iter().map(|r| r.outward_words).sum();
        let report = verify_on_sim(&w, &machine, &spec, &SimConfig::default())?;
        println!(
            "  {label}: R = {:2}, outward = {:4} words, total = {:.3} ms",
            metrics.num_rounds(),
            outward,
            report.total_ms()
        );
    }
    println!("— two correct algorithms with different host–device communication\n  requirements, distinguishable only by a model that prices transfer.");
    Ok(())
}
