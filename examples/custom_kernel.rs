//! Designing your own kernel against the ATGPU model: write IR with the
//! paper's pseudocode operators, print it as pseudocode, analyse it, and
//! run it on the simulated device.
//!
//! The kernel computes `out[i] = 3·x[i]² + 1` — a tiny polynomial map.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use atgpu::analyze::analyze_program;
use atgpu::ir::{pretty, AddrExpr, AluOp, KernelBuilder, Operand, ProgramBuilder};
use atgpu::model::cost::{evaluate, CostModel};
use atgpu::model::{AtgpuMachine, GpuSpec};
use atgpu::sim::{run_program, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = AtgpuMachine::gtx650_like();
    let spec = GpuSpec::gtx650_like();
    let b = machine.b as i64;

    let n: u64 = 4096;
    let k = machine.blocks_for(n);

    // Host program: out W poly(x W X).
    let mut pb = ProgramBuilder::new("poly");
    let hx = pb.host_input("X", n);
    let hout = pb.host_output("Out", n);
    let dx = pb.device_alloc("x", n);
    let dout = pb.device_alloc("out", n);

    // The kernel, in the paper's notation:
    //   _x[j] ⇐ x[i·b + j]        (stage the operand)
    //   r0 ← _x[j]; r0 ← r0·r0; r0 ← r0·3; r0 ← r0+1
    //   _o[j] ← r0
    //   out[i·b + j] ⇐ _o[j]      (stage the result back)
    let mut kb = KernelBuilder::new("poly_kernel", k, 2 * machine.b);
    let g = AddrExpr::block() * b + AddrExpr::lane();
    kb.glb_to_shr(AddrExpr::lane(), dx, g.clone());
    kb.ld_shr(0, AddrExpr::lane());
    kb.alu(AluOp::Mul, 0, Operand::Reg(0), Operand::Reg(0));
    kb.alu(AluOp::Mul, 0, Operand::Reg(0), Operand::Imm(3));
    kb.alu(AluOp::Add, 0, Operand::Reg(0), Operand::Imm(1));
    kb.st_shr(AddrExpr::lane() + b, Operand::Reg(0));
    kb.shr_to_glb(dout, g, AddrExpr::lane() + b);

    pb.begin_round();
    pb.transfer_in(hx, dx, n);
    pb.launch(kb.build());
    pb.transfer_out(dout, hout, n);
    let program = pb.build()?;

    // The program, rendered back as the paper's pseudocode.
    println!("{}", pretty::render_program(&program));

    // Static analysis: every model metric, from the same IR.
    let analysis = analyze_program(&program, &machine)?;
    let metrics = analysis.metrics();
    println!(
        "t = {} ops, q = {} transactions, shared = {} words, Σ(I+O) = {} words",
        metrics.total_time_ops(),
        metrics.total_io_blocks(),
        metrics.peak_shared_words(),
        metrics.total_transfer_words()
    );
    println!(
        "coalescing exact: {};  statically bank-conflict-free: {}",
        analysis.io_exact, analysis.conflict_free
    );

    let cost =
        evaluate(CostModel::GpuCost, &spec.derived_cost_params(), &machine, &spec, &metrics)?;
    println!(
        "predicted GPU-cost: {:.4} ms (ΔT = {:.1}%)",
        cost.total(),
        100.0 * cost.transfer_proportion()
    );

    // Run it.
    let xs: Vec<i64> = (0..n as i64).map(|v| v % 100).collect();
    let report = run_program(&program, vec![xs.clone()], &machine, &spec, &SimConfig::default())?;
    let out = report.output(hout);
    for (i, (&x, &o)) in xs.iter().zip(out).enumerate() {
        assert_eq!(o, 3 * x * x + 1, "mismatch at {i}");
    }
    println!(
        "simulated: {:.4} ms total, {:.4} ms kernel — all {} results verified",
        report.total_ms(),
        report.kernel_ms(),
        n
    );
    Ok(())
}
