//! Calibrating the cost model against a device, the way Boyer et al.
//! fitted their transfer function on real hardware: run microbenchmarks,
//! regress, and check the fitted parameters predict a real workload.
//!
//! ```sh
//! cargo run --release --example calibrate_device
//! ```

use atgpu::algos::vecadd::VecAdd;
use atgpu::algos::Workload;
use atgpu::analyze::analyze_program;
use atgpu::calibrate::calibrate;
use atgpu::model::cost::{evaluate, CostModel};
use atgpu::model::{AtgpuMachine, GpuSpec};
use atgpu::sim::{run_program, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = AtgpuMachine::gtx650_like();
    let sim = SimConfig::default();

    for (name, spec) in [
        ("gtx650-like ", GpuSpec::gtx650_like()),
        ("midrange-like", GpuSpec::midrange_like()),
        ("highend-like ", GpuSpec::highend_like()),
    ] {
        let cal = calibrate(&machine, &spec, &sim)?;
        println!("{name}: fitted parameters");
        println!("  α = {:.6} ms      (truth {:.6})", cal.alpha_ms, spec.xfer_alpha_ms);
        println!(
            "  β = {:.3e} ms/word (truth {:.3e})",
            cal.beta_ms_per_word, spec.xfer_beta_ms_per_word
        );
        println!("  σ = {:.6} ms      (truth {:.6})", cal.sigma_ms, spec.sync_ms);
        println!(
            "  γ = {:.3e} c/ms    (truth {:.3e})",
            cal.gamma_cycles_per_ms, spec.clock_cycles_per_ms
        );
        println!(
            "  λ = {:.1} cycles/txn effective ({} issue), {:.1} exposed ({} latency)",
            cal.lambda_cycles,
            spec.dram_issue_cycles,
            cal.lambda_exposed_cycles,
            spec.dram_latency_cycles
        );

        // Validate: predict a vecadd run with the *fitted* parameters.
        let w = VecAdd::new(500_000, 1);
        let built = w.build(&machine)?;
        let metrics = analyze_program(&built.program, &machine)?.metrics();
        let params = cal.to_cost_params();
        let cost = evaluate(CostModel::GpuCost, &params, &machine, &spec, &metrics)?;
        let report = run_program(&built.program, built.inputs, &machine, &spec, &sim)?;
        let err = (cost.total() - report.total_ms()).abs() / report.total_ms();
        println!(
            "  vecadd n=500k: predicted {:.3} ms vs observed {:.3} ms ({:.1}% error)\n",
            cost.total(),
            report.total_ms(),
            100.0 * err
        );
    }
    Ok(())
}
