//! A vendored, dependency-free stand-in for the subset of the `rand`
//! crate this workspace uses: `StdRng::seed_from_u64` plus
//! `Rng::gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! deterministic, and stable across platforms, which is all the workspace
//! needs (seeded, reproducible input generation and transfer jitter).
//! It is **not** the upstream `StdRng` stream; seeds produce different
//! sequences than crates.io `rand`, which is fine because nothing in this
//! repository depends on the exact stream, only on determinism.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform `u64` in `[0, bound)` by Lemire-style rejection (unbiased).
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand_core does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let w: u64 = r.gen_range(0u64..3);
            assert!(w < 3);
            let f: f64 = r.gen_range(0.5f64..=1.5);
            assert!((0.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn small_spans_hit_every_value() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[r.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
