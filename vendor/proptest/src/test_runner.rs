//! Test-runner support types: configuration, case errors and the
//! deterministic RNG strategies draw from.

use std::fmt;

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (distinct from a panic so `prop_assert!` can
/// carry a message through the runner).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// Alias matching upstream's `TestCaseError::Reject` usage loosely.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator behind every strategy (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name, so each test has a stable,
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seeds the generator from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}
