//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case; `recurse`
    /// receives a strategy for the nested value.  At each of `depth`
    /// levels the generator picks leaves with positive probability, so
    /// trees stay small; `_desired_size`/`_expected_branch_size` are
    /// accepted for upstream signature compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![(1, leaf.clone()), (2, recurse(cur).boxed())]).boxed();
        }
        cur
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between same-valued strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires positive total weight");
        Self { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut x = rng.below(self.total);
        for (w, s) in &self.arms {
            if x < u64::from(*w) {
                return s.generate(rng);
            }
            x -= u64::from(*w);
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let w = (0u8..=3).generate(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::prop_oneof![
            2 => (0i64..10).prop_map(|v| v * 2),
            1 => Just(-1i64),
        ];
        let mut saw_neg = false;
        let mut saw_even = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                -1 => saw_neg = true,
                v => {
                    assert!(v % 2 == 0 && (0..20).contains(&v));
                    saw_even = true;
                }
            }
        }
        assert!(saw_neg && saw_even);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum T {
            Leaf(i64),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0i64..4).prop_map(T::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }
}
