//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as i128
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
