//! A vendored, dependency-free stand-in for the subset of `proptest`
//! this workspace uses.
//!
//! Provides the `proptest!` test macro, `prop_assert*`, `prop_oneof!`,
//! range/tuple/`Just`/`any` strategies, `prop_map`/`prop_recursive`
//! combinators and `prop::collection::vec` — enough to run every property
//! test in the repository deterministically.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and message; cases are reproducible because each test's
//! RNG is seeded from the test name) and no persistence files.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __a
        );
    }};
}

/// Weighted or unweighted choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!("proptest `{}` case {}/{} failed: {}",
                        stringify!($name), __case + 1, __config.cases, __e);
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}
