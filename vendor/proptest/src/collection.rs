//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy producing `Vec`s of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_range() {
        let s = vec(0i64..10, 2..5);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }
}
