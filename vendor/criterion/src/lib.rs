//! A vendored, dependency-free stand-in for the subset of `criterion`
//! this workspace uses: `Criterion`, benchmark groups, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm-up call, then timed
//! iterations until the per-benchmark time budget or sample count is
//! reached — and reports mean wall-clock time per iteration.  Set
//! `ATGPU_BENCH_FAST=1` to run each benchmark exactly once (CI smoke
//! mode).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

fn fast_mode() -> bool {
    std::env::var_os("ATGPU_BENCH_FAST").is_some_and(|v| v != "0")
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_budget: Duration,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_budget: Duration::from_millis(500), default_samples: 20 }
    }
}

impl Criterion {
    /// Starts a named group whose settings apply to its benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.default_budget,
            samples: self.default_samples,
            _criterion: self,
        }
    }

    /// Runs one benchmark with default settings.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.default_budget, self.default_samples, f);
        self
    }
}

/// A group of benchmarks sharing sample/time settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.budget, self.samples, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, storing the mean time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if fast_mode() {
            let t = Instant::now();
            black_box(routine());
            self.mean_ns = t.elapsed().as_nanos() as f64;
            self.iters = 1;
            return;
        }
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.samples as u64 && start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = total.as_nanos() as f64 / self.iters as f64;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, samples: usize, mut f: F) {
    let mut b = Bencher { budget, samples, mean_ns: 0.0, iters: 0 };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("bench {name:<40} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// Declares a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
