//! Model-validation tests: the paper's qualitative claims, checked
//! quantitatively against the simulated device at reduced scale.

use atgpu::algos::{
    matmul::MatMul,
    reduce::{Reduce, ReduceVariant},
    vecadd::VecAdd,
    verify_on_sim, Workload,
};
use atgpu::analyze::analyze_program;
use atgpu::model::asymptotics::BigO;
use atgpu::model::cost::{evaluate, CostModel};
use atgpu::model::{occupancy, AtgpuMachine, GpuSpec};
use atgpu::sim::SimConfig;

fn machine() -> AtgpuMachine {
    AtgpuMachine::gtx650_like()
}

fn spec() -> GpuSpec {
    GpuSpec::gtx650_like()
}

/// Min–max normalise a curve (the paper's 0→1 device for comparing
/// growth trends).
fn normalize(ys: &[f64]) -> Vec<f64> {
    let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    ys.iter().map(|y| if hi > lo { (y - lo) / (hi - lo) } else { 0.0 }).collect()
}

/// Mean absolute gap between two normalised curves.
fn curve_gap(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// The paper's Figure 3c argument, made quantitative: the *normalised*
/// ATGPU cost curve is closer to the normalised observed total than the
/// SWGPU curve is, for vector addition.
#[test]
fn atgpu_tracks_vecadd_total_better_than_swgpu() {
    let m = machine();
    let s = spec();
    let params = s.derived_cost_params();
    let mut atgpu = Vec::new();
    let mut swgpu = Vec::new();
    let mut total = Vec::new();
    for i in 1..=6u64 {
        let n = i * 50_000;
        let w = VecAdd::new(n, i);
        let built = w.build(&m).unwrap();
        let metrics = analyze_program(&built.program, &m).unwrap().metrics();
        atgpu.push(evaluate(CostModel::GpuCost, &params, &m, &s, &metrics).unwrap().total());
        swgpu.push(evaluate(CostModel::Swgpu, &params, &m, &s, &metrics).unwrap().total());
        let report = verify_on_sim(&w, &m, &s, &SimConfig::default()).unwrap();
        total.push(report.total_ms());
    }
    let (na, ns, nt) = (normalize(&atgpu), normalize(&swgpu), normalize(&total));
    let gap_atgpu = curve_gap(&na, &nt);
    let gap_swgpu = curve_gap(&ns, &nt);
    // Both vecadd cost curves are nearly linear in n, so min–max
    // normalisation flattens the distinction (both gaps are tiny); the
    // decisive comparison is the absolute prediction below.
    assert!(gap_atgpu <= gap_swgpu + 0.05, "{gap_atgpu} vs {gap_swgpu}");
    let last = atgpu.len() - 1;
    let abs_err_atgpu = (atgpu[last] - total[last]).abs() / total[last];
    let abs_err_swgpu = (swgpu[last] - total[last]).abs() / total[last];
    assert!(abs_err_atgpu < 0.15, "ATGPU should predict the total within 15%, got {abs_err_atgpu}");
    assert!(
        abs_err_swgpu > 0.5,
        "SWGPU (transfer-blind) should miss most of the total, got {abs_err_swgpu}"
    );
}

/// The SWGPU baseline captures most of the matmul runtime (paper: 89%)
/// but only a small fraction of the vecadd runtime (paper: 16%).
#[test]
fn swgpu_capture_ordering() {
    let m = machine();
    let s = spec();
    let cfg = SimConfig::default();
    let va = verify_on_sim(&VecAdd::new(500_000, 1), &m, &s, &cfg).unwrap();
    let mm = verify_on_sim(&MatMul::new(256, 2), &m, &s, &cfg).unwrap();
    let capture_va = va.kernel_ms() / va.total_ms();
    let capture_mm = mm.kernel_ms() / mm.total_ms();
    assert!(capture_va < 0.35, "vecadd kernel share {capture_va} should be small");
    assert!(capture_mm > 0.6, "matmul kernel share {capture_mm} should dominate");
}

/// Occupancy staircase: the observed kernel time is non-increasing as
/// the hardware residency limit H grows (more latency hiding), matching
/// the model's wave factor direction.
#[test]
fn occupancy_improves_kernel_time() {
    let m = machine();
    let w = VecAdd::new(200_000, 1);
    let mut prev = f64::INFINITY;
    for h in [1u64, 2, 4, 16] {
        let s = GpuSpec { h_limit: h, ..spec() };
        let report = verify_on_sim(&w, &m, &s, &SimConfig::default()).unwrap();
        let k = report.kernel_ms();
        assert!(
            k <= prev * 1.02,
            "kernel time should not grow with H: H={h} gave {k} after {prev}"
        );
        prev = k;
    }
    // ℓ follows the model formula.
    assert_eq!(occupancy(&m, 96, 1), 1);
    assert_eq!(occupancy(&m, 96, 16), 16);
}

/// Paper bounds: the analyser's exact counts stay within a constant of
/// every stated asymptotic bound as n grows.
#[test]
fn stated_bounds_hold_for_paper_workloads() {
    let m = machine();
    let check = |mk: &dyn Fn(u64) -> Box<dyn Workload>, ns: &[u64]| {
        let w0 = mk(ns[0]);
        let bounds = w0.bounds(&m);
        for bound in &bounds {
            let mut samples = Vec::new();
            for &n in ns {
                let w = mk(n);
                let built = w.build(&m).unwrap();
                let metrics = analyze_program(&built.program, &m).unwrap().metrics();
                let observed = match bound.quantity {
                    "rounds" => metrics.num_rounds() as f64,
                    "time" => metrics.total_time_ops() as f64,
                    "io" => metrics.total_io_blocks() as f64,
                    "global_space" => metrics.peak_global_words() as f64,
                    "shared_space" => metrics.peak_shared_words() as f64,
                    "transfer" => metrics.total_transfer_words() as f64,
                    _ => continue,
                };
                samples.push((n as f64, observed));
            }
            let c = BigO::fitted_constant(bound, &samples, m.b as f64)
                .unwrap_or_else(|| panic!("degenerate bound {bound}"));
            assert!(c < 64.0, "{}: constant {c} too large for {bound}", w0.name());
        }
    };
    check(&|n| Box::new(VecAdd::new(n, 1)), &[1 << 12, 1 << 14, 1 << 16]);
    check(&|n| Box::new(Reduce::new(n, 1)), &[1 << 12, 1 << 14, 1 << 16]);
    check(&|n| Box::new(MatMul::new(n, 1)), &[64, 128, 256]);
}

/// The divergent interleaved-modulo kernel is measurably slower than the
/// sequential-addressing refinement on the simulator — Harris's
/// optimisation step, observable in our substrate.
#[test]
fn reduction_variants_rank_correctly() {
    let m = machine();
    let s = spec();
    let cfg = SimConfig::default();
    let n = 1 << 18;
    let slow =
        verify_on_sim(&Reduce::with_variant(n, 1, ReduceVariant::InterleavedModulo), &m, &s, &cfg)
            .unwrap();
    let fast = verify_on_sim(
        &Reduce::with_variant(n, 1, ReduceVariant::SequentialAddressing),
        &m,
        &s,
        &cfg,
    )
    .unwrap();
    assert!(
        slow.kernel_ms() > fast.kernel_ms() * 1.2,
        "interleaved {} should clearly exceed sequential {}",
        slow.kernel_ms(),
        fast.kernel_ms()
    );
}

/// ΔT tracks ΔE across all three paper workloads at moderate sizes —
/// the Figure 6 claim.
#[test]
fn predicted_deltas_track_observed() {
    let m = machine();
    let s = spec();
    let params = s.derived_cost_params();
    let cases: Vec<(Box<dyn Workload>, f64)> = vec![
        (Box::new(VecAdd::new(500_000, 1)), 0.05),
        (Box::new(Reduce::new(1 << 19, 2)), 0.25),
        (Box::new(MatMul::new(256, 3)), 0.25),
    ];
    for (w, budget) in cases {
        let built = w.build(&m).unwrap();
        let metrics = analyze_program(&built.program, &m).unwrap().metrics();
        let cost = evaluate(CostModel::GpuCost, &params, &m, &s, &metrics).unwrap();
        let report = verify_on_sim(w.as_ref(), &m, &s, &SimConfig::default()).unwrap();
        let gap = (cost.transfer_proportion() - report.transfer_proportion()).abs();
        assert!(gap < budget, "{}: |ΔT−ΔE| = {gap} over budget {budget}", w.name());
    }
}
