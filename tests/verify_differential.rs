//! Static-vs-dynamic agreement: the verifier's race verdicts against
//! the simulator.
//!
//! The static race check ([`atgpu::verify`]) and the simulator's
//! dynamic write-log race detector (`SimConfig::detect_races`) decide
//! the *same* predicate — two distinct thread blocks writing one global
//! word — by entirely different means (bounded Diophantine solving vs
//! an execution's write log).  Over a family of random strided copy
//! kernels and random contiguous shard plans this suite pins their
//! agreement:
//!
//! * a **proven `RaceFree`** kernel runs clean under dynamic detection,
//!   and its plain and sharded executions produce bit-identical
//!   outputs whatever the shard plan;
//! * a **proven `Racy`** kernel is flagged by dynamic detection too —
//!   the static witness corresponds to a real collision;
//! * for this affine family the verifier is *decisive*: stride < warp
//!   width is proven racy, stride ≥ warp width proven race-free, never
//!   `Unknown`.

use atgpu::algos::workload::{test_machine, test_spec};
use atgpu::ir::{AddrExpr, KernelBuilder, Program, ProgramBuilder, Shard};
use atgpu::model::ClusterSpec;
use atgpu::sim::{run_cluster_program, SimConfig, SimError};
use atgpu::verify::{verify_program, RaceVerdict, Unsoundness};
use proptest::prelude::*;

/// The strided copy kernel: block `i` reads its input slice and writes
/// `b` words at `i·stride + lane + base`.  Distinct blocks collide iff
/// `stride < b` (for a grid of at least two blocks).
fn strided_kernel(
    blocks: u64,
    b: u64,
    stride: i64,
    base: i64,
    da: atgpu::ir::DBuf,
    dc: atgpu::ir::DBuf,
) -> atgpu::ir::Kernel {
    let mut kb = KernelBuilder::new("strided_copy", blocks, b);
    kb.glb_to_shr(AddrExpr::lane(), da, AddrExpr::block() * (b as i64) + AddrExpr::lane());
    kb.shr_to_glb(dc, AddrExpr::block() * stride + AddrExpr::lane() + base, AddrExpr::lane());
    kb.build()
}

/// Output words the grid can touch (the last block's last lane).
fn out_words(blocks: u64, b: u64, stride: i64, base: i64) -> u64 {
    ((blocks as i64 - 1) * stride + base + b as i64) as u64
}

/// The plain-launch program: full upload, one launch, full download.
fn plain_program(blocks: u64, b: u64, stride: i64, base: i64) -> Program {
    let n_in = blocks * b;
    let n_out = out_words(blocks, b, stride, base);
    let mut pb = ProgramBuilder::new("plain");
    let ha = pb.host_input("A", n_in);
    let hc = pb.host_output("C", n_out);
    let da = pb.device_alloc("a", n_in);
    let dc = pb.device_alloc("c", n_out);
    pb.begin_round();
    pb.transfer_in(ha, da, n_in);
    pb.launch(strided_kernel(blocks, b, stride, base, da, dc));
    pb.transfer_out(dc, hc, n_out);
    pb.build().expect("plain program builds")
}

/// The same kernel sharded under `plan`: each device uploads the full
/// input replica, executes its block range, and downloads exactly the
/// word range its blocks wrote (disjoint when `stride ≥ b`).
fn sharded_program(blocks: u64, b: u64, stride: i64, base: i64, plan: &[Shard]) -> Program {
    let n_in = blocks * b;
    let n_out = out_words(blocks, b, stride, base);
    let mut pb = ProgramBuilder::new("sharded");
    let ha = pb.host_input("A", n_in);
    let hc = pb.host_output("C", n_out);
    let da = pb.device_alloc("a", n_in);
    let dc = pb.device_alloc("c", n_out);
    pb.begin_round();
    for s in plan {
        pb.transfer_in_to(s.device, ha, 0, da, 0, n_in);
    }
    pb.launch_sharded(strided_kernel(blocks, b, stride, base, da, dc), plan.to_vec());
    for s in plan {
        let lo = (s.start as i64 * stride + base) as u64;
        let hi = ((s.end as i64 - 1) * stride + base + b as i64) as u64;
        pb.transfer_out_from(s.device, dc, lo, hc, lo, hi - lo);
    }
    pb.build().expect("sharded program builds")
}

/// Contiguous shard plan from sorted interior cut points, devices
/// assigned round-robin.
fn plan_from_cuts(blocks: u64, cuts: &[u64], devices: u32) -> Vec<Shard> {
    let mut edges: Vec<u64> = vec![0];
    let mut interior: Vec<u64> = cuts.iter().map(|c| 1 + c % (blocks - 1).max(1)).collect();
    interior.sort_unstable();
    interior.dedup();
    edges.extend(interior.into_iter().filter(|&c| c < blocks));
    edges.push(blocks);
    edges
        .windows(2)
        .enumerate()
        .map(|(i, w)| Shard { device: i as u32 % devices, start: w[0], end: w[1] })
        .collect()
}

fn random_input(n: u64, seed: u64) -> Vec<i64> {
    // Splitmix-style scramble: block-distinct values so a collision's
    // merge order would be observable.
    (0..n)
        .map(|i| {
            let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            (z >> 16) as i64
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 64 random kernels × random shard plans: the static verdict is
    /// decisive and agrees with the dynamic detector, and proven
    /// race-free kernels are bit-identical under any shard plan.
    #[test]
    fn static_and_dynamic_race_verdicts_agree(
        blocks in 2u64..10,
        stride in 1i64..48,
        base in 0i64..4,
        devices in 1u32..4,
        cuts in proptest::collection::vec(0u64..64, 0..3),
    ) {
        let machine = test_machine();
        let b = machine.b;
        let program = plain_program(blocks, b, stride, base);
        let report = verify_program(&program, b);
        prop_assert!(report.launches.len() == 1);

        // Decisive static verdict for this affine family.
        let racy = stride < b as i64;
        match &report.launches[0].race {
            RaceVerdict::Racy(w) => {
                prop_assert!(racy, "stride {} >= {} proven racy?", stride, b);
                // The witness is a real collision: distinct blocks,
                // same word.
                prop_assert!(w.a.1 != w.b.1);
            }
            RaceVerdict::RaceFree => prop_assert!(!racy, "stride {} < {} proven free?", stride, b),
            RaceVerdict::Unknown => prop_assert!(false, "static check must be decisive here"),
        }
        prop_assert_eq!(report.is_sound(), !racy);

        // Dynamic agreement: the write-log detector sees the same
        // verdict on a real execution.
        let inputs = vec![random_input(blocks * b, stride as u64 | 1)];
        let solo = ClusterSpec::homogeneous(1, test_spec());
        let detect = SimConfig { detect_races: true, ..SimConfig::default() };
        let dynamic = run_cluster_program(&program, inputs.clone(), &machine, &solo, &detect);
        match dynamic {
            Ok(_) => prop_assert!(!racy, "dynamic detector missed a proven race"),
            Err(SimError::RaceDetected { .. }) => {
                prop_assert!(racy, "dynamic race on a proven race-free kernel")
            }
            Err(e) => prop_assert!(false, "unexpected sim error: {}", e),
        }

        // Proven race-free ⇒ sharded output bit-identical to plain,
        // whatever the plan — the guarantee the verifier exists to
        // certify statically.
        if !racy {
            let plan = plan_from_cuts(blocks, &cuts, devices);
            let sharded = sharded_program(blocks, b, stride, base, &plan);
            let sharded_report = verify_program(&sharded, b);
            prop_assert!(sharded_report.is_sound());
            prop_assert!(sharded_report.all_race_free());

            let cluster = ClusterSpec::homogeneous(devices as usize, test_spec());
            let cfg = SimConfig { detect_races: true, ..SimConfig::default() };
            let plain_run = run_cluster_program(&program, inputs.clone(), &machine, &solo, &cfg)
                .expect("plain run");
            let sharded_run = run_cluster_program(&sharded, inputs, &machine, &cluster, &cfg)
                .expect("sharded run");
            let hc = atgpu::ir::HBuf(1);
            prop_assert_eq!(plain_run.output(hc), sharded_run.output(hc));
        }
    }
}

#[test]
fn seeded_racy_kernel_flagged_by_both_detectors() {
    let machine = test_machine();
    let b = machine.b;
    // Stride 16 < b: blocks k and k+1 collide on 16 words.
    let program = plain_program(4, b, 16, 0);
    let report = verify_program(&program, b);
    let why = report.first_unsoundness().expect("proven racy");
    match &why {
        Unsoundness::Racy { round: 0, kernel, witness } => {
            assert_eq!(kernel, "strided_copy");
            assert_ne!(witness.a.1, witness.b.1, "distinct blocks");
        }
        other => panic!("expected Racy, got {other:?}"),
    }
    assert!(why.to_string().contains("strided_copy@instr#1"), "{why}");

    let solo = ClusterSpec::homogeneous(1, test_spec());
    let detect = SimConfig { detect_races: true, ..SimConfig::default() };
    let inputs = vec![random_input(4 * b, 7)];
    match run_cluster_program(&program, inputs, &machine, &solo, &detect) {
        Err(SimError::RaceDetected { kernel, .. }) => assert_eq!(kernel, "strided_copy"),
        other => panic!("expected dynamic RaceDetected, got {other:?}"),
    }
}

#[test]
fn seeded_oob_kernel_rejected_with_witness() {
    let machine = test_machine();
    let b = machine.b;
    let n_in = 4 * b;
    // The output allocation holds one block's worth of words (its
    // padded slot is exactly b words), but all four blocks write at
    // block·b + lane: blocks 1..3 land past the slot.
    let mut pb = ProgramBuilder::new("oob");
    let ha = pb.host_input("A", n_in);
    let hc = pb.host_output("C", b);
    let da = pb.device_alloc("a", n_in);
    let dc = pb.device_alloc("c", b);
    pb.begin_round();
    pb.transfer_in(ha, da, n_in);
    pb.launch(strided_kernel(4, b, b as i64, 0, da, dc));
    pb.transfer_out(dc, hc, b);
    let program = pb.build().expect("builds — validation does not check access bounds");

    let report = verify_program(&program, b);
    match report.first_unsoundness().expect("proven out of bounds") {
        Unsoundness::OutOfBounds { round: 0, instr, witness, .. } => {
            assert_eq!(instr, 1, "the write site");
            assert_eq!(witness.limit, b, "the padded slot");
            assert!(witness.addr >= b as i64, "escapes the slot: {}", witness.addr);
            assert_eq!(witness.block, (3, 0), "the extreme block");
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}
