//! Cross-crate integration tests: IR → analysis → cost model → simulator
//! → verification, spanning every workspace crate through the facade.

use atgpu::algos::{
    dot::Dot, histogram::Histogram, matmul::MatMul, ooc::OocVecAdd, reduce::Reduce, saxpy::Saxpy,
    scan::Scan, stencil::Stencil, transpose::Transpose, transpose::TransposeVariant,
    vecadd::VecAdd, verify_on_sim, Workload,
};
use atgpu::analyze::analyze_program;
use atgpu::ir::pretty;
use atgpu::model::cost::{evaluate, CostModel};
use atgpu::model::{AtgpuMachine, GpuSpec};
use atgpu::sim::{ExecMode, SimConfig};

fn machine() -> AtgpuMachine {
    AtgpuMachine::gtx650_like()
}

fn spec() -> GpuSpec {
    GpuSpec { k_prime: 2, h_limit: 8, ..GpuSpec::gtx650_like() }
}

/// Every workload in the library builds, analyses, simulates and
/// verifies on the standard machine.
#[test]
fn whole_library_verifies_end_to_end() {
    let m = machine();
    let s = spec();
    let cfg = SimConfig::default();
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VecAdd::new(5000, 1)),
        Box::new(Saxpy::new(5000, 3, 2)),
        Box::new(Reduce::new(5000, 3)),
        Box::new(Dot::new(5000, 4)),
        Box::new(Scan::new(5000, 5)),
        Box::new(Stencil::new(5000, 6)),
        Box::new(MatMul::new(64, 7)),
        Box::new(Transpose::new(64, 8, TransposeVariant::Tiled)),
        Box::new(Histogram::new(5000, 32, 9)),
        Box::new(OocVecAdd::new(5000, 1024, 10)),
    ];
    for w in &workloads {
        let report =
            verify_on_sim(w.as_ref(), &m, &s, &cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        assert!(report.total_ms() > 0.0, "{}", w.name());
    }
}

/// The cost pipeline runs for every workload and the ATGPU cost always
/// exceeds the SWGPU baseline by exactly the transfer cost.
#[test]
fn atgpu_minus_swgpu_is_transfer_for_all_workloads() {
    let m = machine();
    let s = spec();
    let params = s.derived_cost_params();
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VecAdd::new(4096, 1)),
        Box::new(Reduce::new(4096, 2)),
        Box::new(MatMul::new(96, 3)),
        Box::new(Scan::new(4096, 4)),
        Box::new(Stencil::new(4096, 5)),
    ];
    for w in &workloads {
        let built = w.build(&m).unwrap();
        let metrics = analyze_program(&built.program, &m).unwrap().metrics();
        let atgpu = evaluate(CostModel::GpuCost, &params, &m, &s, &metrics).unwrap();
        let swgpu = evaluate(CostModel::Swgpu, &params, &m, &s, &metrics).unwrap();
        let diff = atgpu.total() - swgpu.total();
        assert!(
            (diff - atgpu.transfer()).abs() < 1e-9,
            "{}: diff {diff} vs transfer {}",
            w.name(),
            atgpu.transfer()
        );
    }
}

/// Sequential and parallel device simulation produce identical outputs
/// and closely matching timing for the paper workloads.
#[test]
fn parallel_and_sequential_agree_across_workloads() {
    let m = machine();
    let s = spec();
    let seq = SimConfig::default();
    let par = SimConfig { mode: ExecMode::Parallel { threads: 2 }, ..SimConfig::default() };
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VecAdd::new(10_000, 1)),
        Box::new(Reduce::new(10_000, 2)),
        Box::new(MatMul::new(96, 3)),
    ];
    for w in &workloads {
        let r1 = verify_on_sim(w.as_ref(), &m, &s, &seq).unwrap();
        let r2 = verify_on_sim(w.as_ref(), &m, &s, &par).unwrap();
        let k1 = r1.kernel_ms();
        let k2 = r2.kernel_ms();
        let ratio = k2 / k1;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{}: parallel/sequential kernel ratio {ratio}",
            w.name()
        );
    }
}

/// The perfect-GPU cost (Expression 1) never exceeds the GPU-cost
/// (Expression 2) — the wave factor only stretches time.
#[test]
fn perfect_cost_bounded_by_gpu_cost() {
    let m = machine();
    let s = spec();
    let params = s.derived_cost_params();
    for n in [1000u64, 10_000, 100_000] {
        let w = VecAdd::new(n, 1);
        let built = w.build(&m).unwrap();
        let metrics = analyze_program(&built.program, &m).unwrap().metrics();
        let perfect = evaluate(CostModel::PerfectGpu, &params, &m, &s, &metrics).unwrap();
        let gpu = evaluate(CostModel::GpuCost, &params, &m, &s, &metrics).unwrap();
        assert!(perfect.total() <= gpu.total() + 1e-12);
    }
}

/// Pseudocode rendering round-trips the paper's notation for a real
/// multi-round program.
#[test]
fn pseudocode_renders_paper_notation() {
    let m = machine();
    let w = Reduce::new(5000, 1);
    let built = w.build(&m).unwrap();
    let text = pretty::render_program(&built.program);
    assert!(text.contains("a W A"), "inward transfer missing:\n{text}");
    assert!(text.contains('⇐'), "global-shared operator missing");
    assert!(text.contains("for all mpρ ∈ MP"), "wrapper loop missing");
    assert!(text.contains("Round 1"), "round labels missing");
    assert!(text.contains("Ans W"), "outward transfer missing:\n{text}");
}

/// The paper's headline ordering: transfer share decreases from vector
/// addition to reduction to matrix multiplication.
#[test]
fn transfer_share_ordering_matches_paper() {
    let m = machine();
    let s = GpuSpec::gtx650_like();
    let cfg = SimConfig::default();
    let va = verify_on_sim(&VecAdd::new(500_000, 1), &m, &s, &cfg).unwrap();
    let red = verify_on_sim(&Reduce::new(500_000, 2), &m, &s, &cfg).unwrap();
    let mm = verify_on_sim(&MatMul::new(256, 3), &m, &s, &cfg).unwrap();
    let (d_va, d_red, d_mm) =
        (va.transfer_proportion(), red.transfer_proportion(), mm.transfer_proportion());
    assert!(d_va > d_red, "vecadd ΔE {d_va} ≤ reduce ΔE {d_red}");
    assert!(d_red > d_mm, "reduce ΔE {d_red} ≤ matmul ΔE {d_mm}");
    // And the vecadd share lands near the paper's 84%.
    assert!((0.7..0.95).contains(&d_va), "vecadd ΔE {d_va} far from paper's 0.84");
}

/// Analyser metrics equal the simulator's transaction counts for
/// statically-exact workloads — the two views of the same IR agree.
#[test]
fn analyzer_io_matches_simulator_io() {
    let m = machine();
    let s = spec();
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(VecAdd::new(10_000, 1)),
        Box::new(MatMul::new(96, 2)),
        Box::new(Transpose::new(96, 3, TransposeVariant::Naive)),
        Box::new(Transpose::new(96, 4, TransposeVariant::Tiled)),
        Box::new(Stencil::new(10_000, 5)),
    ];
    for w in &workloads {
        let built = w.build(&m).unwrap();
        let analysis = analyze_program(&built.program, &m).unwrap();
        assert!(analysis.io_exact, "{} should be exactly analysable", w.name());
        let q_model = analysis.metrics().total_io_blocks();
        let report = verify_on_sim(w.as_ref(), &m, &s, &SimConfig::default()).unwrap();
        let q_sim: u64 = report.rounds.iter().map(|r| r.kernel_stats.global_txns).sum();
        assert_eq!(q_model, q_sim, "{}: q mismatch", w.name());
    }
}

/// Workloads too large for global memory fail cleanly in analysis and in
/// simulation, and the out-of-core variant succeeds on the same machine.
#[test]
fn oom_failure_and_out_of_core_recovery() {
    let small = AtgpuMachine::new(1 << 16, 32, 12_288, 4096).unwrap();
    let s = spec();
    let w = VecAdd::new(8192, 1);
    let built = w.build(&small).unwrap();
    assert!(analyze_program(&built.program, &small).is_err());
    assert!(verify_on_sim(&w, &small, &s, &SimConfig::default()).is_err());
    let ooc = OocVecAdd::new(8192, 1024, 1);
    verify_on_sim(&ooc, &small, &s, &SimConfig::default()).unwrap();
}

/// Race detection catches a deliberately racy kernel but passes all
/// library workloads.
#[test]
fn race_detection_is_quiet_on_library_workloads() {
    let m = machine();
    let s = spec();
    let cfg = SimConfig { detect_races: true, ..SimConfig::default() };
    for w in [&VecAdd::new(5000, 1) as &dyn Workload, &Scan::new(5000, 2), &Stencil::new(5000, 3)] {
        verify_on_sim(w, &m, &s, &cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
    }
}

/// Different seeds change the data but never the metrics (analysis is
/// data-independent for static workloads).
#[test]
fn metrics_are_data_independent() {
    let m = machine();
    let b1 = VecAdd::new(5000, 1).build(&m).unwrap();
    let b2 = VecAdd::new(5000, 999).build(&m).unwrap();
    assert_ne!(b1.inputs, b2.inputs);
    assert_eq!(
        analyze_program(&b1.program, &m).unwrap().metrics(),
        analyze_program(&b2.program, &m).unwrap().metrics()
    );
}
