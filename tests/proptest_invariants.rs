//! Property-based tests on the core invariants, spanning the IR, the
//! analyser, the cost model and the simulator.

use atgpu::algos::verify_on_sim;
use atgpu::algos::{reduce::Reduce, reduce::ReduceVariant, scan::Scan, vecadd::VecAdd};
use atgpu::analyze::coalesce::{lane_block_count, residue_histogram, site_transactions};
use atgpu::ir::affine::{lower, CompiledAddr};
use atgpu::ir::AddrExpr;
use atgpu::model::cost::{evaluate, CostModel};
use atgpu::model::{AlgoMetrics, AtgpuMachine, CostParams, GpuSpec, RoundMetrics};
use atgpu::sim::{ExecMode, SimConfig};
use proptest::prelude::*;

fn machine() -> AtgpuMachine {
    AtgpuMachine::gtx650_like()
}

fn spec() -> GpuSpec {
    GpuSpec { k_prime: 2, h_limit: 8, ..GpuSpec::gtx650_like() }
}

/// Strategy: random affine-ish address expression trees.
fn addr_expr() -> impl Strategy<Value = AddrExpr> {
    let leaf = prop_oneof![
        (-64i64..64).prop_map(AddrExpr::Const),
        Just(AddrExpr::Lane),
        Just(AddrExpr::Block),
        Just(AddrExpr::BlockY),
        (0u8..2).prop_map(AddrExpr::LoopVar),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| AddrExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| AddrExpr::Sub(Box::new(a), Box::new(b))),
            (inner, (-8i64..8))
                .prop_map(|(a, c)| AddrExpr::Mul(Box::new(a), Box::new(AddrExpr::Const(c)))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Affine lowering is semantics-preserving: the lowered record
    /// evaluates identically to the tree everywhere.
    #[test]
    fn lowering_preserves_semantics(
        e in addr_expr(),
        lane in 0i64..32,
        bx in 0i64..64,
        by in 0i64..64,
        i0 in 0u32..8,
        i1 in 0u32..8,
    ) {
        if let Some(a) = lower(&e) {
            let mut rr = |_| 0i64;
            let tree = e.eval(lane, (bx, by), &[i0, i1], &mut rr);
            let aff = a.eval(lane, (bx, by), &[i0, i1], |_| 0);
            prop_assert_eq!(tree, aff);
        }
    }

    /// A full warp's coalesced transaction count is always within
    /// `[1, b]` per instance.
    #[test]
    fn lane_block_count_bounds(base in -1000i64..1000, stride in -40i64..40) {
        let b = 32u64;
        let c = lane_block_count(base, stride, b, b);
        prop_assert!(c >= 1 && c <= b, "count {} out of [1, {}]", c, b);
    }

    /// Residue histograms conserve mass and stay within b buckets.
    #[test]
    fn residue_histogram_mass(count in 0u64..5000, coef in -100i64..100) {
        let b = 32u64;
        let h = residue_histogram(count, coef, b);
        prop_assert_eq!(h.len(), 32);
        prop_assert_eq!(h.iter().sum::<u64>(), count);
    }

    /// The residue-class coalescing analysis is exact: it matches
    /// brute-force enumeration for random affine sites.
    #[test]
    fn coalescing_matches_brute_force(
        lane_c in -4i64..5,
        block_c in 0i64..40,
        loop_c in -8i64..9,
        base in 0i64..64,
        gx in 1u64..12,
        gy in 1u64..3,
        trips in 0u32..5,
    ) {
        let b = 8u64;
        let e = AddrExpr::lane() * lane_c
            + AddrExpr::block() * block_c
            + AddrExpr::loop_var(0) * loop_c
            + base;
        let addr = CompiledAddr::compile(e.clone());
        let fast = site_transactions(&addr, 0, (gx, gy), &[trips], b);
        prop_assert!(fast.exact);
        // Brute force.
        let mut slow = 0u64;
        for by in 0..gy {
            for bx in 0..gx {
                for t in 0..trips {
                    let mut blocks: Vec<i64> = (0..b)
                        .map(|l| {
                            let mut rr = |_| 0i64;
                            e.eval(l as i64, (bx as i64, by as i64), &[t], &mut rr)
                                .div_euclid(b as i64)
                        })
                        .collect();
                    blocks.sort_unstable();
                    blocks.dedup();
                    slow += blocks.len() as u64;
                }
            }
        }
        prop_assert_eq!(fast.txns, slow);
    }

    /// GPU-cost dominates perfect cost for arbitrary valid metrics.
    #[test]
    fn gpu_cost_dominates_perfect(
        time in 0u64..10_000,
        io in 0u64..10_000,
        blocks in 1u64..100_000,
        inw in 0u64..1_000_000,
        outw in 0u64..1_000_000,
    ) {
        let m = machine();
        let s = spec();
        let params = s.derived_cost_params();
        let metrics = AlgoMetrics::new(vec![RoundMetrics {
            time,
            io_blocks: io,
            global_words: 1024,
            shared_words: 96,
            inward_words: inw,
            inward_txns: u64::from(inw > 0),
            outward_words: outw,
            outward_txns: u64::from(outw > 0),
            blocks_launched: blocks,
        }]);
        let p = evaluate(CostModel::PerfectGpu, &params, &m, &s, &metrics).unwrap();
        let g = evaluate(CostModel::GpuCost, &params, &m, &s, &metrics).unwrap();
        prop_assert!(g.total() >= p.total() - 1e-12);
        // Breakdown identity.
        prop_assert!((g.total()
            - (g.transfer_in + g.kernel + g.transfer_out + g.sync)).abs() < 1e-12);
        // Transfer proportion in range.
        let d = g.transfer_proportion();
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// Cost is monotone in every positive parameter.
    #[test]
    fn cost_monotone_in_params(scale in 1.1f64..4.0) {
        let m = machine();
        let s = spec();
        let metrics = AlgoMetrics::new(vec![RoundMetrics {
            time: 100,
            io_blocks: 50,
            global_words: 1024,
            shared_words: 96,
            inward_words: 1000,
            inward_txns: 1,
            outward_words: 500,
            outward_txns: 1,
            blocks_launched: 64,
        }]);
        let base = s.derived_cost_params();
        let c0 = evaluate(CostModel::GpuCost, &base, &m, &s, &metrics).unwrap().total();
        for bump in [
            CostParams { lambda: base.lambda * scale, ..base },
            CostParams { sigma: base.sigma * scale, ..base },
            CostParams { alpha: base.alpha * scale, ..base },
            CostParams { beta: base.beta * scale, ..base },
        ] {
            let c = evaluate(CostModel::GpuCost, &bump, &m, &s, &metrics).unwrap().total();
            prop_assert!(c >= c0);
        }
        // gamma is a rate: raising it lowers cost.
        let faster = CostParams { gamma: base.gamma * scale, ..base };
        let c = evaluate(CostModel::GpuCost, &faster, &m, &s, &metrics).unwrap().total();
        prop_assert!(c <= c0);
    }
}

proptest! {
    // Simulation-backed properties are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The simulated vector addition equals the host reference for
    /// arbitrary data and awkward sizes.
    #[test]
    fn sim_vecadd_matches_reference(
        n in 1usize..600,
        seed in 0u64..1000,
    ) {
        let w = VecAdd::new(n as u64, seed);
        verify_on_sim(&w, &machine(), &spec(), &SimConfig::default()).unwrap();
    }

    /// The simulated reduction sums arbitrary data exactly, in both
    /// kernel variants.
    #[test]
    fn sim_reduce_matches_reference(
        data in prop::collection::vec(-1000i64..1000, 1..800),
        interleaved in any::<bool>(),
    ) {
        let variant = if interleaved {
            ReduceVariant::InterleavedModulo
        } else {
            ReduceVariant::SequentialAddressing
        };
        let w = Reduce::from_data(data, variant);
        verify_on_sim(&w, &machine(), &spec(), &SimConfig::default()).unwrap();
    }

    /// The simulated scan is an exact prefix sum for arbitrary data.
    #[test]
    fn sim_scan_matches_reference(data in prop::collection::vec(-100i64..100, 1..500)) {
        let w = Scan::from_data(data);
        verify_on_sim(&w, &machine(), &spec(), &SimConfig::default()).unwrap();
    }

    /// Sequential and parallel execution agree functionally for random
    /// vector additions.
    #[test]
    fn parallel_equals_sequential(n in 32u64..2000, seed in 0u64..100) {
        let w = VecAdd::new(n, seed);
        let m = machine();
        let s = spec();
        let r1 = verify_on_sim(&w, &m, &s, &SimConfig::default()).unwrap();
        let cfg = SimConfig { mode: ExecMode::Parallel { threads: 2 }, ..SimConfig::default() };
        let r2 = verify_on_sim(&w, &m, &s, &cfg).unwrap();
        prop_assert_eq!(r1.output(atgpu::ir::HBuf(2)), r2.output(atgpu::ir::HBuf(2)));
    }
}
